//! Integration tests for the multi-shard `ShardedDb`: routing determinism,
//! cross-shard batch atomicity, cross-shard digest behaviour, durable
//! reopen identity, and a concurrency soak (short in CI, long behind
//! `#[ignore]`).

use std::collections::HashMap;
use std::sync::Mutex;

use spitz::core::sharded::shard_for;
use spitz::core::SpitzConfig;
use spitz::ledger::DurabilityPolicy;
use spitz::{ShardedConfig, ShardedDb};

mod common;
use common::TempDir;

fn kv(i: u32) -> (Vec<u8>, Vec<u8>) {
    (
        format!("key-{i:05}").into_bytes(),
        format!("value-{i}").into_bytes(),
    )
}

/// A batch of `n` keys guaranteed to span at least two shards.
fn cross_shard_batch(db: &ShardedDb, start: u32, n: u32) -> Vec<(Vec<u8>, Vec<u8>)> {
    let writes: Vec<_> = (start..start + n).map(kv).collect();
    let first = db.route(&writes[0].0);
    assert!(
        writes.iter().any(|(k, _)| db.route(k) != first),
        "test batch must span shards; widen the key range"
    );
    writes
}

#[test]
fn routing_is_deterministic_and_client_recomputable() {
    let db = ShardedDb::in_memory(4);
    for i in 0..500u32 {
        let (k, _) = kv(i);
        let shard = db.route(&k);
        // Stable across calls, in range, equal to the standalone function a
        // verifying client uses and to the 2PC coordinator's routing.
        assert_eq!(db.route(&k), shard);
        assert!(shard < 4);
        assert_eq!(shard_for(&k, 4), shard);
        assert_eq!(db.coordinator().route(&k), shard);
    }
    // A different shard count is a different (but still deterministic) map.
    let db8 = ShardedDb::in_memory(8);
    for i in 0..100u32 {
        let (k, _) = kv(i);
        assert_eq!(db8.route(&k), shard_for(&k, 8));
    }
}

#[test]
fn cross_shard_batch_is_all_or_nothing() {
    let db = ShardedDb::in_memory(4);
    let writes = cross_shard_batch(&db, 0, 40);

    // Commit path: everything visible, on its own shard.
    db.put_batch(writes.clone()).unwrap();
    for (k, v) in &writes {
        assert_eq!(db.get(k).unwrap(), Some(v.clone()));
        assert_eq!(db.shard(db.route(k)).get(k).unwrap(), Some(v.clone()));
    }

    // Abort path: a prepared-then-aborted batch leaves nothing anywhere.
    let digest_before = db.digest();
    let aborted: Vec<_> = (1000..1040).map(kv).collect();
    let prepared = db.prepare_batch(aborted.clone()).unwrap();
    assert!(prepared.involved_shards().len() > 1);
    db.abort_prepared(prepared);
    for (k, _) in &aborted {
        assert_eq!(db.get(k).unwrap(), None);
    }
    assert_eq!(db.digest(), digest_before, "abort must not move any shard");

    // And the same keys commit cleanly afterwards (no leaked locks).
    db.put_batch(aborted.clone()).unwrap();
    for (k, v) in &aborted {
        assert_eq!(db.get(k).unwrap(), Some(v.clone()));
    }
}

#[test]
fn conflicting_cross_shard_batches_abort_entirely_and_retry() {
    let db = ShardedDb::in_memory(2);
    let writes = cross_shard_batch(&db, 0, 8);

    // Hold a prepared batch on some keys; an overlapping batch must fail
    // as a whole — none of its non-conflicting keys leak through either.
    let blocker = db.prepare_batch(writes.clone()).unwrap();
    let mut overlapping = cross_shard_batch(&db, 100, 8);
    overlapping.push(writes[0].clone());
    assert!(db.put_batch(overlapping.clone()).is_err());
    for (k, _) in &overlapping {
        assert_eq!(db.get(k).unwrap(), None);
    }

    // Finish the blocker, then the loser's retry succeeds.
    db.commit_prepared(blocker).unwrap();
    db.put_batch(overlapping.clone()).unwrap();
    for (k, v) in &overlapping {
        assert_eq!(db.get(k).unwrap(), Some(v.clone()));
    }
}

#[test]
fn digest_changes_iff_some_shard_changes() {
    let db = ShardedDb::in_memory(4);
    db.put_batch((0..40).map(kv).collect()).unwrap();
    let base = db.digest();
    assert!(base.verify());

    // Read-only traffic does not move the digest.
    for i in 0..40 {
        let (k, _) = kv(i);
        db.get(&k).unwrap();
        db.get_verified(&k).unwrap();
    }
    db.range_unverified(b"key-00000", b"key-00040").unwrap();
    db.range_verified(b"key-00000", b"key-00040").unwrap();
    db.snapshot().unwrap();
    assert_eq!(db.digest(), base);

    // An aborted cross-shard batch does not move it either.
    let prepared = db.prepare_batch(cross_shard_batch(&db, 500, 10)).unwrap();
    db.abort_prepared(prepared);
    assert_eq!(db.digest(), base);

    // A write to any single shard changes exactly that leaf and the root.
    let mut seen_roots = vec![base.root];
    for shard in 0..4 {
        // Find a key owned by `shard`.
        let key = (0..)
            .map(|i| format!("probe-{shard}-{i}").into_bytes())
            .find(|k| db.route(k) == shard)
            .unwrap();
        let before = db.digest();
        db.put(&key, b"x").unwrap();
        let after = db.digest();
        assert_ne!(after.root, before.root, "shard {shard} write must show");
        assert_ne!(after.shards[shard], before.shards[shard]);
        for other in 0..4 {
            if other != shard {
                assert_eq!(after.shards[other], before.shards[other]);
            }
        }
        assert!(
            !seen_roots.contains(&after.root),
            "every change must produce a fresh root"
        );
        seen_roots.push(after.root);
    }
}

#[test]
fn durable_sharded_db_reopens_to_the_identical_digest() {
    let dir = TempDir::new("sharded-reopen");
    let config = ShardedConfig::default()
        .with_shards(3)
        .with_spitz(SpitzConfig::default().with_durability(DurabilityPolicy::grouped_default()));

    let (digest, published) = {
        let db = ShardedDb::open(dir.path(), config).unwrap();
        for i in 0..30 {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        db.put_batch(cross_shard_batch(&db, 100, 30)).unwrap();
        let digest = db.flush().unwrap();
        let published = db.published_head().unwrap().expect("head published");
        assert_eq!(published.root, digest.root);
        (digest, published)
    };

    // Reopen: per-shard digests, the combined root and the published head
    // are all reproduced, and proofs still verify against the old pin.
    let db = ShardedDb::open(dir.path(), config).unwrap();
    let reopened = db.digest();
    assert_eq!(reopened, digest);
    assert_eq!(reopened.shards, digest.shards);
    assert_eq!(db.published_head().unwrap().unwrap(), published);
    assert!(db.verify(&digest));

    let (k, v) = kv(107);
    let (value, proof) = db.get_verified(&k).unwrap();
    assert_eq!(value, Some(v));
    assert_eq!(proof.root, digest.root);
    assert!(proof.verify(&k, value.as_deref()));

    // The reopened database keeps writing on the same chains.
    db.put_batch(cross_shard_batch(&db, 200, 20)).unwrap();
    assert!(db.digest().epoch > digest.epoch);

    // Reopening with the wrong shard count is rejected up front.
    drop(db);
    assert!(ShardedDb::open(dir.path(), config.with_shards(4)).is_err());
}

/// The soak body: `writers` threads issue `ops` mixed single-key and
/// cross-shard batches each against 4 shards, retrying on conflicts.
/// Asserts termination (no deadlock), a serializable outcome per key (the
/// final value of every key is the value of its last committed write), and
/// digest/head consistency after a full-stop flush.
fn soak(db: &ShardedDb, writers: u32, ops: u32) {
    // Every committed write (key -> value) in commit order per key. A
    // global mutex around the log would serialize the writers we are trying
    // to race, so writers log locally and the log is merged via the
    // database's own reads afterwards.
    let committed: Mutex<Vec<(Vec<u8>, Vec<u8>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for w in 0..writers {
            let committed = &committed;
            let db = &db;
            scope.spawn(move || {
                for op in 0..ops {
                    // Writers deliberately collide on a shared key range.
                    let base = (w + op) % 50;
                    let value = format!("w{w}-op{op}").into_bytes();
                    let writes: Vec<(Vec<u8>, Vec<u8>)> = if op % 3 == 0 {
                        // Cross-shard batch of 4 consecutive keys.
                        (base..base + 4)
                            .map(|i| (format!("soak-{i:03}").into_bytes(), value.clone()))
                            .collect()
                    } else {
                        vec![(format!("soak-{base:03}").into_bytes(), value.clone())]
                    };
                    // Bounded retry with backoff: no-wait 2PL aborts losers
                    // instead of blocking (so deadlock is impossible), but
                    // on few cores a tight retry loop can starve the lock
                    // holder of CPU — yield, then sleep as pressure grows.
                    let mut attempts = 0u32;
                    loop {
                        match db.put_batch(writes.clone()) {
                            Ok(_) => break,
                            Err(_) if attempts < 10_000 => {
                                attempts += 1;
                                if attempts.is_multiple_of(20) {
                                    std::thread::sleep(std::time::Duration::from_millis(1));
                                } else {
                                    std::thread::yield_now();
                                }
                            }
                            Err(e) => panic!("writer {w} starved after 10k retries: {e}"),
                        }
                    }
                    committed.lock().unwrap().extend(writes);
                }
            });
        }
    });

    // Serializable outcome per key: every key holds a value some committed
    // batch wrote to it (ledger blocks are atomic, so interleaving can
    // never manufacture a value no one committed).
    let committed = committed.into_inner().unwrap();
    let mut per_key: HashMap<Vec<u8>, Vec<Vec<u8>>> = HashMap::new();
    for (k, v) in committed {
        per_key.entry(k).or_default().push(v);
    }
    assert!(!per_key.is_empty());
    for (key, values) in &per_key {
        let stored = db.get(key).unwrap().expect("committed key must exist");
        assert!(
            values.contains(&stored),
            "key {:?} holds {:?}, which no committed batch wrote",
            String::from_utf8_lossy(key),
            String::from_utf8_lossy(&stored)
        );
        // And the stored value is the ledger's last record for that key on
        // its shard — reads are serialized with commits.
        let (verified, proof) = db.get_verified(key).unwrap();
        assert_eq!(verified.as_ref(), Some(&stored));
        assert!(proof.verify(key, verified.as_deref()));
    }

    // Flush barrier: afterwards the published head equals the live digest
    // and every shard's chain audits clean.
    let digest = db.flush().unwrap();
    assert!(digest.verify());
    assert_eq!(db.published_head().unwrap().unwrap().root, digest.root);
    for s in 0..db.shard_count() {
        assert_eq!(db.shard(s).ledger().audit_chain(), None);
    }
    assert_eq!(db.recover(), 0, "no transaction may be left in doubt");
}

/// The consistent-cut acceptance test: writers continuously commit
/// cross-shard 2PC batches that write the *same* sequence number to two
/// keys on *different* shards. Any digest, snapshot or published head taken
/// concurrently must reflect each batch entirely or not at all — a torn cut
/// would show the two marks disagreeing.
#[test]
fn digest_is_a_consistent_cut_under_concurrent_writers() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let db = ShardedDb::in_memory(4);
    // Two marker keys guaranteed to live on different shards.
    let mark_a = b"cut-mark-a".to_vec();
    let mark_b = (0..)
        .map(|i| format!("cut-mark-b{i}").into_bytes())
        .find(|k| db.route(k) != db.route(&mark_a))
        .unwrap();
    db.put_batch(vec![
        (mark_a.clone(), 0u64.to_be_bytes().to_vec()),
        (mark_b.clone(), 0u64.to_be_bytes().to_vec()),
    ])
    .unwrap();

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Writer: atomic cross-shard batches bumping both marks together,
        // plus unrelated single-key noise on every shard.
        let writer = {
            let db = &db;
            let (mark_a, mark_b) = (mark_a.clone(), mark_b.clone());
            let stop = &stop;
            scope.spawn(move || {
                let mut seq = 1u64;
                let mut published = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let digest = db
                        .put_batch(vec![
                            (mark_a.clone(), seq.to_be_bytes().to_vec()),
                            (mark_b.clone(), seq.to_be_bytes().to_vec()),
                        ])
                        .unwrap();
                    published.push(digest);
                    db.put(format!("noise-{seq}").as_bytes(), b"x").unwrap();
                    seq += 1;
                }
                published
            })
        };

        // Checker: repeatedly pin a snapshot and read both marks through
        // the verified snapshot path. A torn cut shows different sequence
        // numbers; a fenced cut never does.
        let mut cuts = 0u32;
        let mut last_epoch = 0u64;
        let mut client = spitz::Verifier::new();
        while cuts < 40 {
            let snapshot = db.snapshot().unwrap();
            assert!(snapshot.digest().verify());
            // Snapshot epochs come from the 2PC timestamp oracle: strictly
            // monotonic across cuts.
            assert!(snapshot.taken_at() > last_epoch);
            last_epoch = snapshot.taken_at();
            assert!(
                client.observe_sharded(snapshot.digest()),
                "snapshot digests must advance monotonically, never rewind"
            );
            let (va, pa) = snapshot.get_verified(&mark_a);
            let (vb, pb) = snapshot.get_verified(&mark_b);
            assert_eq!(
                va, vb,
                "cut {cuts} is torn: the two halves of an atomic cross-shard \
                 batch disagree"
            );
            assert!(client.verify_sharded_read(&mark_a, va.as_deref(), &pa));
            assert!(client.verify_sharded_read(&mark_b, vb.as_deref(), &pb));
            // The verified range over both marks sees the same consistency.
            let (entries, proof) = snapshot
                .range_verified(b"cut-mark-", b"cut-mark-z")
                .unwrap();
            assert_eq!(entries.len(), 2);
            assert_eq!(entries[0].1, entries[1].1, "range cut is torn");
            assert!(client.verify_sharded_range(&entries, &proof));
            cuts += 1;
        }
        stop.store(true, Ordering::Relaxed);
        let published = writer.join().unwrap();

        // Every digest returned by put_batch (and published to the head
        // root) is a fenced epoch: internally consistent, with the batch's
        // own write fully reflected.
        assert!(!published.is_empty());
        for digest in &published {
            assert!(digest.verify(), "published root must be a fenced epoch");
        }
        let head = db.published_head().unwrap().unwrap();
        assert!(head.verify());
    });
}

#[test]
fn concurrency_soak_short() {
    let db = ShardedDb::in_memory(4);
    soak(&db, 4, 40);
}

#[test]
fn concurrency_soak_durable_short() {
    let dir = TempDir::new("sharded-soak");
    let config = ShardedConfig::default()
        .with_shards(4)
        .with_spitz(SpitzConfig::default().with_durability(DurabilityPolicy::grouped_default()));
    let db = ShardedDb::open(dir.path(), config).unwrap();
    soak(&db, 3, 15);

    // Durability of the flush barrier: reopen reproduces the digest.
    let digest = db.digest();
    drop(db);
    let reopened = ShardedDb::open(dir.path(), config).unwrap();
    assert_eq!(reopened.digest(), digest);
}

#[test]
#[ignore = "long soak; run explicitly with `cargo test -- --ignored`"]
fn concurrency_soak_long() {
    let db = ShardedDb::in_memory(4);
    soak(&db, 8, 400);
}
