//! Tamper-evidence end to end: corrupting a single byte of a committed
//! ledger block must be caught at every layer a verifying client touches —
//! the block's own records root, the hash chain, and proof verification
//! against the client's pinned digest. For a durable database the same
//! holds for bytes flipped *on disk*: the per-record CRC catches them at
//! open or read time, and a CRC-consistent rewrite is caught by `audit()`.

use std::path::{Path, PathBuf};

use spitz::ledger::block::records_merkle_root;
use spitz::ledger::Block;
use spitz::storage::durable::format::{crc32, RECORD_OVERHEAD, SEGMENT_HEADER_LEN};
use spitz::storage::{ChunkStore, DurableChunkStore};
use spitz::{ClientVerifier, SpitzDb};

mod common;
use common::{segment_files, TempDir};

fn populated_db() -> SpitzDb {
    let db = SpitzDb::in_memory();
    let writes: Vec<_> = (0..50)
        .map(|i| {
            (
                format!("acct/{i:03}").into_bytes(),
                format!("balance={i}").into_bytes(),
            )
        })
        .collect();
    db.put_batch(writes).unwrap();
    db
}

#[test]
fn corrupting_one_byte_of_a_committed_block_is_detected() {
    let db = populated_db();
    let mut client = ClientVerifier::new();
    assert!(client.observe_digest(db.digest()));

    let honest = db.ledger().block(0).expect("block 0 was committed");
    assert!(honest.verify_records());

    // Flip one byte of one committed record.
    let mut tampered = honest.clone();
    tampered.records[7].key[0] ^= 0x01;

    // Layer 1: the block body no longer matches its sealed records root.
    assert!(!tampered.verify_records());
    assert_ne!(
        records_merkle_root(&tampered.records),
        tampered.header.records_root
    );

    // Layer 2: an attacker who re-seals the tampered body gets a different
    // block hash, breaking the chain the digest pins.
    let resealed = Block::new(
        tampered.header.height,
        tampered.header.prev_hash,
        tampered.header.index_root,
        tampered.header.timestamp,
        tampered.records.clone(),
    );
    assert!(resealed.verify_records(), "attacker reseals consistently");
    assert_ne!(resealed.hash(), honest.hash());

    // Layer 3: a digest carrying the forged block hash is refused by the
    // client (same height, different hash = fork).
    let mut forged_digest = db.digest();
    forged_digest.block_hash = resealed.hash();
    assert!(!client.observe_digest(forged_digest));

    // Layer 4: a read proof anchored at the forged digest fails client
    // verification even though the value itself is honest.
    let (value, honest_proof) = db.get_verified(b"acct/007").unwrap();
    let mut forged_proof = honest_proof.clone();
    forged_proof.digest.block_hash = resealed.hash();
    assert!(!client.verify_read(b"acct/007", value.as_deref(), &forged_proof));

    // A forged index root (an attacker rewriting history wholesale) is
    // equally rejected, because the proof no longer recomputes to it.
    let mut forged_root_proof = honest_proof.clone();
    forged_root_proof.digest.index_root = resealed.hash();
    assert!(!client.verify_read(b"acct/007", value.as_deref(), &forged_root_proof));

    // Sanity: the honest proof still verifies and the pin is intact.
    assert!(client.verify_read(b"acct/007", value.as_deref(), &honest_proof));
    assert_eq!(client.pinned_digest().unwrap(), db.digest());
}

fn first_segment_file(dir: &Path) -> PathBuf {
    segment_files(dir)
        .into_iter()
        .next()
        .expect("a segment exists")
}

#[test]
fn flipping_one_bit_on_disk_is_caught_by_crc_at_open() {
    let dir = TempDir::new("bitflip-open");
    {
        let db = SpitzDb::open(dir.path()).unwrap();
        let writes: Vec<_> = (0..40)
            .map(|i| {
                (
                    format!("key/{i:03}").into_bytes(),
                    format!("value-{i}").into_bytes(),
                )
            })
            .collect();
        db.put_batch(writes).unwrap();
        db.put(b"key/007", b"tampered-later").unwrap();
    }

    // Flip one bit inside the first record of the first segment — a
    // mid-file flip, so recovery must refuse the segment rather than
    // "recover" around it.
    let segment = first_segment_file(dir.path());
    let mut bytes = std::fs::read(&segment).unwrap();
    let index = SEGMENT_HEADER_LEN as usize + 10;
    bytes[index] ^= 0x40;
    std::fs::write(&segment, &bytes).unwrap();

    let result = SpitzDb::open(dir.path());
    assert!(
        matches!(
            result.as_ref().err(),
            Some(spitz::core::error::DbError::Storage(_))
        ),
        "on-disk bit flip must fail the open: {:?}",
        result.as_ref().err()
    );
}

#[test]
fn crc_consistent_on_disk_rewrite_is_caught_by_audit() {
    let dir = TempDir::new("bitflip-audit");
    let payload = b"the payload an attacker rewrites".to_vec();
    let address = {
        let store = DurableChunkStore::open(dir.path()).unwrap();
        store.put(spitz::storage::Chunk::new(
            spitz::storage::ChunkKind::Blob,
            payload.clone(),
        ))
    };

    // A smarter attacker flips a payload byte AND fixes the record CRC, so
    // the framing layer has no objection. The store holds exactly one
    // record, starting right after the segment header.
    let segment = first_segment_file(dir.path());
    let mut bytes = std::fs::read(&segment).unwrap();
    let start = SEGMENT_HEADER_LEN as usize;
    let record_len = RECORD_OVERHEAD + payload.len();
    bytes[start + RECORD_OVERHEAD - 4] ^= 0x01; // first payload byte
    let crc = crc32(&bytes[start..start + record_len - 4]);
    bytes[start + record_len - 4..start + record_len].copy_from_slice(&crc.to_be_bytes());
    std::fs::write(&segment, &bytes).unwrap();

    // The scan accepts the forged record (its CRC is self-consistent) ...
    let store = DurableChunkStore::open(dir.path()).unwrap();
    assert!(store.contains(&address));
    // ... but the content no longer hashes to its address: the audit pass
    // names the forged chunk.
    assert_eq!(store.audit(), vec![address]);
    let fetched = store.get(&address).unwrap();
    assert_ne!(fetched.address(), address, "content was silently altered");
}

#[test]
fn every_record_byte_is_covered_by_the_records_root() {
    let db = populated_db();
    let honest = db.ledger().block(0).unwrap();

    // Corrupt each field of a few records in turn; the root must move.
    for i in [0usize, 13, 49] {
        let mut key_tamper = honest.clone();
        key_tamper.records[i].key[1] ^= 0x80;
        assert!(!key_tamper.verify_records(), "key byte {i}");

        let mut hash_tamper = honest.clone();
        let mut raw = *hash_tamper.records[i].value_hash.as_bytes();
        raw[31] ^= 0x01;
        hash_tamper.records[i].value_hash = raw.into();
        assert!(!hash_tamper.verify_records(), "value-hash byte {i}");

        let mut stmt_tamper = honest.clone();
        stmt_tamper.records[i].statement.push('x');
        assert!(!stmt_tamper.verify_records(), "statement byte {i}");
    }
}

/// Mutating one shard's contribution to a verified cross-shard range —
/// its entries, its claimed bounds, its digest leaf, or the whole part —
/// must be rejected by the merge verification against the pinned root.
#[test]
fn mutated_shard_range_response_is_rejected_by_the_merge() {
    let db = spitz::ShardedDb::in_memory(3);
    let writes: Vec<_> = (0..60)
        .map(|i| {
            (
                format!("acct/{i:03}").into_bytes(),
                format!("balance={i}").into_bytes(),
            )
        })
        .collect();
    db.put_batch(writes).unwrap();

    let snapshot = db.snapshot().unwrap();
    let (entries, proof) = snapshot.range_verified(b"acct/010", b"acct/040").unwrap();
    assert_eq!(entries.len(), 30);
    assert!(proof.verify(&entries));

    // A forged value in the merged result.
    let mut forged = entries.clone();
    forged[5].1 = b"balance=999999".to_vec();
    assert!(!proof.verify(&forged));

    // One shard's digest leaf swapped for another epoch's digest: the
    // recomputed cross-shard root no longer matches the pinned root.
    let moved = db.route(b"acct/010");
    db.put(b"acct/010", b"moved-on").unwrap();
    let newer = db.snapshot().unwrap();
    let (_, newer_proof) = newer.range_verified(b"acct/010", b"acct/040").unwrap();
    let mut leaf_swapped = proof.clone();
    leaf_swapped.shards[moved] = newer_proof.shards[moved].clone();
    assert!(!leaf_swapped.verify(&entries));

    // A withheld shard part (server drops one shard's contribution).
    let mut withheld = proof.clone();
    withheld.shards.pop();
    assert!(!withheld.verify(&entries));

    // Narrowed bounds on one shard (hiding that shard's tail entries).
    let (_, narrow) = snapshot.range_verified(b"acct/010", b"acct/020").unwrap();
    let mut narrowed = proof.clone();
    narrowed.shards[1] = narrow.shards[1].clone();
    assert!(!narrowed.verify(&entries));
}
