//! Tamper-evidence end to end: corrupting a single byte of a committed
//! ledger block must be caught at every layer a verifying client touches —
//! the block's own records root, the hash chain, and proof verification
//! against the client's pinned digest.

use spitz::ledger::block::records_merkle_root;
use spitz::ledger::Block;
use spitz::{ClientVerifier, SpitzDb};

fn populated_db() -> SpitzDb {
    let db = SpitzDb::in_memory();
    let writes: Vec<_> = (0..50)
        .map(|i| {
            (
                format!("acct/{i:03}").into_bytes(),
                format!("balance={i}").into_bytes(),
            )
        })
        .collect();
    db.put_batch(writes).unwrap();
    db
}

#[test]
fn corrupting_one_byte_of_a_committed_block_is_detected() {
    let db = populated_db();
    let mut client = ClientVerifier::new();
    assert!(client.observe_digest(db.digest()));

    let honest = db.ledger().block(0).expect("block 0 was committed");
    assert!(honest.verify_records());

    // Flip one byte of one committed record.
    let mut tampered = honest.clone();
    tampered.records[7].key[0] ^= 0x01;

    // Layer 1: the block body no longer matches its sealed records root.
    assert!(!tampered.verify_records());
    assert_ne!(
        records_merkle_root(&tampered.records),
        tampered.header.records_root
    );

    // Layer 2: an attacker who re-seals the tampered body gets a different
    // block hash, breaking the chain the digest pins.
    let resealed = Block::new(
        tampered.header.height,
        tampered.header.prev_hash,
        tampered.header.index_root,
        tampered.header.timestamp,
        tampered.records.clone(),
    );
    assert!(resealed.verify_records(), "attacker reseals consistently");
    assert_ne!(resealed.hash(), honest.hash());

    // Layer 3: a digest carrying the forged block hash is refused by the
    // client (same height, different hash = fork).
    let mut forged_digest = db.digest();
    forged_digest.block_hash = resealed.hash();
    assert!(!client.observe_digest(forged_digest));

    // Layer 4: a read proof anchored at the forged digest fails client
    // verification even though the value itself is honest.
    let (value, honest_proof) = db.get_verified(b"acct/007").unwrap();
    let mut forged_proof = honest_proof.clone();
    forged_proof.digest.block_hash = resealed.hash();
    assert!(!client.verify_read(b"acct/007", value.as_deref(), &forged_proof));

    // A forged index root (an attacker rewriting history wholesale) is
    // equally rejected, because the proof no longer recomputes to it.
    let mut forged_root_proof = honest_proof.clone();
    forged_root_proof.digest.index_root = resealed.hash();
    assert!(!client.verify_read(b"acct/007", value.as_deref(), &forged_root_proof));

    // Sanity: the honest proof still verifies and the pin is intact.
    assert!(client.verify_read(b"acct/007", value.as_deref(), &honest_proof));
    assert_eq!(client.pinned_digest().unwrap(), db.digest());
}

#[test]
fn every_record_byte_is_covered_by_the_records_root() {
    let db = populated_db();
    let honest = db.ledger().block(0).unwrap();

    // Corrupt each field of a few records in turn; the root must move.
    for i in [0usize, 13, 49] {
        let mut key_tamper = honest.clone();
        key_tamper.records[i].key[1] ^= 0x80;
        assert!(!key_tamper.verify_records(), "key byte {i}");

        let mut hash_tamper = honest.clone();
        let mut raw = *hash_tamper.records[i].value_hash.as_bytes();
        raw[31] ^= 0x01;
        hash_tamper.records[i].value_hash = raw.into();
        assert!(!hash_tamper.verify_records(), "value-hash byte {i}");

        let mut stmt_tamper = honest.clone();
        stmt_tamper.records[i].statement.push('x');
        assert!(!stmt_tamper.verify_records(), "statement byte {i}");
    }
}
