//! Crash-point and fault-injection tests for cross-shard 2PC: a
//! coordinator crash between prepare and commit is resolved by presumed
//! abort, and a disk-full / dead store on one shard mid-batch aborts the
//! whole batch cleanly on every shard.

use std::sync::Arc;

use spitz::core::sharded::{ShardedConfig, ShardedDb};
use spitz::core::SpitzConfig;
use spitz::storage::{ChunkStore, InMemoryChunkStore};

mod common;
use common::TempDir;
use spitz_faults::{FailMode, FailpointStore};

fn kv(i: u32) -> (Vec<u8>, Vec<u8>) {
    (
        format!("key-{i:05}").into_bytes(),
        format!("value-{i}").into_bytes(),
    )
}

/// A sharded db over failpoint-wrapped in-memory stores, plus the wrappers.
fn failpoint_db(shards: usize) -> (ShardedDb, Vec<Arc<FailpointStore>>) {
    let failpoints: Vec<Arc<FailpointStore>> = (0..shards)
        .map(|_| FailpointStore::new(InMemoryChunkStore::shared() as Arc<dyn ChunkStore>))
        .collect();
    let stores: Vec<Arc<dyn ChunkStore>> = failpoints
        .iter()
        .map(|fp| Arc::clone(fp) as Arc<dyn ChunkStore>)
        .collect();
    let db = ShardedDb::with_stores(stores, SpitzConfig::default()).unwrap();
    (db, failpoints)
}

/// A batch of `n` keys from `start` that is checked to span ≥ 2 shards and
/// to involve shard `must_hit`.
fn batch_hitting(db: &ShardedDb, start: u32, n: u32, must_hit: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
    let writes: Vec<_> = (start..start + n).map(kv).collect();
    let shards: std::collections::HashSet<usize> =
        writes.iter().map(|(k, _)| db.route(k)).collect();
    assert!(shards.len() > 1, "batch must span shards");
    assert!(
        shards.contains(&must_hit),
        "batch must involve shard {must_hit}"
    );
    writes
}

#[test]
fn coordinator_crash_between_prepare_and_commit_recovers_to_abort() {
    let (db, _failpoints) = failpoint_db(3);
    db.put_batch((0..30).map(kv).collect()).unwrap();
    let base = db.digest();

    // Phase 1 completes on every shard; then the coordinator "crashes"
    // before a commit decision (the handle is dropped unfinished).
    let writes = batch_hitting(&db, 100, 20, 0);
    let prepared = db.prepare_batch(writes.clone()).unwrap();
    assert!(prepared.involved_shards().len() > 1);
    drop(prepared);

    // In-doubt state: nothing is visible, but the keys are still locked —
    // a new batch over them cannot get through.
    for (k, _) in &writes {
        assert_eq!(db.get(k).unwrap(), None);
    }
    assert_eq!(db.digest(), base, "prepared state must not touch a ledger");
    assert!(db.put_batch(writes.clone()).is_err());

    // Recovery decides abort: no shard leaks prepared state, locks are
    // released, and the exact same batch now commits.
    assert_eq!(db.recover(), 1);
    assert_eq!(db.digest(), base);
    for (k, _) in &writes {
        assert_eq!(db.get(k).unwrap(), None);
    }
    db.put_batch(writes.clone()).unwrap();
    for (k, v) in &writes {
        assert_eq!(db.get(k).unwrap(), Some(v.clone()));
    }
    assert_eq!(db.recover(), 0);
}

#[test]
fn disk_full_on_one_shard_mid_batch_aborts_cleanly_everywhere() {
    let (db, failpoints) = failpoint_db(3);
    db.put_batch((0..30).map(kv).collect()).unwrap();
    let base = db.digest();

    // Shard 1's store starts refusing writes (disk full): its prepare-time
    // staging write fails, the participant votes No, and the coordinator
    // aborts the already-prepared shards.
    failpoints[1].arm(0, FailMode::Error);
    let writes = batch_hitting(&db, 200, 24, 1);
    let err = db.put_batch(writes.clone()).unwrap_err();
    assert!(err.to_string().contains("failpoint"), "unexpected: {err}");
    // The fault is classified as a storage failure, not a retryable
    // conflict — a retry-on-conflict loop must not spin on a full disk.
    assert!(
        matches!(err, spitz::core::DbError::Storage(_)),
        "unexpected class: {err:?}"
    );
    assert!(failpoints[1].injected_failures() > 0);

    // All-or-nothing: no key of the failed batch is visible on any shard,
    // no digest moved, nothing is left in doubt.
    for (k, _) in &writes {
        assert_eq!(db.get(k).unwrap(), None);
    }
    assert_eq!(db.digest(), base);
    assert_eq!(db.recover(), 0);

    // Space comes back: the identical batch commits.
    failpoints[1].disarm();
    db.put_batch(writes.clone()).unwrap();
    for (k, v) in &writes {
        assert_eq!(db.get(k).unwrap(), Some(v.clone()));
    }
    assert_eq!(db.shard(1).ledger().audit_chain(), None);
}

#[test]
fn disk_full_after_k_operations_still_aborts_atomically() {
    // Same scenario, but the failpoint fires mid-stream (after 2 more
    // writes) rather than immediately, so depending on partition order the
    // failing shard may prepare first, last, or in between — the outcome
    // must be identical: clean global abort.
    for k in 0..4 {
        let (db, failpoints) = failpoint_db(3);
        db.put_batch((0..30).map(kv).collect()).unwrap();
        let base = db.digest();

        failpoints[2].arm(k, FailMode::Error);
        let writes = batch_hitting(&db, 300, 24, 2);
        match db.put_batch(writes.clone()) {
            // The batch needed at most k writes on shard 2 and committed.
            Ok(_) => {
                assert_eq!(failpoints[2].injected_failures(), 0);
                continue;
            }
            Err(_) => {
                // The space comes back, recovery resolves any in-doubt
                // state, and the outcome must be all-or-nothing:
                failpoints[2].disarm();
                let resolved = db.recover();
                if resolved == 0 {
                    // The fault hit the *prepare* phase: a clean global
                    // abort, nothing visible anywhere.
                    for (key, _) in &writes {
                        assert_eq!(db.get(key).unwrap(), None, "fail-after-{k}");
                    }
                    assert_eq!(db.digest(), base, "fail-after-{k}");
                } else {
                    // The fault hit the *commit* phase: the decision was
                    // made, so recovery redoes the failed shard's apply
                    // and every write is visible.
                    assert_eq!(resolved, 1, "fail-after-{k}");
                    for (key, value) in &writes {
                        assert_eq!(db.get(key).unwrap(), Some(value.clone()), "fail-after-{k}");
                    }
                    assert!(db.digest().epoch > base.epoch, "fail-after-{k}");
                }
                assert_eq!(db.recover(), 0, "fail-after-{k}");
            }
        }
    }
}

/// Kill-and-reopen: a coordinator crash between prepare and commit leaves
/// durably staged batches behind. A *restarted process* must find them via
/// the staged logs and resolve them by presumed abort — in-process state is
/// gone, so this exercises the durable scan, not the participant maps.
#[test]
fn staged_batches_survive_a_kill_and_reopen_and_recover_to_abort() {
    let dir = TempDir::new("sharded-2pc-kill");
    let config = ShardedConfig::default().with_shards(3);
    let writes: Vec<_> = (100..124).map(kv).collect();

    {
        let db = ShardedDb::open(dir.path(), config).unwrap();
        db.put_batch((0..30).map(kv).collect()).unwrap();
        let prepared = db.prepare_batch(writes.clone()).unwrap();
        assert!(prepared.involved_shards().len() > 1);
        db.flush().unwrap();
        // The coordinator "crashes": the process exits with the batch
        // prepared but undecided. (Dropping the handle without commit or
        // abort, then dropping the whole database.)
        drop(prepared);
    }

    let db = ShardedDb::open(dir.path(), config).unwrap();
    let base = db.digest();
    // In-doubt state is invisible but present on disk; recovery resolves
    // it by presumed abort even though no in-process participant knows it.
    for (k, _) in &writes {
        assert_eq!(db.get(k).unwrap(), None);
    }
    assert!(db.recover() >= 1, "the staged batch must be found on disk");
    assert_eq!(db.recover(), 0, "recovery is idempotent");
    assert_eq!(db.digest(), base, "presumed abort must not move a ledger");
    for (k, _) in &writes {
        assert_eq!(db.get(k).unwrap(), None);
    }
    // The same batch commits cleanly afterwards.
    db.put_batch(writes.clone()).unwrap();
    for (k, v) in &writes {
        assert_eq!(db.get(k).unwrap(), Some(v.clone()));
    }
}

/// Kill-and-reopen after the commit *decision*: a batch whose commit was
/// decided (durable decision record) but whose apply failed on one shard
/// must be **redone** — not aborted — by a restarted process, preserving
/// all-or-nothing across the crash.
#[test]
fn decided_batches_survive_a_kill_and_reopen_and_recover_to_commit() {
    let failpoints: Vec<Arc<FailpointStore>> = (0..3)
        .map(|_| FailpointStore::new(InMemoryChunkStore::shared() as Arc<dyn ChunkStore>))
        .collect();
    let stores: Vec<Arc<dyn ChunkStore>> = failpoints
        .iter()
        .map(|fp| Arc::clone(fp) as Arc<dyn ChunkStore>)
        .collect();

    let writes;
    {
        let db = ShardedDb::with_stores(stores.clone(), SpitzConfig::default()).unwrap();
        db.put_batch((0..30).map(kv).collect()).unwrap();
        writes = batch_hitting(&db, 200, 24, 1);

        // Prepare everywhere (staging succeeds), then make shard 1's store
        // refuse writes: the commit decision lands durably, but shard 1's
        // apply fails, and the process dies before any retry.
        let prepared = db.prepare_batch(writes.clone()).unwrap();
        failpoints[1].arm(0, FailMode::Error);
        assert!(db.commit_prepared(prepared).is_err());
        failpoints[1].disarm();
        // Process death: drop the database; the wrapped stores survive as
        // the "disk".
    }

    let db = ShardedDb::with_stores(stores, SpitzConfig::default()).unwrap();
    // The decision was made, so a restarted recovery must redo shard 1's
    // part from its staged chunk — every write becomes visible.
    assert!(db.recover() >= 1, "the decided batch must be redone");
    for (k, v) in &writes {
        assert_eq!(db.get(k).unwrap(), Some(v.clone()), "redo must complete");
    }
    assert_eq!(db.recover(), 0, "recovery is idempotent");
    for s in 0..3 {
        assert_eq!(db.shard(s).ledger().audit_chain(), None);
    }
}

/// A restarted process must not recycle global transaction ids that the
/// durable 2PC logs still record: a recycled id makes the staged log's
/// entry point at the new batch's chunk, so a later redo of the *old*
/// decided batch would seal the wrong writes.
#[test]
fn reopen_does_not_recycle_global_txn_ids_of_staged_batches() {
    let dir = TempDir::new("sharded-2pc-gtid");
    let config = ShardedConfig::default().with_shards(3);
    let stale_gtid;
    {
        let db = ShardedDb::open(dir.path(), config).unwrap();
        db.put_batch((0..30).map(kv).collect()).unwrap();
        let prepared = db.prepare_batch(batch_hitting(&db, 100, 24, 0)).unwrap();
        stale_gtid = prepared.global_txn_id();
        db.flush().unwrap();
        // Coordinator crash: prepared but undecided, process exits.
        drop(prepared);
    }

    let db = ShardedDb::open(dir.path(), config).unwrap();
    let prepared = db.prepare_batch(batch_hitting(&db, 200, 24, 1)).unwrap();
    assert!(
        prepared.global_txn_id() > stale_gtid,
        "fresh id {} must not collide with or precede the staged id {}",
        prepared.global_txn_id(),
        stale_gtid
    );
    db.abort_prepared(prepared);
    // The stale staged batch is still resolvable (presumed abort).
    assert!(db.recover() >= 1);
    assert_eq!(db.recover(), 0);
}

/// A batch whose commit decision was durable when the process died must be
/// visible after a plain reopen — `ShardedDb::open` redoes decided staged
/// batches eagerly, without waiting for an explicit `recover()` call.
#[test]
fn reopen_redoes_decided_batches_without_an_explicit_recover_call() {
    use spitz::core::staged::StagedLog;
    use spitz::Hash;

    let dir = TempDir::new("sharded-2pc-eager-redo");
    let config = ShardedConfig::default().with_shards(3);
    let writes;
    {
        let db = ShardedDb::open(dir.path(), config).unwrap();
        db.put_batch((0..30).map(kv).collect()).unwrap();
        writes = batch_hitting(&db, 100, 24, 0);
        let prepared = db.prepare_batch(writes.clone()).unwrap();
        // The commit decision lands durably, then the process dies before
        // any shard applies (simulated by writing the decision record by
        // hand and exiting with the prepared handle unfinished).
        StagedLog::decisions(std::sync::Arc::clone(db.shard(0).store()))
            .add(prepared.global_txn_id(), Hash::ZERO)
            .unwrap();
        db.flush().unwrap();
        drop(prepared);
    }

    let db = ShardedDb::open(dir.path(), config).unwrap();
    for (k, v) in &writes {
        assert_eq!(
            db.get(k).unwrap(),
            Some(v.clone()),
            "decided writes must be visible after a plain reopen"
        );
    }
    assert_eq!(db.recover(), 0, "nothing left for an explicit recover");
    for s in 0..3 {
        assert_eq!(db.shard(s).ledger().audit_chain(), None);
    }
}

#[test]
fn killed_shard_store_fails_writes_but_leaves_other_shards_working() {
    let (db, failpoints) = failpoint_db(3);
    db.put_batch((0..30).map(kv).collect()).unwrap();

    // Shard 0's device dies: every later operation on it fails.
    failpoints[0].arm(0, FailMode::Kill);

    // A cross-shard batch involving the dead shard aborts as a whole.
    let writes = batch_hitting(&db, 400, 24, 0);
    assert!(db.put_batch(writes.clone()).is_err());
    assert!(failpoints[0].is_dead());
    let live: Vec<usize> = (1..3).collect();
    for (k, _) in &writes {
        if live.contains(&db.route(k)) {
            assert_eq!(db.get(k).unwrap(), None, "no partial commit on live shards");
        }
    }

    // The healthy shards keep serving single-shard traffic.
    let mut wrote = 0;
    for i in 500..560u32 {
        let (k, v) = kv(i);
        if db.route(&k) != 0 {
            db.put(&k, &v).unwrap();
            assert_eq!(db.get(&k).unwrap(), Some(v));
            wrote += 1;
        }
    }
    assert!(wrote > 0);
    for s in live {
        assert_eq!(db.shard(s).ledger().audit_chain(), None);
    }
    // Disarming does not revive a killed store.
    failpoints[0].disarm();
    assert!(failpoints[0].is_dead());
}
