//! Helpers shared by the integration test suite (`tests/common/` is the
//! cargo idiom for test support code that is not itself a test target).

// Not every test target uses every helper; silence per-target dead-code.
#![allow(dead_code)]

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A uniquely named temp directory removed on drop (the offline workspace
/// has no `tempfile` dependency).
pub struct TempDir(PathBuf);

impl TempDir {
    pub fn new(label: &str) -> TempDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("spitz-test-{label}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }

    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// All segment files (`seg-*.spitz`) of a durable store directory, sorted
/// by name (= by segment id, the names are fixed width).
pub fn segment_files(dir: &Path) -> Vec<PathBuf> {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read store dir")
        .map(|entry| entry.expect("dir entry").path())
        .filter(|path| path.extension().map(|e| e == "spitz").unwrap_or(false))
        .collect();
    segments.sort();
    segments
}
