//! Property-based tests over the core invariants of the reproduction:
//! Merkle proof soundness, SIRI structural invariance and node sharing,
//! storage round-trips, and MVCC snapshot semantics.

use proptest::prelude::*;
use spitz::crypto::merkle::MerkleTree;
use spitz::crypto::sha256;
use spitz::index::codec::{self, Reader};
use spitz::index::siri::SiriIndex;
use spitz::index::PosTree;
use spitz::storage::{ChunkStore, Chunker, ChunkerConfig, InMemoryChunkStore, VBlob};
use spitz::txn::MvccStore;
use spitz::{Ledger, ShardedDb, SpitzDb};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever bytes we store in a VBlob, we read back exactly, and writing
    /// the same bytes twice costs no extra physical storage.
    #[test]
    fn vblob_roundtrip_and_dedup(data in proptest::collection::vec(any::<u8>(), 0..40_000)) {
        let store = InMemoryChunkStore::new();
        let cfg = ChunkerConfig::default();
        let blob = VBlob::write(&store, &data, &cfg).unwrap();
        prop_assert_eq!(VBlob::read(&store, &blob.root()).unwrap(), data.clone());
        let physical = store.stats().physical_bytes;
        VBlob::write(&store, &data, &cfg).unwrap();
        prop_assert_eq!(store.stats().physical_bytes, physical);
    }

    /// The POS-Tree root is a pure function of the key/value set,
    /// independent of insertion order, and every inserted key is readable
    /// with a verifying proof.
    #[test]
    fn pos_tree_is_order_independent_and_provable(
        keys in proptest::collection::btree_set(proptest::collection::vec(1u8..255, 1..12), 1..120),
        seed in any::<u64>(),
    ) {
        let entries: Vec<(Vec<u8>, Vec<u8>)> = keys
            .iter()
            .map(|k| (k.clone(), spitz::crypto::sha256(k).as_bytes()[..8].to_vec()))
            .collect();

        let mut forward = PosTree::new(InMemoryChunkStore::shared());
        for (k, v) in &entries {
            forward.insert(k.clone(), v.clone());
        }
        let mut shuffled = entries.clone();
        // Deterministic shuffle from the seed.
        for i in (1..shuffled.len()).rev() {
            let j = (seed as usize).wrapping_mul(i).wrapping_add(i * 7919) % (i + 1);
            shuffled.swap(i, j);
        }
        let mut reordered = PosTree::new(InMemoryChunkStore::shared());
        for (k, v) in &shuffled {
            reordered.insert(k.clone(), v.clone());
        }
        prop_assert_eq!(forward.root(), reordered.root());

        let root = forward.root();
        for (k, v) in entries.iter().take(10) {
            let (value, proof) = forward.get_with_proof(k);
            prop_assert_eq!(value.as_ref(), Some(v));
            prop_assert!(PosTree::verify_proof(root, k, value.as_deref(), &proof));
            prop_assert!(!PosTree::verify_proof(root, k, Some(b"forged"), &proof));
        }
    }

    /// Ledger proofs verify for every committed key and never verify for a
    /// perturbed value.
    #[test]
    fn ledger_proofs_are_sound(
        entries in proptest::collection::btree_map(
            proptest::collection::vec(1u8..255, 1..10),
            proptest::collection::vec(any::<u8>(), 0..32),
            1..60,
        )
    ) {
        let ledger = Ledger::new(InMemoryChunkStore::shared());
        let writes: Vec<_> = entries.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        ledger.append_block(writes, "proptest");
        for (k, v) in entries.iter().take(12) {
            let (value, proof) = ledger.get_with_proof(k);
            prop_assert_eq!(value.as_ref(), Some(v));
            prop_assert!(proof.verify(k, value.as_deref()));
            let mut forged = v.clone();
            forged.push(0xFF);
            prop_assert!(!proof.verify(k, Some(&forged)));
        }
    }

    /// MVCC snapshot reads always return the newest version at or below the
    /// snapshot timestamp.
    #[test]
    fn mvcc_snapshot_semantics(timestamps in proptest::collection::btree_set(1u64..1000, 1..50)) {
        let store = MvccStore::new();
        let ordered: Vec<u64> = timestamps.iter().copied().collect();
        for ts in &ordered {
            store.install(b"key", *ts, ts.to_be_bytes().to_vec());
        }
        for probe in [0u64, 1, 57, 500, 999, 1000, u64::MAX] {
            let expected = ordered.iter().rev().find(|ts| **ts <= probe);
            let got = store.read_at(b"key", probe).map(|v| v.commit_ts);
            prop_assert_eq!(got, expected.copied());
        }
    }

    /// The key/value API of SpitzDb is consistent with a plain map for any
    /// sequence of unique-key puts.
    #[test]
    fn spitz_matches_a_model_map(
        entries in proptest::collection::btree_map(
            "[a-z]{3,10}",
            proptest::collection::vec(any::<u8>(), 1..24),
            1..40,
        )
    ) {
        let db = SpitzDb::in_memory();
        for (k, v) in &entries {
            db.put(k.as_bytes(), v).unwrap();
        }
        for (k, v) in &entries {
            prop_assert_eq!(db.get(k.as_bytes()).unwrap(), Some(v.clone()));
        }
        prop_assert_eq!(db.get(b"@not-a-key").unwrap(), None);
        // The range over the full keyspace returns exactly the model's
        // entries in sorted order.
        let all = db.range(&[], &[0xffu8; 16]).unwrap();
        let model: Vec<(Vec<u8>, Vec<u8>)> = entries
            .iter()
            .map(|(k, v)| (k.as_bytes().to_vec(), v.clone()))
            .collect();
        prop_assert_eq!(all, model);
    }

    /// Index-node codec round-trip: any sequence of (u32, u64, hash, bytes)
    /// frames written by the `put_*` helpers is read back exactly by
    /// `Reader`, leaving the reader exhausted.
    #[test]
    fn index_codec_roundtrips(
        frames in proptest::collection::vec(
            (any::<u32>(), any::<u64>(), proptest::collection::vec(any::<u8>(), 0..48)),
            0..24,
        )
    ) {
        let mut buf = Vec::new();
        for (a, b, payload) in &frames {
            codec::put_u32(&mut buf, *a);
            codec::put_u64(&mut buf, *b);
            codec::put_hash(&mut buf, &sha256(payload));
            codec::put_bytes(&mut buf, payload);
        }
        let mut reader = Reader::new(&buf);
        for (a, b, payload) in &frames {
            prop_assert_eq!(reader.u32(), Some(*a));
            prop_assert_eq!(reader.u64(), Some(*b));
            prop_assert_eq!(reader.hash(), Some(sha256(payload)));
            prop_assert_eq!(reader.bytes(), Some(payload.as_slice()));
        }
        prop_assert!(reader.is_exhausted());
        // A truncated buffer never panics, it just yields None at the cut.
        // Every successful read must consume at least its 4-byte length
        // prefix, so the reader drains in a bounded number of steps.
        if !buf.is_empty() {
            let mut truncated = Reader::new(&buf[..buf.len() - 1]);
            let mut reads = 0usize;
            while truncated.bytes().is_some() {
                reads += 1;
                prop_assert!(reads * 4 <= buf.len(), "reader failed to consume input");
            }
        }
    }

    /// Merkle audit proofs built from arbitrary leaves verify against the
    /// root, and fail for tampered leaf data or a tampered root.
    #[test]
    fn merkle_audit_proofs_roundtrip(
        leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 1..48),
        probe in any::<u64>(),
    ) {
        let tree = MerkleTree::from_leaves(leaves.iter().map(|l| l.as_slice()));
        let root = tree.root();
        prop_assert_eq!(tree.len(), leaves.len());
        let index = (probe as usize) % leaves.len();
        let proof = tree.audit_proof(index).unwrap();
        prop_assert!(proof.verify(root, &leaves[index]));
        let mut tampered = leaves[index].clone();
        tampered.push(0xA5);
        prop_assert!(!proof.verify(root, &tampered));
        prop_assert!(!proof.verify(sha256(b"wrong root"), &leaves[index]));
    }

    /// A sharded Spitz under randomly interleaved single-key puts and
    /// cross-shard batches stays consistent with a plain map model: every
    /// read and proof agrees with the model, and the cross-shard digest is
    /// self-consistent and advances by exactly the number of shard ledgers
    /// each commit touched.
    #[test]
    fn sharded_db_matches_a_model_map(
        batches in proptest::collection::vec(
            proptest::collection::vec(
                ("[a-f]{1,6}", proptest::collection::vec(any::<u8>(), 1..16)),
                1..6,
            ),
            1..20,
        ),
        shard_count in 1usize..5,
    ) {
        let db = ShardedDb::in_memory(shard_count);
        let mut model: std::collections::HashMap<Vec<u8>, Vec<u8>> =
            std::collections::HashMap::new();
        let mut last_epoch = 0u64;

        for batch in &batches {
            let writes: Vec<(Vec<u8>, Vec<u8>)> = batch
                .iter()
                .map(|(k, v)| (k.as_bytes().to_vec(), v.clone()))
                .collect();
            let involved: std::collections::HashSet<usize> =
                writes.iter().map(|(k, _)| db.route(k)).collect();
            let digest = db.put_batch(writes.clone()).unwrap();
            for (k, v) in writes {
                model.insert(k, v);
            }

            // The digest is recomputed per commit epoch: it must be
            // self-consistent and advance by one block per touched shard.
            prop_assert!(digest.verify());
            prop_assert_eq!(digest.shards.len(), shard_count);
            prop_assert_eq!(digest.epoch, last_epoch + involved.len() as u64);
            last_epoch = digest.epoch;

            // Reads and proofs agree with the model after every epoch.
            for (k, v) in model.iter().take(8) {
                prop_assert_eq!(db.get(k).unwrap().as_ref(), Some(v));
                let (value, proof) = db.get_verified(k).unwrap();
                prop_assert_eq!(value.as_ref(), Some(v));
                prop_assert_eq!(proof.root, digest.root);
                prop_assert!(proof.verify(k, value.as_deref()));
                prop_assert!(!proof.verify(k, Some(b"forged")));
            }
            let (missing, proof) = db.get_verified(b"zzz-never-written").unwrap();
            prop_assert!(missing.is_none());
            prop_assert!(proof.verify(b"zzz-never-written", None));
        }

        // Final sweep: the whole keyspace matches the model, shard by shard.
        for (k, v) in &model {
            prop_assert_eq!(db.get(k).unwrap().as_ref(), Some(v));
            prop_assert_eq!(
                db.shard(db.route(k)).get(k).unwrap().as_ref(),
                Some(v)
            );
        }
        let total: usize = (0..db.shard_count()).map(|s| db.shard(s).ledger().len()).sum();
        prop_assert_eq!(total, model.len());
    }

    /// The sharded snapshot's verified range read equals the HashMap model
    /// exactly (completeness both ways), every returned entry's proof
    /// chains to the single pinned root, and a mutated per-shard response —
    /// a forged value, an omitted entry, a smuggled entry — is rejected by
    /// the merge verification.
    #[test]
    fn sharded_range_verified_matches_model_and_rejects_tampering(
        entries in proptest::collection::btree_map(
            "[a-m]{1,5}",
            proptest::collection::vec(any::<u8>(), 1..12),
            1..60,
        ),
        bounds in ("[a-m]{1,3}", "[a-m]{1,3}"),
        shard_count in 1usize..5,
    ) {
        let db = ShardedDb::in_memory(shard_count);
        let mut model: std::collections::HashMap<Vec<u8>, Vec<u8>> =
            std::collections::HashMap::new();
        let writes: Vec<(Vec<u8>, Vec<u8>)> = entries
            .iter()
            .map(|(k, v)| (k.as_bytes().to_vec(), v.clone()))
            .collect();
        for (k, v) in &writes {
            model.insert(k.clone(), v.clone());
        }
        db.put_batch(writes).unwrap();

        let (lo, hi) = (bounds.0.as_bytes(), bounds.1.as_bytes());
        let (start, end) = if lo <= hi { (lo, hi) } else { (hi, lo) };

        let snapshot = db.snapshot().unwrap();
        let (got, proof) = snapshot.range_verified(start, end).unwrap();

        // Exactly the model's contents in [start, end), in key order.
        let mut expected: Vec<(Vec<u8>, Vec<u8>)> = model
            .iter()
            .filter(|(k, _)| k.as_slice() >= start && k.as_slice() < end)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        expected.sort_by(|a, b| a.0.cmp(&b.0));
        prop_assert_eq!(&got, &expected);

        // The merged proof verifies against the pinned root, and so does
        // every entry individually through the point-read path.
        prop_assert!(proof.verify(&got));
        prop_assert_eq!(proof.root, snapshot.root());
        let mut client = spitz::Verifier::new();
        prop_assert!(client.observe_sharded(snapshot.digest()));
        prop_assert!(client.verify_sharded_range(&got, &proof));
        for (k, v) in got.iter().take(6) {
            let (value, point_proof) = snapshot.get_verified(k);
            prop_assert_eq!(value.as_ref(), Some(v));
            prop_assert!(client.verify_sharded_read(k, value.as_deref(), &point_proof));
        }

        // Tampering with one shard's range response is rejected.
        if !got.is_empty() {
            let mut forged = got.clone();
            forged[0].1.push(0xFF);
            prop_assert!(!proof.verify(&forged));

            let mut truncated = got.clone();
            truncated.remove(truncated.len() / 2);
            prop_assert!(!proof.verify(&truncated));

            let mut smuggled = got.clone();
            let mut alien = start.to_vec();
            alien.push(b'z');
            if start < end && !model.contains_key(&alien) {
                smuggled.push((alien, b"alien".to_vec()));
                smuggled.sort_by(|a, b| a.0.cmp(&b.0));
                prop_assert!(!proof.verify(&smuggled));
            }
        }
    }

    /// The content-defined chunker is deterministic and lossless: the split
    /// chunks reassemble to the original input, and splitting again yields
    /// identical cut points.
    #[test]
    fn chunker_split_reassembles(data in proptest::collection::vec(any::<u8>(), 0..50_000)) {
        let chunker = Chunker::with_defaults();
        let chunks = chunker.split(&data);
        let reassembled: Vec<u8> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
        prop_assert_eq!(reassembled, data.clone());
        prop_assert!(chunks.iter().all(|c| !c.is_empty()));
        prop_assert_eq!(chunker.cut_points(&data), chunker.cut_points(&data));
    }
}
