//! Cross-crate integration tests: the full write → ledger → proof → client
//! verification pipeline, system-equivalence between Spitz and the
//! comparison systems, and tampering detection end to end.

use spitz::baseline::{ImmutableKvs, NonIntrusiveVdb, QldbBaseline};
use spitz::{ClientVerifier, ColumnType, Record, Schema, SpitzDb, Value};

fn record(i: usize) -> (Vec<u8>, Vec<u8>) {
    (
        format!("key-{i:06}").into_bytes(),
        format!("value-{i}").into_bytes(),
    )
}

#[test]
fn spitz_end_to_end_write_read_verify() {
    let db = SpitzDb::in_memory();
    let mut client = ClientVerifier::new();

    for batch in (0..2_000).map(record).collect::<Vec<_>>().chunks(100) {
        let digest = db.put_batch(batch.to_vec()).unwrap();
        assert!(client.observe_digest(digest), "digests must move forward");
    }
    assert_eq!(db.digest().block_height, 19);

    // Every key is readable, verifiable online and via deferred batches.
    for i in (0..2_000).step_by(97) {
        let (k, v) = record(i);
        assert_eq!(db.get(&k).unwrap(), Some(v.clone()));
        let (value, proof) = db.get_verified(&k).unwrap();
        assert_eq!(value, Some(v.clone()));
        assert!(client.verify_read(&k, value.as_deref(), &proof));
        client.defer_read(k, value, db.get_verified(&record(i).0).unwrap().1);
    }
    assert!(client.flush_deferred().all_ok());

    // Range scans with a single combined proof.
    let (entries, proof) = db.range_verified(&record(500).0, &record(600).0).unwrap();
    assert_eq!(entries.len(), 100);
    assert!(client.verify_range(&entries, &proof));

    // The chain audits clean and historical versions stay readable.
    assert_eq!(db.ledger().audit_chain(), None);
    let old = db.ledger().checkout(4).unwrap();
    assert_eq!(old.len(), 500);
    assert_eq!(old.get(&record(499).0), Some(record(499).1));
    assert_eq!(old.get(&record(501).0), None);
}

#[test]
fn all_systems_return_identical_data_for_the_same_workload() {
    let records: Vec<_> = (0..1_000).map(record).collect();

    let spitz = SpitzDb::in_memory();
    let kvs = ImmutableKvs::new();
    let qldb = QldbBaseline::new();
    let non_intrusive = NonIntrusiveVdb::new();
    for (k, v) in &records {
        spitz.put(k, v).unwrap();
        kvs.put(k, v);
        qldb.put(k, v);
        non_intrusive.put(k, v);
    }
    qldb.seal();

    for (k, v) in records.iter().step_by(53) {
        assert_eq!(spitz.get(k).unwrap().as_ref(), Some(v));
        assert_eq!(kvs.get(k).as_ref(), Some(v));
        assert_eq!(qldb.get(k).as_ref(), Some(v));
        assert_eq!(non_intrusive.get(k).as_ref(), Some(v));
    }

    // Range results agree (same ordering, same contents).
    let start = record(100).0;
    let end = record(200).0;
    let spitz_range = spitz.range(&start, &end).unwrap();
    assert_eq!(spitz_range, kvs.range(&start, &end));
    assert_eq!(spitz_range, qldb.range(&start, &end));
    assert_eq!(spitz_range, non_intrusive.range(&start, &end));
    assert_eq!(spitz_range.len(), 100);

    // Verified reads succeed on every verifiable system.
    let (k, v) = record(321);
    let (value, proof) = spitz.get_verified(&k).unwrap();
    assert!(proof.verify(&k, value.as_deref()));
    let (value, proof) = qldb.get_verified(&k).unwrap();
    assert_eq!(value, v);
    assert!(proof.verify(&k, &value));
    let (value, proof) = non_intrusive.get_verified(&k);
    assert!(proof.verify(&k, value.as_deref()));
}

#[test]
fn tampering_with_any_layer_is_detected() {
    let db = SpitzDb::in_memory();
    db.put_batch((0..200).map(record).collect()).unwrap();
    let mut client = ClientVerifier::new();
    client.observe_digest(db.digest());

    let (k, _) = record(42);
    let (value, proof) = db.get_verified(&k).unwrap();

    // Forged value, forged absence, stale digest, wrong key.
    assert!(!client.verify_read(&k, Some(b"forged"), &proof));
    assert!(!client.verify_read(&k, None, &proof));
    assert!(!client.verify_read(&record(43).0, value.as_deref(), &proof));

    // A range result with an extra injected row fails.
    let (mut entries, range_proof) = db.range_verified(&record(10).0, &record(20).0).unwrap();
    entries.push((b"injected".to_vec(), b"row".to_vec()));
    assert!(!client.verify_range(&entries, &range_proof));

    // A range result with a modified row fails.
    let (mut entries, range_proof) = db.range_verified(&record(10).0, &record(20).0).unwrap();
    entries[0].1 = b"forged".to_vec();
    assert!(!client.verify_range(&entries, &range_proof));
}

#[test]
fn typed_tables_flow_through_the_ledger() {
    let db = SpitzDb::in_memory();
    db.create_table(Schema::new(
        "events",
        vec![("kind", ColumnType::Text), ("amount", ColumnType::Integer)],
    ))
    .unwrap();
    for i in 0..100 {
        db.insert_record(
            "events",
            &Record::new(format!("evt-{i:04}"))
                .with(
                    "kind",
                    Value::Text(if i % 2 == 0 { "credit" } else { "debit" }.into()),
                )
                .with("amount", Value::Integer(i)),
        )
        .unwrap();
    }
    // Each record is one ledger block; analytics agree with the raw data.
    assert_eq!(db.digest().block_height, 99);
    assert_eq!(
        db.query_eq("events", "kind", &Value::Text("credit".into()))
            .unwrap()
            .len(),
        50
    );
    assert_eq!(
        db.query_int_range("events", "amount", 0, 10).unwrap().len(),
        10
    );
    assert_eq!(db.ledger().audit_chain(), None);

    let rec = db.get_record("events", "evt-0042").unwrap().unwrap();
    assert_eq!(rec.get("amount"), Some(&Value::Integer(42)));
}

#[test]
fn storage_deduplication_bounds_ledger_growth() {
    // The Figure 1 / node-sharing property end to end: updating the same key
    // many times grows storage far slower than inserting distinct keys.
    let updates = SpitzDb::in_memory();
    for _ in 0..500usize {
        // Re-writing identical content: the ledger index reaches an identical
        // state each time, so its nodes are deduplicated by content address.
        updates.put(b"same-key", b"same-value").unwrap();
    }
    let distinct = SpitzDb::in_memory();
    for i in 0..500usize {
        distinct
            .put(format!("key-{i}").as_bytes(), b"value")
            .unwrap();
    }
    let u = updates.storage_stats();
    let d = distinct.storage_stats();
    assert!(u.physical_bytes > 0 && d.physical_bytes > 0);
    // Both retain all history (immutable), but dedup keeps repeated content
    // from being stored twice.
    assert!(u.dedup_hits > 0);
}
