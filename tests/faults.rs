//! Fault-hardening integration tests: injected `ENOSPC` and torn writes
//! flip a live database read-only (verified reads keep serving, writes
//! fail fast with the typed error), in-doubt 2PC staged batches survive
//! scrub and compaction passes until their decision resolves, and
//! [`ShardedDb::recover`] races the background scrubber/compactor safely.
//!
//! The long seeded chaos soak at the bottom is `#[ignore]`d; CI's soak
//! step runs it explicitly with `--ignored`.

use std::sync::Arc;

use spitz::core::db::{SpitzConfig, SpitzDb};
use spitz::core::proof::Verifier;
use spitz::core::sharded::{ShardedConfig, ShardedDb};
use spitz::core::{DbError, HealthState};
use spitz::storage::{DurableConfig, IoErrorKind, WriteOutcome};
use spitz_faults::FaultInjector;

mod common;
use common::TempDir;

fn key(i: u32) -> Vec<u8> {
    format!("fault/{i:05}").into_bytes()
}

fn value(i: u32) -> Vec<u8> {
    format!("value-{i}").into_bytes()
}

/// A database under a seeded injector with `count` acknowledged writes.
fn db_with_writes(dir: &TempDir, seed: u64, count: u32) -> (SpitzDb, Arc<FaultInjector>) {
    let injector = Arc::new(FaultInjector::new(seed));
    let db = SpitzDb::open_with_io(
        dir.path(),
        SpitzConfig::default(),
        DurableConfig::default(),
        injector.handle(),
    )
    .expect("open with injector");
    for i in 0..count {
        db.put(&key(i), &value(i)).expect("pre-fault put");
    }
    (db, injector)
}

/// Every key in `0..count` reads back verified out of `db`.
fn assert_all_verified(db: &SpitzDb, count: u32) {
    let mut client = Verifier::new();
    assert!(client.observe_digest(db.digest()));
    for i in 0..count {
        let (got, proof) = db.get_verified(&key(i)).expect("verified read");
        assert_eq!(got.as_deref(), Some(value(i).as_ref()));
        assert!(client.verify_read(&key(i), got.as_deref(), &proof));
    }
}

/// The acceptance scenario: an injected `ENOSPC` flips the store to
/// `ReadOnly`, where verified reads still succeed and writes return the
/// typed [`DbError::ReadOnly`].
#[test]
fn enospc_flips_store_read_only_reads_keep_serving() {
    let dir = TempDir::new("faults-enospc");
    let (db, injector) = db_with_writes(&dir, 0xE05, 20);
    assert_eq!(db.health(), HealthState::Healthy);

    let (appends, _) = injector.ops();
    injector.fail_append_at(appends, WriteOutcome::Fail(IoErrorKind::NoSpace));
    db.put(b"fault/over", b"x").expect_err("device is full");

    assert_eq!(db.health(), HealthState::ReadOnly);
    let reason = db.health_reason().expect("durable store has a reason");
    assert!(reason.contains("space"), "unexpected reason: {reason}");

    // Writes fail fast with the typed error from now on.
    let err = db.put(b"fault/after", b"x").expect_err("read-only");
    assert!(matches!(err, DbError::ReadOnly(_)), "got {err}");
    let err = db
        .put_batch(vec![(b"fault/batch".to_vec(), b"x".to_vec())])
        .expect_err("read-only");
    assert!(matches!(err, DbError::ReadOnly(_)), "got {err}");

    // Verified reads keep serving out of the degraded store.
    assert_all_verified(&db, 20);

    // The un-acknowledged write is not visible.
    assert_eq!(db.get(b"fault/over").unwrap(), None);
}

/// A torn append flips the store read-only (its in-memory tail is no
/// longer trustworthy); reopening without the injector truncates the torn
/// tail and recovers every acknowledged write.
#[test]
fn torn_write_goes_read_only_and_reopen_recovers() {
    let dir = TempDir::new("faults-torn");
    let (db, injector) = db_with_writes(&dir, 0x7032, 20);

    let (appends, _) = injector.ops();
    injector.fail_append_at(appends, WriteOutcome::Torn { prefix: 11 });
    db.put(b"fault/torn", b"x").expect_err("torn write");

    assert_eq!(db.health(), HealthState::ReadOnly);
    assert_all_verified(&db, 20);

    // Crash with the torn tail in place; the reopen scan truncates it.
    std::mem::forget(db);
    let reopened = SpitzDb::open(dir.path()).expect("reopen after torn tail");
    assert_eq!(reopened.health(), HealthState::Healthy);
    assert_all_verified(&reopened, 20);
    assert_eq!(reopened.get(b"fault/torn").unwrap(), None);

    // The recovered database accepts writes again.
    reopened
        .put(b"fault/resumed", b"y")
        .expect("writable again");
}

/// PR-8 follow-up: with `scrub_interval` configured, the background
/// scrubber thread must find a silently bit-flipped sealed segment and
/// quarantine it on its own cadence — the test never calls `scrub()`.
#[test]
fn periodic_scrub_quarantines_bitflip_without_explicit_scrub() {
    use std::time::{Duration, Instant};

    let dir = TempDir::new("faults-periodic-scrub");
    let injector = Arc::new(FaultInjector::new(0x5C12B));
    // A silent bit flip in an early record: the write reports success, and
    // nothing on the hot path notices (the fresh chunk is served from
    // cache). Only a CRC walk over the sealed segment can catch it.
    injector.fail_append_at(
        5,
        WriteOutcome::Corrupt {
            offset: 21,
            mask: 0x40,
        },
    );
    let db = SpitzDb::open_with_io(
        dir.path(),
        SpitzConfig::default().with_scrub_interval(Duration::from_millis(25)),
        DurableConfig {
            segment_target_bytes: 2 * 1024,
            ..DurableConfig::default()
        },
        injector.handle(),
    )
    .expect("open with scrubber");

    // Enough writes that the damaged record's segment seals and rotates
    // out of the active position (scrub only walks sealed segments). A
    // fast scrub tick may quarantine the segment while this loop is still
    // running, flipping the store read-only mid-loop — that is the
    // behavior under test, not a failure.
    for i in 0..60 {
        match db.put(&key(i), &value(i)) {
            Ok(_) => {}
            Err(DbError::ReadOnly(_)) => break,
            Err(other) => panic!("unexpected write error: {other}"),
        }
    }

    // No explicit scrub() anywhere: wait for the background cadence.
    let deadline = Instant::now() + Duration::from_secs(30);
    while db.health() == HealthState::Healthy {
        assert!(
            Instant::now() < deadline,
            "background scrubber never flagged the corrupt segment"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let quarantined = std::fs::read_dir(dir.path().join("quarantine"))
        .map(|entries| entries.count())
        .unwrap_or(0);
    assert!(
        quarantined > 0,
        "corrupt segment file must be preserved under quarantine/"
    );
    assert!(db.health_reason().is_some());
}

/// A cross-shard batch of `n` keys from `start` guaranteed to span at
/// least two shards.
fn cross_shard_batch(db: &ShardedDb, start: u32, n: u32) -> Vec<(Vec<u8>, Vec<u8>)> {
    let writes: Vec<(Vec<u8>, Vec<u8>)> = (start..start + n)
        .map(|i| (format!("2pc/{i:05}").into_bytes(), value(i)))
        .collect();
    let shards: std::collections::HashSet<usize> =
        writes.iter().map(|(k, _)| db.route(k)).collect();
    assert!(shards.len() >= 2, "batch must span shards");
    writes
}

/// Small segments so churn actually creates garbage for compaction.
fn small_sharded_config() -> ShardedConfig {
    ShardedConfig::default()
        .with_shards(2)
        .with_durable(DurableConfig {
            segment_target_bytes: 4 * 1024,
            ..DurableConfig::default()
        })
}

/// An in-doubt staged batch stays live through scrub and compaction
/// passes on every shard: the GC must treat staged chunks as reachable,
/// so the decision can still commit afterwards.
#[test]
fn in_doubt_batch_survives_scrub_and_compact_until_decision() {
    let dir = TempDir::new("faults-indoubt");
    let db = ShardedDb::open(dir.path(), small_sharded_config()).expect("open");
    for i in 0..40 {
        db.put(&key(i), &value(i)).unwrap();
    }

    let writes = cross_shard_batch(&db, 0, 8);
    let prepared = db.prepare_batch(writes.clone()).expect("phase 1");

    // Churn the shards to create garbage, then GC them while the batch is
    // still in doubt.
    for i in 0..40 {
        db.put(&key(i), &value(i + 1000)).unwrap();
    }
    for s in 0..db.shard_count() {
        db.shard(s).scrub().expect("scrub with staged batch");
        db.shard(s).compact().expect("compact with staged batch");
    }

    // The decision still lands: staged state survived both passes.
    db.commit_prepared(prepared).expect("phase 2 after GC");
    for (k, v) in &writes {
        assert_eq!(db.get(k).unwrap().as_deref(), Some(v.as_slice()));
    }
    // Nothing left in doubt.
    assert_eq!(db.recover(), 0);
}

/// `recover()` racing concurrent scrubber/compactor passes after a
/// coordinator crash: the undecided batch is presumed aborted exactly
/// once, no committed data is disturbed, and the deployment keeps
/// serving verified reads and fresh batches.
#[test]
fn recover_races_scrub_and_compact_after_coordinator_crash() {
    let dir = TempDir::new("faults-recover-race");
    let config = small_sharded_config();
    let db = ShardedDb::open(dir.path(), config).expect("open");
    for i in 0..40 {
        db.put(&key(i), &value(i)).unwrap();
    }
    let committed_digest = db.digest();

    let writes = cross_shard_batch(&db, 100, 8);
    let prepared = db.prepare_batch(writes.clone()).expect("phase 1");
    // Coordinator crash between the phases: the handle is gone, the
    // staged parts are durable on the shards.
    drop(prepared);
    std::mem::forget(db);

    let db = ShardedDb::open(dir.path(), config).expect("reopen");
    // The eager pass at open leaves undecided entries for an explicit
    // recover(); the staged batch is still in doubt here.
    let gc: Vec<std::thread::JoinHandle<()>> = (0..db.shard_count())
        .map(|s| {
            let shard = Arc::clone(db.shard(s));
            std::thread::spawn(move || {
                for _ in 0..5 {
                    shard.scrub().expect("scrub during recovery");
                    shard.compact().expect("compact during recovery");
                }
            })
        })
        .collect();
    let resolved = db.recover();
    for handle in gc {
        handle.join().expect("gc thread");
    }
    assert!(resolved >= 1, "the staged batch must be resolved");

    // Presumed abort: none of the in-doubt writes became visible.
    for (k, _) in &writes {
        assert_eq!(db.get(k).unwrap(), None);
    }
    // Every committed write survived the race, with proofs.
    assert_eq!(db.digest(), committed_digest);
    let mut client = Verifier::new();
    assert!(client.observe_sharded(&db.digest()));
    for i in 0..40 {
        let (got, proof) = db.get_verified(&key(i)).expect("verified read");
        assert_eq!(got.as_deref(), Some(value(i).as_ref()));
        assert!(client.verify_sharded_read(&key(i), got.as_deref(), &proof));
    }
    // And the deployment accepts the batch cleanly now.
    db.put_batch(writes.clone()).expect("fresh batch");
    for (k, v) in &writes {
        assert_eq!(db.get(k).unwrap().as_deref(), Some(v.as_slice()));
    }
}

/// Long seeded chaos soak over all three schedule families. Excluded from
/// the default test run; CI's soak step runs it with `--ignored`.
#[test]
#[ignore = "long chaos soak; run explicitly with --ignored"]
fn chaos_soak() {
    let mut injected = 0;
    for i in 0..240u64 {
        let seed = 0x50AC_0000 + i;
        println!("soak schedule {i}: seed={seed:#x}");
        let report = match i % 3 {
            0 => spitz_bench::chaos::run_kv_schedule(seed),
            1 => spitz_bench::chaos::run_scrub_schedule(seed),
            _ => spitz_bench::chaos::run_2pc_schedule(seed),
        };
        injected += report.faults_injected;
    }
    assert!(injected > 0, "the soak must actually inject faults");
}
