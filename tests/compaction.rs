//! Full-stack segment-compaction tests: mark-sweep GC over a live
//! `SpitzDb`/`ShardedDb` must reclaim garbage without changing any digest,
//! breaking any proof (including proofs against snapshots pinned *before*
//! the pass), or losing in-doubt 2PC state — and a crash at either
//! compaction crash point must reopen to byte-identical state.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use spitz::core::db::CompactionTrigger;
use spitz::core::sharded::{ShardedConfig, ShardedDb};
use spitz::core::staged::StagedLog;
use spitz::storage::durable::CompactionFault;
use spitz::storage::DurableConfig;
use spitz::{ClientVerifier, Hash, SpitzConfig, SpitzDb};

mod common;
use common::TempDir;

/// Small segments so a handful of epochs spans many sealed segments.
fn small_segments() -> DurableConfig {
    DurableConfig {
        segment_target_bytes: 32 * 1024,
        ..DurableConfig::default()
    }
}

fn key(i: u32) -> Vec<u8> {
    format!("acct/{i:05}").into_bytes()
}

/// One commit epoch: overwrite all `n` keys (previous versions become
/// garbage — superseded index nodes and dead cell chunks).
fn epoch(db: &SpitzDb, e: u32, n: u32) {
    let writes: Vec<_> = (0..n)
        .map(|i| (key(i), format!("epoch-{e}-value-{i}").into_bytes()))
        .collect();
    db.put_batch(writes).unwrap();
}

#[test]
fn compaction_reclaims_garbage_and_preserves_digests_and_pinned_proofs() {
    let dir = TempDir::new("compact-basic");
    let db =
        SpitzDb::open_with_configs(dir.path(), SpitzConfig::default(), small_segments()).unwrap();

    for e in 0..6 {
        epoch(&db, e, 50);
    }
    // Pin a snapshot at an *old* root, then keep writing past it: the
    // pinned checkout must survive the sweep even though the live head has
    // long moved on.
    let pinned = db.snapshot().unwrap();
    let pinned_digest = pinned.digest();
    for e in 6..12 {
        epoch(&db, e, 50);
    }
    db.flush().unwrap();

    let pre = db.digest();
    let before = db.storage_stats();
    let report = db
        .compact()
        .unwrap()
        .expect("multiple sealed segments to compact");
    assert!(report.chunks_dropped > 0, "overwrites must leave garbage");
    assert!(report.bytes_reclaimed > 0);
    assert!(!report.victim_segments.is_empty());

    let after = db.storage_stats();
    assert!(
        after.disk_bytes < before.disk_bytes,
        "disk must shrink: {} -> {}",
        before.disk_bytes,
        after.disk_bytes
    );
    assert!(after.live_bytes > 0, "the mark pass measures live bytes");
    assert!(after.dead_bytes() < after.disk_bytes);

    // The digest is untouched — compaction moves chunks, never alters them.
    assert_eq!(db.digest(), pre);

    // Live verified reads still verify against the current digest.
    let mut client = ClientVerifier::new();
    assert!(client.observe_digest(db.digest()));
    for i in (0..50).step_by(7) {
        let (value, proof) = db.get_verified(&key(i)).unwrap();
        assert_eq!(value, Some(format!("epoch-11-value-{i}").into_bytes()));
        assert!(client.verify_read(&key(i), value.as_deref(), &proof));
    }

    // The pre-compaction pin still serves repeatable verified reads.
    let mut pinned_client = ClientVerifier::new();
    assert!(pinned_client.observe_digest(pinned_digest));
    for i in (0..50).step_by(11) {
        let (value, proof) = pinned.get_verified(&key(i));
        assert_eq!(value, Some(format!("epoch-5-value-{i}").into_bytes()));
        assert!(pinned_client.verify_read(&key(i), value.as_deref(), &proof));
    }
    drop(pinned);

    // Reopen: byte-identical digest, proofs keep verifying.
    drop(db);
    let db =
        SpitzDb::open_with_configs(dir.path(), SpitzConfig::default(), small_segments()).unwrap();
    assert_eq!(db.digest(), pre);
    let (value, proof) = db.get_verified(&key(3)).unwrap();
    assert!(client.verify_read(&key(3), value.as_deref(), &proof));
    assert_eq!(db.ledger().audit_chain(), None);
}

#[test]
fn compaction_crash_points_reopen_to_identical_digests() {
    for fault in [CompactionFault::BeforeSwap, CompactionFault::BeforeDelete] {
        let dir = TempDir::new("compact-crash");
        let pre;
        let pinned_digest;
        {
            let db =
                SpitzDb::open_with_configs(dir.path(), SpitzConfig::default(), small_segments())
                    .unwrap();
            for e in 0..10 {
                epoch(&db, e, 40);
            }
            db.flush().unwrap();
            pre = db.digest();
            let snapshot = db.snapshot().unwrap();
            pinned_digest = snapshot.digest();

            let durable = Arc::clone(db.durable_store().expect("durable instance"));
            let err = durable
                .compact_with_fault(|| db.collect_live(), fault)
                .unwrap_err();
            assert!(err.to_string().contains("injected"), "{fault:?}: {err}");
            // The process dies mid-compaction: no graceful drop, no flush.
            drop(snapshot);
            std::mem::forget(db);
        }

        let db = SpitzDb::open_with_configs(dir.path(), SpitzConfig::default(), small_segments())
            .unwrap();
        assert_eq!(db.digest(), pre, "{fault:?}: reopen must be identical");
        assert_eq!(db.digest(), pinned_digest, "{fault:?}");
        let mut client = ClientVerifier::new();
        assert!(client.observe_digest(db.digest()));
        for i in 0..40 {
            let (value, proof) = db.get_verified(&key(i)).unwrap();
            assert_eq!(
                value,
                Some(format!("epoch-9-value-{i}").into_bytes()),
                "{fault:?}: key {i}"
            );
            assert!(client.verify_read(&key(i), value.as_deref(), &proof));
        }
        assert_eq!(db.ledger().audit_chain(), None, "{fault:?}");

        // The interrupted pass left nothing wedged: writes and a clean
        // compaction still work.
        epoch(&db, 10, 40);
        db.flush().unwrap();
        db.compact().unwrap();
        assert_eq!(
            db.get(&key(0)).unwrap(),
            Some(b"epoch-10-value-0".to_vec()),
            "{fault:?}"
        );
    }
}

#[test]
fn automatic_trigger_compacts_on_the_write_path() {
    let trigger = CompactionTrigger {
        min_disk_bytes: 64 * 1024,
        max_space_amp: 1.5,
    };
    let with_dir = TempDir::new("compact-auto");
    let without_dir = TempDir::new("compact-manual");
    let with = SpitzDb::open_with_configs(
        with_dir.path(),
        SpitzConfig::default().with_compaction(trigger),
        small_segments(),
    )
    .unwrap();
    let without =
        SpitzDb::open_with_configs(without_dir.path(), SpitzConfig::default(), small_segments())
            .unwrap();

    for e in 0..30 {
        epoch(&with, e, 40);
        epoch(&without, e, 40);
    }
    with.flush().unwrap();
    without.flush().unwrap();

    // The trigger fired: a mark pass measured live bytes, and the disk
    // footprint is strictly below the never-compacted twin's.
    let auto = with.storage_stats();
    let manual = without.storage_stats();
    assert!(auto.live_bytes > 0, "no automatic mark pass ran");
    assert!(
        auto.disk_bytes < manual.disk_bytes,
        "auto-compacted {} must be smaller than uncompacted {}",
        auto.disk_bytes,
        manual.disk_bytes
    );

    // Same writes, same digest — compaction changed layout only.
    assert_eq!(with.digest(), without.digest());
    let mut client = ClientVerifier::new();
    assert!(client.observe_digest(with.digest()));
    let (value, proof) = with.get_verified(&key(17)).unwrap();
    assert_eq!(value, Some(b"epoch-29-value-17".to_vec()));
    assert!(client.verify_read(&key(17), value.as_deref(), &proof));
}

#[test]
fn sharded_compaction_keeps_staged_batches_and_the_cross_shard_digest() {
    let dir = TempDir::new("compact-sharded");
    let config = ShardedConfig::default()
        .with_shards(3)
        .with_durable(small_segments());
    let writes: Vec<(Vec<u8>, Vec<u8>)> = (1000..1024u32)
        .map(|i| (key(i), format!("staged-{i}").into_bytes()))
        .collect();

    let pre;
    {
        let db = ShardedDb::open(dir.path(), config).unwrap();
        for e in 0..8 {
            let batch: Vec<_> = (0..45)
                .map(|i| (key(i), format!("epoch-{e}-value-{i}").into_bytes()))
                .collect();
            db.put_batch(batch).unwrap();
        }
        // An in-doubt cross-shard batch with a durable commit decision:
        // its staged chunks are garbage to everything except the 2PC logs,
        // so the sweep must keep them alive.
        let prepared = db.prepare_batch(writes.clone()).unwrap();
        assert!(prepared.involved_shards().len() > 1);
        StagedLog::decisions(Arc::clone(db.shard(0).store()))
            .add(prepared.global_txn_id(), Hash::ZERO)
            .unwrap();
        db.flush().unwrap();

        pre = db.digest();
        let reports = db.compact().unwrap();
        assert!(
            reports.iter().any(|r| r.is_some()),
            "at least one shard must have sealed segments to compact"
        );
        assert_eq!(db.digest(), pre, "compaction must not move any shard");
        db.flush().unwrap();
        // Process dies with the decision durable but nothing applied.
        drop(prepared);
    }

    // Reopen: the decided batch is redone from its staged chunks — which
    // therefore must have survived the compaction pass above.
    let db = ShardedDb::open(dir.path(), config).unwrap();
    for (k, v) in &writes {
        assert_eq!(
            db.get(k).unwrap(),
            Some(v.clone()),
            "staged chunk must survive compaction for the redo"
        );
    }
    assert_eq!(db.recover(), 0);
    for s in 0..3 {
        assert_eq!(db.shard(s).ledger().audit_chain(), None);
    }
}

/// Long soak (run with `--ignored`): ≥50 commit epochs of overwrites with
/// automatic compaction enabled and a concurrent verified reader. Disk must
/// stay within 2× of live bytes (plus bounded active-segment slack), every
/// verified read and pinned-snapshot proof must succeed throughout, and the
/// final digest must survive a reopen byte-identically.
#[test]
#[ignore = "long soak; exercised by the dedicated CI step"]
fn soak_disk_stays_within_twice_live_bytes_under_concurrent_readers() {
    const EPOCHS: u32 = 60;
    const KEYS: u32 = 64;
    let segment_target = 32 * 1024u64;
    let dir = TempDir::new("compact-soak");
    let trigger = CompactionTrigger {
        min_disk_bytes: 128 * 1024,
        max_space_amp: 2.0,
    };
    let db = Arc::new(
        SpitzDb::open_with_configs(
            dir.path(),
            SpitzConfig::default().with_compaction(trigger),
            DurableConfig {
                segment_target_bytes: segment_target,
                ..DurableConfig::default()
            },
        )
        .unwrap(),
    );
    epoch(&db, 0, KEYS);

    // Concurrent reader: pin a snapshot, serve verified reads from it, and
    // verify live reads — in a loop, racing epochs and compaction passes.
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rounds = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snapshot = db.snapshot().expect("snapshot");
                let mut pinned = ClientVerifier::new();
                assert!(pinned.observe_digest(snapshot.digest()));
                for i in (0..KEYS).step_by(9) {
                    let (value, proof) = snapshot.get_verified(&key(i));
                    assert!(
                        pinned.verify_read(&key(i), value.as_deref(), &proof),
                        "pinned proof failed mid-compaction"
                    );
                    assert!(value.is_some(), "seeded key vanished");
                }
                let mut live = ClientVerifier::new();
                let (value, proof) = db.get_verified(&key(1)).expect("read");
                assert!(live.observe_digest(proof.digest));
                assert!(
                    live.verify_read(&key(1), value.as_deref(), &proof),
                    "live verified read failed mid-compaction"
                );
                rounds += 1;
            }
            rounds
        })
    };

    for e in 1..EPOCHS {
        epoch(&db, e, KEYS);
    }
    stop.store(true, Ordering::Relaxed);
    let rounds = reader.join().expect("reader thread must not panic");
    assert!(rounds > 0, "the reader must have raced the writers");

    db.flush().unwrap();
    db.compact().unwrap();
    let stats = db.storage_stats();
    assert!(stats.live_bytes > 0);
    // The acceptance bound: disk within 2× of live, modulo the segments
    // compaction cannot touch (the active one and the freshly re-armed
    // slack around it).
    let bound = 2 * stats.live_bytes + 2 * segment_target;
    assert!(
        stats.disk_bytes <= bound,
        "space leak: disk {} > bound {} (live {})",
        stats.disk_bytes,
        bound,
        stats.live_bytes
    );

    let pre = db.digest();
    for i in 0..KEYS {
        assert_eq!(
            db.get(&key(i)).unwrap(),
            Some(format!("epoch-{}-value-{i}", EPOCHS - 1).into_bytes())
        );
    }
    drop(db);
    let db = SpitzDb::open_with_configs(
        dir.path(),
        SpitzConfig::default(),
        DurableConfig {
            segment_target_bytes: segment_target,
            ..DurableConfig::default()
        },
    )
    .unwrap();
    assert_eq!(db.digest(), pre, "reopen after the soak must be identical");
    assert_eq!(db.ledger().audit_chain(), None);
}
