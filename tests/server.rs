//! Wire-protocol conformance suite for the served front-end.
//!
//! The backbone claim: a remote light client is exactly as strong as an
//! in-process [`Verifier`] — the server ships byte-identical proof
//! encodings, pipelined requests complete out of order without losing
//! their ids, backpressure is a typed `Busy` (never a stall), and
//! shutdown drains rather than drops.

use std::sync::Arc;
use std::time::Duration;

use spitz::core::proof::Verifier;
use spitz::core::sharded::{ShardedConfig, ShardedDb};
use spitz::server::client::HealthReport;
use spitz::server::protocol::{self, op, ErrorCode, RESPONSE_BIT};
use spitz::server::{ClientError, LightClient, ServerConfig, SpitzClient, SpitzServer};
use spitz::storage::{DurableConfig, HealthState};
use spitz_faults::SeededRng;

mod common;
use common::TempDir;

fn serve_in_memory(shards: usize) -> SpitzServer {
    let db = Arc::new(ShardedDb::in_memory(shards));
    SpitzServer::start(db, ServerConfig::default()).expect("start server")
}

fn key(i: u64) -> Vec<u8> {
    format!("wire/{i:06}").into_bytes()
}

#[test]
fn handshake_and_point_roundtrip() {
    let server = serve_in_memory(3);
    let mut client = SpitzClient::connect(server.local_addr()).expect("connect");
    assert_eq!(client.shard_count(), 3);

    assert_eq!(client.ping(b"hello?").unwrap(), b"hello?");
    client.put(&key(1), b"one").unwrap();
    assert_eq!(client.get(&key(1)).unwrap().as_deref(), Some(&b"one"[..]));
    assert_eq!(client.get(b"wire/absent").unwrap(), None);
}

/// The acceptance property: for every key, the proof bytes served over
/// the socket are identical to the in-process ones, and a verifier fed
/// the remote decode accepts exactly when the in-process verifier does.
#[test]
fn remote_verified_reads_match_in_process_proof_for_proof() {
    let server = serve_in_memory(3);
    let db = Arc::clone(server.db());
    let mut client = SpitzClient::connect(server.local_addr()).expect("connect");

    let mut rng = SeededRng::new(0x11BE55);
    let mut keys = Vec::new();
    for i in 0..40 {
        let k = key(rng.below(100_000));
        let len = 1 + rng.below(64) as usize;
        let v = rng.bytes(len);
        client.put(&k, &v).unwrap();
        if i % 3 == 0 {
            keys.push((k, v));
        }
    }
    keys.push((b"wire/never-written".to_vec(), Vec::new()));

    let mut local = Verifier::new();
    assert!(local.observe_sharded(&db.digest()));
    let mut remote = Verifier::new();
    assert!(remote.observe_sharded(&client.digest().unwrap()));

    for (k, _) in &keys {
        let (local_value, local_proof) = db.get_verified(k).expect("in-process read");
        let (remote_value, remote_proof) = client.get_verified(k).expect("served read");
        assert_eq!(remote_value, local_value, "value mismatch for {k:?}");
        assert_eq!(
            remote_proof.encode(),
            local_proof.encode(),
            "served proof bytes differ from in-process for {k:?}"
        );
        assert!(local.verify_sharded_read(k, local_value.as_deref(), &local_proof));
        assert!(remote.verify_sharded_read(k, remote_value.as_deref(), &remote_proof));
        // Cross-feed: the remote decode satisfies the in-process pin too.
        assert!(local.verify_sharded_read(k, remote_value.as_deref(), &remote_proof));
    }

    let (local_entries, local_range) = db.range_verified(b"wire/", b"wire/~").unwrap();
    let (remote_entries, remote_range) = client.range_verified(b"wire/", b"wire/~").unwrap();
    assert_eq!(remote_entries, local_entries);
    assert_eq!(remote_range.encode(), local_range.encode());
    assert!(local.verify_sharded_range(&local_entries, &local_range));
    assert!(remote.verify_sharded_range(&remote_entries, &remote_range));
}

/// Batched acceptance property: the `BatchVerifiedGet` frame ships the
/// same `ShardedMultiProof` bytes the in-process engine produces, both on
/// the cold (engine fallback) path and on the warm (proof-node cache)
/// path, and the remote decode satisfies the in-process pin.
#[test]
fn remote_batched_reads_match_in_process_proof_for_proof() {
    let server = serve_in_memory(3);
    let db = Arc::clone(server.db());
    let mut client = SpitzClient::connect(server.local_addr()).expect("connect");

    for i in 0..60 {
        client
            .put(&key(i), format!("batch-v{i}").as_bytes())
            .unwrap();
    }
    // Adjacent keys (shared upper tree) plus absences, spanning shards.
    let mut keys: Vec<Vec<u8>> = (10..26).map(key).collect();
    keys.push(b"wire/never-written".to_vec());
    keys.push(key(59));

    let mut local = Verifier::new();
    assert!(local.observe_sharded(&db.digest()));

    // Twice: the first batch is served off the engine (cold cache), the
    // second off the proof-node cache. Both must be byte-identical to the
    // in-process proof at the same cut.
    for round in 0..2 {
        let (local_values, local_proof) = db.get_multi_verified(&keys).expect("in-process batch");
        let (remote_values, remote_proof) = client.get_verified_batch(&keys).expect("served batch");
        assert_eq!(
            remote_values, local_values,
            "value mismatch in round {round}"
        );
        assert_eq!(
            remote_proof.encode(),
            local_proof.encode(),
            "served batch proof bytes differ from in-process in round {round}"
        );
        let items: Vec<(Vec<u8>, Option<Vec<u8>>)> = keys
            .iter()
            .cloned()
            .zip(remote_values.iter().cloned())
            .collect();
        assert!(local.verify_sharded_multi(&items, &remote_proof));
    }

    // The cache warmed up and is invalidated by the next epoch advance.
    let telemetry = client.telemetry_json().unwrap();
    assert!(telemetry.contains("server.proof_cache.hits"));
    assert!(telemetry.contains("server.proof_cache.misses"));
    client.put(&key(1000), b"advance the epoch").unwrap();
    let (_, moved_proof) = client.get_verified_batch(&keys).expect("post-write batch");
    assert_ne!(moved_proof.root, local.pinned_sharded_root().unwrap());

    // A light client verifies the batch end-to-end with the strict rule.
    let mut light = LightClient::connect(server.local_addr()).expect("connect light");
    let values = light.get_batch(&keys).expect("verified batch");
    assert_eq!(values[0], Some(b"batch-v10".to_vec()));
    assert_eq!(values[16], None);
}

#[test]
fn light_client_end_to_end_with_cross_shard_batches() {
    let server = serve_in_memory(4);
    let mut client = LightClient::connect(server.local_addr()).expect("connect");

    for i in 0..20 {
        client.put(&key(i), format!("v{i}").as_bytes()).unwrap();
    }
    client.pin().expect("pin after writes");
    for i in 0..20 {
        assert_eq!(
            client.get(&key(i)).unwrap(),
            Some(format!("v{i}").into_bytes())
        );
    }
    assert_eq!(client.get(b"wire/absent").unwrap(), None);

    // A cross-shard batch lands atomically and advances the pin.
    let writes: Vec<(Vec<u8>, Vec<u8>)> = (100..108)
        .map(|i| (key(i), format!("batch{i}").into_bytes()))
        .collect();
    client.put_batch(&writes).expect("cross-shard batch");
    for (k, v) in &writes {
        assert_eq!(client.get(k).unwrap().as_deref(), Some(v.as_slice()));
    }

    // The verified range proves completeness over everything written.
    let entries = client.range(b"wire/", b"wire/~").expect("verified range");
    assert_eq!(entries.len(), 28);
    assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
}

/// A tampered value must be refused by the light-client acceptance rule
/// even though the transport delivered it intact.
#[test]
fn tampered_value_is_refused() {
    let server = serve_in_memory(3);
    let mut client = SpitzClient::connect(server.local_addr()).expect("connect");
    client.put(&key(7), b"honest").unwrap();

    let mut verifier = Verifier::new();
    assert!(verifier.observe_sharded(&client.digest().unwrap()));
    let (value, proof) = client.get_verified(&key(7)).unwrap();
    assert!(verifier.verify_sharded_read(&key(7), value.as_deref(), &proof));
    assert!(!verifier.verify_sharded_read(&key(7), Some(b"forged"), &proof));
    assert!(!verifier.verify_sharded_read(&key(8), value.as_deref(), &proof));
}

/// Pipelined requests on one socket complete out of order: a parked
/// digest subscription must not block a ping issued after it, and fires
/// once a later write matures the epoch.
#[test]
fn pipelined_requests_complete_out_of_order() {
    let server = serve_in_memory(2);
    let mut client = SpitzClient::connect(server.local_addr()).expect("connect");
    client.put(&key(1), b"seed").unwrap();
    let epoch = client.digest().unwrap().epoch;

    // Subscribe to an epoch that does not exist yet, then ping behind it.
    let mut min_epoch = Vec::new();
    spitz::index::codec::put_u64(&mut min_epoch, epoch + 1);
    let sub_id = client
        .send_request(op::SUBSCRIBE_DIGEST, &min_epoch)
        .unwrap();
    let ping_id = client.send_request(op::PING, b"behind the sub").unwrap();

    // The ping answers first even though it was sent second.
    let (opcode, pong) = client.wait_response(ping_id).unwrap();
    assert_eq!(opcode, op::PING | RESPONSE_BIT);
    assert_eq!(pong, b"behind the sub");

    // A write matures the epoch; the parked subscription now completes.
    client.put(&key(2), b"advance").unwrap();
    let (opcode, payload) = client.wait_response(sub_id).unwrap();
    assert_eq!(opcode, op::SUBSCRIBE_DIGEST | RESPONSE_BIT);
    let digest = spitz::ShardedDigest::decode(&payload).expect("digest payload");
    assert!(digest.epoch > epoch);
    assert!(digest.verify());
}

/// Per-request errors are scoped to their id: an unknown opcode or a
/// garbage payload answers a typed error and the connection keeps
/// serving.
#[test]
fn per_request_errors_keep_the_connection_alive() {
    let server = serve_in_memory(2);
    let mut client = SpitzClient::connect(server.local_addr()).expect("connect");

    let id = client.send_request(0x55, b"?").unwrap();
    match client.wait_response(id) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownOpcode),
        other => panic!("want UnknownOpcode, got {other:?}"),
    }

    // PUT wants a length-prefixed key; a bare byte cannot decode.
    let id = client.send_request(op::PUT, b"x").unwrap();
    match client.wait_response(id) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BadPayload),
        other => panic!("want BadPayload, got {other:?}"),
    }

    assert_eq!(client.ping(b"still here").unwrap(), b"still here");
}

/// A full request queue answers a typed `Busy` immediately — every
/// pipelined request gets exactly one response, none hang.
#[test]
fn saturated_queue_answers_typed_busy() {
    let db = Arc::new(ShardedDb::in_memory(3));
    for i in 0..800 {
        db.put(&key(i), &[0x5A; 64]).unwrap();
    }
    let config = ServerConfig::default().with_queue_depth(1).with_workers(1);
    let server = SpitzServer::start(db, config).expect("start server");
    let mut client = SpitzClient::connect(server.local_addr()).expect("connect");

    // Range proofs over 800 keys are slow enough that a 1-deep queue
    // cannot absorb 50 pipelined requests.
    let mut range_payload = Vec::new();
    spitz::index::codec::put_bytes(&mut range_payload, b"wire/");
    range_payload.extend_from_slice(b"wire/~");
    let ids: Vec<u64> = (0..50)
        .map(|_| {
            client
                .send_request(op::RANGE_VERIFIED, &range_payload)
                .unwrap()
        })
        .collect();

    let mut served = 0;
    let mut busy = 0;
    for id in ids {
        match client.wait_response(id) {
            Ok((opcode, _)) => {
                assert_eq!(opcode, op::RANGE_VERIFIED | RESPONSE_BIT);
                served += 1;
            }
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::Busy, "only Busy is acceptable here");
                busy += 1;
            }
            Err(other) => panic!("unexpected failure: {other}"),
        }
    }
    assert_eq!(served + busy, 50, "every request must be answered");
    assert!(served >= 1, "the server must still make progress");
    assert!(busy >= 1, "a 1-deep queue must shed load as typed Busy");
}

/// Admin and observability endpoints over the wire, against a durable
/// deployment.
#[test]
fn admin_endpoints_serve_health_scrub_compact_telemetry() {
    let dir = TempDir::new("server-admin");
    let config = ShardedConfig::default()
        .with_shards(2)
        .with_durable(DurableConfig {
            segment_target_bytes: 4 * 1024,
            ..DurableConfig::default()
        });
    let db = Arc::new(ShardedDb::open(dir.path(), config).expect("open durable"));
    let server = SpitzServer::start(db, ServerConfig::default()).expect("start server");
    let mut client = SpitzClient::connect(server.local_addr()).expect("connect");

    // Churn to give scrub and compaction something to chew on.
    for round in 0..4 {
        for i in 0..60 {
            client
                .put(&key(i), format!("round{round}-{i}").as_bytes())
                .unwrap();
        }
    }

    let HealthReport { overall, shards } = client.health().unwrap();
    assert_eq!(overall, HealthState::Healthy);
    assert_eq!(shards.len(), 2);
    for (state, reason) in &shards {
        assert_eq!(*state, HealthState::Healthy);
        assert!(reason.is_empty());
    }

    let scrub = client.scrub().unwrap();
    assert!(scrub.segments_scanned > 0, "sealed segments must be walked");
    assert_eq!(scrub.quarantined_segments, 0);
    assert_eq!(scrub.chunks_lost, 0);

    let compact = client.compact().unwrap();
    assert!(
        compact.chunks_dropped > 0 || compact.victim_segments == 0,
        "compaction reports must be internally consistent"
    );

    let json = client.telemetry_json().unwrap();
    assert!(json.trim_start().starts_with('{'));
    for instrument in [
        "server.requests",
        "server.connections_total",
        "server.bytes_written",
    ] {
        assert!(json.contains(instrument), "telemetry missing {instrument}");
    }
}

/// Concurrent writers on separate connections: every client's pin only
/// ever moves forward (epoch-monotone consistent cuts over the wire),
/// and every verified read checks out against it.
#[test]
fn concurrent_clients_observe_monotone_consistent_cuts() {
    let server = serve_in_memory(3);
    let addr = server.local_addr();
    let workers: Vec<std::thread::JoinHandle<()>> = (0..4)
        .map(|w| {
            std::thread::spawn(move || {
                let mut client = LightClient::connect(addr).expect("connect");
                for i in 0..25 {
                    let k = format!("cut/{w}/{i:03}").into_bytes();
                    client.put(&k, b"x").expect("put");
                    // pin() refuses rewinds; racing writers must never
                    // produce one.
                    client.pin().expect("epoch-monotone pin");
                    // Under concurrent writers a point proof can anchor at
                    // a cut newer than the pin — the strict rule refuses
                    // it, exactly like the in-process verifier. The range
                    // proof is self-anchoring: it proves its own cut and
                    // advances the pin, which again must only move
                    // forward.
                    let mut end = k.clone();
                    end.push(0);
                    let entries = client.range(&k, &end).expect("verified range read");
                    assert_eq!(entries, vec![(k, b"x".to_vec())]);
                }
            })
        })
        .collect();
    for handle in workers {
        handle.join().expect("client thread");
    }
}

/// Shutdown is a drain: parked subscriptions fail with `ShuttingDown`
/// instead of hanging, and the port stops accepting.
#[test]
fn graceful_shutdown_fails_parked_subscriptions() {
    let mut server = serve_in_memory(2);
    let addr = server.local_addr();
    let mut client = SpitzClient::connect(addr).expect("connect");
    client.put(&key(1), b"seed").unwrap();
    let epoch = client.digest().unwrap().epoch;

    let mut min_epoch = Vec::new();
    spitz::index::codec::put_u64(&mut min_epoch, epoch + 1_000);
    let sub_id = client
        .send_request(op::SUBSCRIBE_DIGEST, &min_epoch)
        .unwrap();
    // Give the worker a beat to park the subscription server-side.
    std::thread::sleep(Duration::from_millis(50));

    server.shutdown();
    match client.wait_response(sub_id) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::ShuttingDown),
        other => panic!("parked subscription must fail typed, got {other:?}"),
    }
    assert!(
        SpitzClient::connect(addr).is_err(),
        "the drained server must stop accepting"
    );
}

/// Responses carry the version byte and frame caps the protocol module
/// promises (spot checks of constants the README documents).
#[test]
fn protocol_constants_hold() {
    assert_eq!(protocol::PROTOCOL_VERSION, 1);
    assert_eq!(protocol::MIN_BODY_LEN, 10);
    assert_eq!(protocol::MAX_FRAME_LEN, 4 * 1024 * 1024);
    assert!(ErrorCode::BadFrame.is_fatal());
    assert!(ErrorCode::TooLarge.is_fatal());
    assert!(ErrorCode::UnsupportedVersion.is_fatal());
    assert!(!ErrorCode::ReadOnly.is_fatal());
    assert!(!ErrorCode::ShuttingDown.is_fatal());
}
