//! Protocol torture suite: seeded fuzzing of the frame decoders, hostile
//! and broken byte streams against a live socket, and chaos schedules
//! with a fault-injected backing store while remote clients hammer the
//! server.
//!
//! The standing rules under all of it: a typed error, never a panic;
//! bounded allocation, never attacker-sized; degraded service per
//! [`HealthState`], never a deadlock; and no proof leaves the server that
//! a light client would wrongly accept.
//!
//! The 64-client soak at the bottom is `#[ignore]`d; CI's soak step runs
//! it explicitly with `--ignored`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use spitz::core::proof::{ShardedMultiProof, ShardedProof, ShardedRangeProof, Verifier};
use spitz::core::sharded::{ShardedConfig, ShardedDb, ShardedDigest};
use spitz::index::codec::Reader;
use spitz::ledger::Digest;
use spitz::server::protocol::{self, op, ErrorCode};
use spitz::server::{ClientError, ServerConfig, SpitzClient, SpitzServer};
use spitz::storage::{DurableConfig, HealthState, IoErrorKind, WriteOutcome};
use spitz_faults::{FaultInjector, SeededRng};

mod common;
use common::TempDir;

fn key(i: u64) -> Vec<u8> {
    format!("torture/{i:06}").into_bytes()
}

fn serve_in_memory(shards: usize, config: ServerConfig) -> SpitzServer {
    let db = Arc::new(ShardedDb::in_memory(shards));
    SpitzServer::start(db, config).expect("start server")
}

/// Read one whole response frame off a raw socket.
fn read_raw_frame(stream: &mut TcpStream) -> std::io::Result<(u8, u64, Vec<u8>)> {
    let mut len_prefix = [0u8; 4];
    stream.read_exact(&mut len_prefix)?;
    let len = u32::from_be_bytes(len_prefix) as usize;
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    let frame = protocol::parse_body(&body).expect("server frames are well-formed");
    Ok((frame.opcode, frame.request_id, frame.payload.to_vec()))
}

/// Satellite: seeded fuzz of every untrusted decoder. Arbitrary bytes
/// and mutated valid encodings must come back as typed `None`/errors —
/// never a panic, never an allocation sized by attacker-declared counts.
#[test]
fn decoder_fuzz_random_bytes_never_panic() {
    let mut rng = SeededRng::new(0xF0_2221);
    for _ in 0..4000 {
        let len = rng.below(280) as usize;
        let bytes = rng.bytes(len);
        let _ = protocol::parse_body(&bytes);
        let _ = protocol::decode_error(&bytes);
        let _ = ShardedProof::decode(&bytes);
        let _ = ShardedMultiProof::decode(&bytes);
        let _ = ShardedRangeProof::decode(&bytes);
        let _ = ShardedDigest::decode(&bytes);
        let _ = Digest::decode(&bytes);
        let mut r = Reader::new(&bytes);
        let _ = protocol::decode_entries(&mut r);
        let mut r = Reader::new(&bytes);
        let _ = protocol::decode_keys(&mut r);
        let mut r = Reader::new(&bytes);
        let _ = protocol::decode_optional_values(&mut r);
    }

    // Declared-count lies: a 4 GiB entry count backed by nothing must be
    // rejected from the remaining-bytes bound, not reserved.
    let mut lie = Vec::new();
    spitz::index::codec::put_u32(&mut lie, u32::MAX);
    lie.extend_from_slice(&rng.bytes(32));
    let mut r = Reader::new(&lie);
    assert_eq!(protocol::decode_entries(&mut r), None);
    let mut r = Reader::new(&lie);
    assert_eq!(protocol::decode_keys(&mut r), None);
    let mut r = Reader::new(&lie);
    assert_eq!(protocol::decode_optional_values(&mut r), None);
}

/// Satellite: mutated *valid* proof encodings either fail to decode or
/// decode into proofs the verifier refuses — a flipped bit can never
/// survive the acceptance rule.
#[test]
fn decoder_fuzz_mutated_proofs_never_verify() {
    let db = ShardedDb::in_memory(3);
    for i in 0..24 {
        db.put(&key(i), format!("v{i}").as_bytes()).unwrap();
    }
    let digest = db.digest();
    let (value, proof) = db.get_verified(&key(5)).unwrap();
    let honest = proof.encode();

    let mut rng = SeededRng::new(0x05EE_DF1B);
    let mut decoded_mutants = 0;
    for _ in 0..600 {
        let mut mutant = honest.clone();
        match rng.below(3) {
            0 => {
                let idx = rng.below(mutant.len() as u64) as usize;
                mutant[idx] ^= 1 << rng.below(8);
            }
            1 => {
                let cut = rng.below(mutant.len() as u64) as usize;
                mutant.truncate(cut);
            }
            _ => {
                let extra = rng.below(16) as usize + 1;
                let garbage = rng.bytes(extra);
                mutant.extend_from_slice(&garbage);
            }
        }
        if mutant == honest {
            continue;
        }
        if let Some(forged) = ShardedProof::decode(&mutant) {
            decoded_mutants += 1;
            let mut verifier = Verifier::new();
            assert!(verifier.observe_sharded(&digest));
            if verifier.verify_sharded_read(&key(5), value.as_deref(), &forged) {
                // A flip in advisory metadata (the shard-count hint) can
                // survive verification; soundness only requires that the
                // cryptographic binding holds — same root, and still no
                // acceptance of a different value under the same proof.
                assert_eq!(forged.root, proof.root, "root confusion must not verify");
                let mut strict = Verifier::new();
                assert!(strict.observe_sharded(&digest));
                assert!(
                    !strict.verify_sharded_read(&key(5), Some(b"not the value"), &forged),
                    "a verifying mutant must still bind the honest value"
                );
            }
        }
    }
    // Bit flips inside hash fields still decode structurally; the fuzz
    // only means something if some mutants reach the verifier.
    assert!(
        decoded_mutants > 0,
        "no mutant even decoded — fuzz is toothless"
    );
}

/// Satellite: mutated *batched* proofs, mirroring the single-proof
/// guarantees above for [`ShardedMultiProof`]. Every shared-node splice,
/// duplication, reorder, truncation, and bit flip in a group's node
/// carrier is rejected; claim-level forgeries (forged value, conjured
/// presence, claimed absence) are rejected; and seeded wire-level mutants
/// either fail to decode or fail verification.
#[test]
fn mutated_multi_proofs_never_verify() {
    let db = ShardedDb::in_memory(3);
    for i in 0..48 {
        db.put(&key(i), format!("mv{i}").as_bytes()).unwrap();
    }
    let mut keys: Vec<Vec<u8>> = (8..24).map(key).collect();
    keys.push(b"torture/absent".to_vec());
    let (values, proof) = db.get_multi_verified(&keys).unwrap();
    let items: Vec<(Vec<u8>, Option<Vec<u8>>)> =
        keys.iter().cloned().zip(values.iter().cloned()).collect();
    assert!(proof.verify(&items));

    // Claim-level forgeries against the honest proof.
    let mut forged = items.clone();
    forged[3].1 = Some(b"forged".to_vec());
    assert!(!proof.verify(&forged), "forged value must be refused");
    let mut hidden = items.clone();
    hidden[3].1 = None;
    assert!(!proof.verify(&hidden), "claimed absence must be refused");
    let mut conjured = items.clone();
    conjured[16].1 = Some(b"conjured".to_vec());
    assert!(
        !proof.verify(&conjured),
        "conjured presence must be refused"
    );

    // Structured shared-node attacks against every group's node carrier:
    // splice the root node out, duplicate a node, overwrite a needed node
    // with a copy of another, truncate a payload, flip a bit inside one.
    // (A pure *reorder* of the union carrier is benign malleability — the
    // node set and the proven claims are unchanged — so it is not in this
    // list; the wire fuzz below still checks reordered mutants bind.)
    let honest = proof.encode();
    let mut rejected = 0;
    for g in 0..proof.groups.len() {
        for attack in 0..5 {
            let mut mutant = proof.clone();
            let nodes = &mut mutant.groups[g].ledger_proof.index_proof.nodes;
            assert!(!nodes.is_empty(), "groups with keys reveal nodes");
            match attack {
                0 => {
                    nodes.remove(0);
                }
                1 => {
                    let node = nodes[0].clone();
                    nodes.push(node);
                }
                2 => {
                    if nodes.len() >= 2 {
                        let last = nodes.len() - 1;
                        nodes[last] = nodes[0].clone();
                    } else {
                        nodes[0].reverse();
                    }
                }
                3 => {
                    let len = nodes[0].len();
                    nodes[0].truncate(len / 2);
                }
                _ => {
                    nodes[0][0] ^= 0x01;
                }
            }
            if mutant.encode() == honest {
                continue;
            }
            assert!(
                !mutant.verify(&items),
                "group {g} node attack {attack} must be rejected"
            );
            rejected += 1;
        }
    }
    assert!(
        rejected >= proof.groups.len() * 4,
        "the node attacks must actually mutate the proofs"
    );

    // Seeded wire-level mutants of the canonical encoding.
    let mut rng = SeededRng::new(0x3417_1BAD);
    let mut decoded_mutants = 0;
    for _ in 0..600 {
        let mut mutant = honest.clone();
        match rng.below(3) {
            0 => {
                let idx = rng.below(mutant.len() as u64) as usize;
                mutant[idx] ^= 1 << rng.below(8);
            }
            1 => {
                let cut = rng.below(mutant.len() as u64) as usize;
                mutant.truncate(cut);
            }
            _ => {
                let extra = rng.below(16) as usize + 1;
                let garbage = rng.bytes(extra);
                mutant.extend_from_slice(&garbage);
            }
        }
        if mutant == honest {
            continue;
        }
        if let Some(decoded) = ShardedMultiProof::decode(&mutant) {
            decoded_mutants += 1;
            if decoded.verify(&items) {
                // Only cryptographically inert bytes may survive a flip;
                // the binding must hold: same root, and still no
                // acceptance of altered claims under the mutant.
                assert_eq!(decoded.root, proof.root, "root confusion must not verify");
                let mut still_forged = items.clone();
                still_forged[5].1 = Some(b"still forged".to_vec());
                assert!(
                    !decoded.verify(&still_forged),
                    "a verifying mutant must still bind the honest values"
                );
            }
        }
    }
    assert!(
        decoded_mutants > 0,
        "no mutant even decoded — fuzz is toothless"
    );
}

/// Seeded garbage streams and bit-flipped frames against the live
/// socket: connections die with typed errors or clean closes, and the
/// server keeps serving fresh clients afterwards.
#[test]
fn socket_fuzz_garbage_streams_leave_server_serving() {
    let server = serve_in_memory(
        2,
        ServerConfig::default().with_idle_timeout(Duration::from_millis(400)),
    );
    let addr = server.local_addr();
    let mut rng = SeededRng::new(0xBAD_F00D);

    for case in 0..48u64 {
        let Ok(mut sock) = TcpStream::connect(addr) else {
            panic!("server stopped accepting mid-fuzz");
        };
        let mode = case % 3;
        if mode == 0 {
            // Pure noise.
            let len = 1 + rng.below(700) as usize;
            let noise = rng.bytes(len);
            let _ = sock.write_all(&noise);
        } else if mode == 1 {
            // A valid frame with one flipped bit, anywhere.
            let mut frame = protocol::encode_frame(op::GET, case, b"torture/000001");
            let idx = rng.below(frame.len() as u64) as usize;
            frame[idx] ^= 1 << rng.below(8);
            let _ = sock.write_all(&frame);
        } else {
            // A truncated valid frame: declared length never satisfied.
            let frame = protocol::encode_frame(op::PUT, case, &rng.bytes(64));
            let cut = 5 + rng.below((frame.len() - 5) as u64) as usize;
            let _ = sock.write_all(&frame[..cut]);
        }
        // Half the connections hang up immediately (mid-frame
        // disconnects), half linger for the server to time out or answer.
        if rng.chance(512) {
            drop(sock);
        } else {
            let _ = sock.set_read_timeout(Some(Duration::from_millis(100)));
            let mut sink = [0u8; 256];
            let _ = sock.read(&mut sink);
        }
    }

    // After all of it the server still speaks the protocol.
    let mut client = SpitzClient::connect(addr).expect("fresh client after fuzz");
    client.put(b"torture/after", b"alive").unwrap();
    assert_eq!(
        client.get(b"torture/after").unwrap().as_deref(),
        Some(&b"alive"[..])
    );
    let json = client.telemetry_json().unwrap();
    assert!(json.contains("server.protocol_errors"));
}

/// An oversized declared length is refused from the header alone: typed
/// `TooLarge`, then the connection closes. The body is never read.
#[test]
fn oversized_frame_rejected_before_allocation() {
    let server = serve_in_memory(2, ServerConfig::default());
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.write_all(&(64 * 1024 * 1024u32).to_be_bytes())
        .unwrap();

    let (opcode, request_id, payload) = read_raw_frame(&mut sock).expect("error frame");
    assert_eq!(opcode, op::ERROR);
    assert_eq!(request_id, 0);
    let (code, _) = protocol::decode_error(&payload).unwrap();
    assert_eq!(code, ErrorCode::TooLarge);

    // Fatal: the connection is closed after the error frame.
    let mut rest = Vec::new();
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    assert_eq!(sock.read_to_end(&mut rest).unwrap_or(0), 0);
}

/// Runt frames and alien protocol versions get their own typed fatal
/// errors.
#[test]
fn runt_frames_and_bad_versions_are_typed_fatal() {
    let server = serve_in_memory(2, ServerConfig::default());

    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.write_all(&3u32.to_be_bytes()).unwrap();
    let (opcode, _, payload) = read_raw_frame(&mut sock).expect("error frame");
    assert_eq!(opcode, op::ERROR);
    assert_eq!(
        protocol::decode_error(&payload).unwrap().0,
        ErrorCode::BadFrame
    );

    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    let mut frame = protocol::encode_frame(op::PING, 9, b"");
    frame[4] = 42; // version byte
    sock.write_all(&frame).unwrap();
    let (opcode, _, payload) = read_raw_frame(&mut sock).expect("error frame");
    assert_eq!(opcode, op::ERROR);
    assert_eq!(
        protocol::decode_error(&payload).unwrap().0,
        ErrorCode::UnsupportedVersion
    );
}

/// A connection that goes quiet mid-frame is closed on the idle clock;
/// the server's other connections never notice.
#[test]
fn mid_frame_stall_is_reaped_by_idle_timeout() {
    let server = serve_in_memory(
        2,
        ServerConfig::default().with_idle_timeout(Duration::from_millis(200)),
    );
    let addr = server.local_addr();

    // Declare 100 bytes, deliver 10, then stall (but keep the socket
    // open, so only the idle clock can reap it).
    let mut stalled = TcpStream::connect(addr).unwrap();
    let frame = protocol::encode_frame(op::PUT, 1, &[0x55; 90]);
    stalled.write_all(&frame[..14]).unwrap();

    // A healthy connection keeps working while the stalled one lingers.
    let mut client = SpitzClient::connect(addr).expect("connect");
    client.put(b"torture/live", b"x").unwrap();

    // The stalled socket is closed by the server within the idle window.
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut sink = Vec::new();
    let n = stalled.read_to_end(&mut sink).unwrap_or(0);
    assert_eq!(n, 0, "stalled connection must be closed without a response");
    // The healthy connection idled past the (short) window too while we
    // waited for the reap; a fresh one shows the server still serves.
    let mut fresh = SpitzClient::connect(addr).expect("post-reap connect");
    assert_eq!(fresh.ping(b"after").unwrap(), b"after");
    assert_eq!(
        fresh.get(b"torture/live").unwrap().as_deref(),
        Some(&b"x"[..])
    );
}

/// Chaos: the backing store flips read-only under injected `ENOSPC`
/// while remote clients hammer the socket. Reads — verified ones
/// included — keep serving and verifying against the pre-fault pin,
/// every write fails with the typed `ReadOnly` code, health is served
/// truthfully, and nothing deadlocks.
#[test]
fn faulted_store_degrades_remote_service_without_deadlock() {
    let dir = TempDir::new("server-chaos");
    let injector = Arc::new(FaultInjector::new(0xC0C0A));
    let config = ShardedConfig::default()
        .with_shards(2)
        .with_durable(DurableConfig {
            segment_target_bytes: 8 * 1024,
            ..DurableConfig::default()
        });
    let db = Arc::new(
        ShardedDb::open_with_io(dir.path(), config, injector.handle()).expect("open with injector"),
    );
    let server = SpitzServer::start(db, ServerConfig::default()).expect("start server");
    let addr = server.local_addr();

    let mut client = SpitzClient::connect(addr).expect("connect");
    for i in 0..30 {
        client.put(&key(i), format!("v{i}").as_bytes()).unwrap();
    }
    let mut verifier = Verifier::new();
    assert!(verifier.observe_sharded(&client.digest().unwrap()));

    // The device fills: every append for the next stretch reports
    // `ENOSPC`, so each shard flips read-only at its next write.
    let (appends, _) = injector.ops();
    for k in 0..32 {
        injector.fail_append_at(appends + k, WriteOutcome::Fail(IoErrorKind::NoSpace));
    }
    let mut read_only_failures = 0;
    for i in 30..50 {
        match client.put(&key(i), b"doomed") {
            // The write that trips over the full device surfaces the
            // storage error itself (Internal); every write after that
            // shard's flip fails fast with the typed ReadOnly.
            Err(ClientError::Server {
                code: ErrorCode::ReadOnly,
                ..
            }) => read_only_failures += 1,
            Err(ClientError::Server {
                code: ErrorCode::Internal,
                ..
            }) => {}
            Ok(_) => {}
            Err(other) => panic!("unexpected failure: {other}"),
        }
    }
    assert!(read_only_failures >= 2, "both shards must hit the fault");

    // Health over the wire tells the truth: deployment degraded, shards
    // read-only with a space-related reason.
    let health = client.health().unwrap();
    assert_eq!(health.overall, HealthState::Degraded);
    assert!(health
        .shards
        .iter()
        .all(|(state, reason)| *state == HealthState::ReadOnly && reason.contains("space")));

    // Concurrent hammer: verified reads keep serving and verifying, all
    // writes keep failing typed, every thread joins (no deadlock).
    let reads_ok = Arc::new(AtomicU64::new(0));
    let writes_refused = Arc::new(AtomicU64::new(0));
    let hammers: Vec<std::thread::JoinHandle<()>> = (0..4)
        .map(|w| {
            let reads_ok = Arc::clone(&reads_ok);
            let writes_refused = Arc::clone(&writes_refused);
            std::thread::spawn(move || {
                let mut client = SpitzClient::connect(addr).expect("connect");
                let mut verifier = Verifier::new();
                assert!(verifier.observe_sharded(&client.digest().unwrap()));
                let mut rng = SeededRng::stream(0xC0C0A, w);
                for _ in 0..40 {
                    let i = rng.below(30);
                    let (value, proof) = client.get_verified(&key(i)).expect("read must serve");
                    assert_eq!(value, Some(format!("v{i}").into_bytes()));
                    assert!(
                        verifier.verify_sharded_read(&key(i), value.as_deref(), &proof),
                        "served proof must verify in degraded mode"
                    );
                    reads_ok.fetch_add(1, Ordering::Relaxed);
                    match client.put(&key(1000 + i), b"nope") {
                        Err(ClientError::Server {
                            code: ErrorCode::ReadOnly,
                            ..
                        }) => {
                            writes_refused.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("write must be refused typed, got {other:?}"),
                    }
                }
            })
        })
        .collect();
    for handle in hammers {
        handle.join().expect("hammer thread");
    }
    assert_eq!(reads_ok.load(Ordering::Relaxed), 160);
    assert_eq!(writes_refused.load(Ordering::Relaxed), 160);
}

/// Satellite: the 64-client mixed-op soak against a transiently faulted
/// store. Run by CI's soak step via `--ignored`.
#[test]
#[ignore = "long server soak; run explicitly with --ignored"]
fn server_soak_64_clients_mixed_ops() {
    const CLIENTS: u64 = 64;
    const SOAK: Duration = Duration::from_secs(60);

    let dir = TempDir::new("server-soak");
    let injector = Arc::new(FaultInjector::random(
        0x50A4_0001,
        spitz_faults::FaultRates {
            transient_per_1024: 12,
            fsync_transient_per_1024: 6,
            ..spitz_faults::FaultRates::default()
        },
    ));
    let config = ShardedConfig::default()
        .with_shards(4)
        .with_durable(DurableConfig {
            segment_target_bytes: 32 * 1024,
            ..DurableConfig::default()
        });
    let db = Arc::new(
        ShardedDb::open_with_io(dir.path(), config, injector.handle()).expect("open with injector"),
    );
    let server = SpitzServer::start(
        db,
        ServerConfig::default().with_max_connections(CLIENTS as usize + 4),
    )
    .expect("start server");
    let addr = server.local_addr();

    let total_ops = Arc::new(AtomicU64::new(0));
    let clients: Vec<std::thread::JoinHandle<()>> = (0..CLIENTS)
        .map(|c| {
            let total_ops = Arc::clone(&total_ops);
            std::thread::spawn(move || {
                let mut client = SpitzClient::connect(addr).expect("connect");
                let mut rng = SeededRng::stream(0x0050_A450, c);
                let deadline = Instant::now() + SOAK;
                let mut ops = 0u64;
                while Instant::now() < deadline {
                    let i = rng.below(4000);
                    let outcome = match rng.below(100) {
                        0..=39 => client
                            .put(&key(i), &rng.next_u64().to_be_bytes())
                            .map(|_| ()),
                        40..=69 => client.get(&key(i)).map(|_| ()),
                        70..=89 => client.get_verified(&key(i)).map(|_| ()),
                        90..=95 => client.digest().map(|_| ()),
                        96..=98 => client.ping(b"soak").map(|_| ()),
                        _ => client.health().map(|_| ()),
                    };
                    match outcome {
                        Ok(()) => {}
                        // Typed degradation is legal under injected
                        // faults; anything else is a suite failure.
                        Err(ClientError::Server { code, .. }) => {
                            assert!(
                                matches!(
                                    code,
                                    ErrorCode::ReadOnly | ErrorCode::Busy | ErrorCode::Conflict
                                ),
                                "unexpected server error code {code:?}"
                            );
                        }
                        Err(other) => panic!("soak client failed: {other}"),
                    }
                    ops += 1;
                }
                total_ops.fetch_add(ops, Ordering::Relaxed);
            })
        })
        .collect();
    for handle in clients {
        handle.join().expect("soak client thread");
    }

    let ops = total_ops.load(Ordering::Relaxed);
    println!(
        "soak: {CLIENTS} clients, {ops} ops, {} faults injected",
        injector.injected_faults()
    );
    assert!(
        ops > CLIENTS * 100,
        "the soak must actually exercise the server"
    );

    // The server is still coherent after the storm.
    let mut client = SpitzClient::connect(addr).expect("post-soak connect");
    let digest = client.digest().unwrap();
    assert!(digest.verify());
    let json = client.telemetry_json().unwrap();
    assert!(json.contains("server.requests"));
}
