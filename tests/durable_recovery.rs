//! Crash-recovery and reopen-identity tests for the durable chunk store.
//!
//! The acceptance bar: a `SpitzDb`/`Ledger` built on `DurableChunkStore`,
//! dropped, and reopened from the same path yields byte-identical
//! records-root, chain head and digest, serves verifying Merkle proofs, and
//! preserves dedup `StoreStats` across reopen; a segment with a torn tail
//! record (a crashed append) recovers to the last intact record.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use spitz::storage::chunk::{Chunk, ChunkKind};
use spitz::storage::durable::DurableConfig;
use spitz::storage::{ChunkStore, DurableChunkStore, StorageError};
use spitz::{ClientVerifier, SpitzDb};

mod common;
use common::{segment_files, TempDir};

/// The only segment file in a store directory (for tests that damage it).
fn single_segment_file(dir: &Path) -> PathBuf {
    let mut segments = segment_files(dir);
    assert_eq!(segments.len(), 1, "test expects exactly one segment");
    segments.pop().unwrap()
}

fn blob(data: &[u8]) -> Chunk {
    Chunk::new(ChunkKind::Blob, data.to_vec())
}

#[test]
fn reopened_spitzdb_reproduces_digest_chain_and_proofs() {
    let dir = TempDir::new("db-reopen");
    let mut client = ClientVerifier::new();

    let (digest, records_root, block0, stats) = {
        let db = SpitzDb::open(dir.path()).unwrap();
        let writes: Vec<_> = (0..300u32)
            .map(|i| {
                (
                    format!("acct/{i:05}").into_bytes(),
                    format!("balance={}", i % 50).into_bytes(),
                )
            })
            .collect();
        db.put_batch(writes).unwrap();
        db.put(b"acct/00007", b"balance=updated").unwrap();
        db.put(b"audit/log", b"entry-1").unwrap();
        // A deterministic dedup event: the identical chunk stored twice.
        let probe = db.store().put(blob(b"dedup-probe"));
        assert_eq!(db.store().put(blob(b"dedup-probe")), probe);
        assert!(client.observe_digest(db.digest()));
        (
            db.digest(),
            db.ledger().block(0).unwrap().header.records_root,
            db.ledger().block(0).unwrap(),
            db.storage_stats(),
        )
    };
    assert!(stats.dedup_hits > 0, "identical chunks must deduplicate");

    // Reopen from the same path: everything a verifying client pins must be
    // byte-identical.
    let db = SpitzDb::open(dir.path()).unwrap();
    let reopened = db.digest();
    assert_eq!(reopened, digest);
    assert_eq!(reopened.block_hash, digest.block_hash);
    assert_eq!(reopened.index_root, digest.index_root);
    assert_eq!(reopened.journal_root, digest.journal_root);
    assert_eq!(reopened.block_height, 2);
    assert_eq!(db.ledger().block(0).unwrap(), block0);
    assert_eq!(
        db.ledger().block(0).unwrap().header.records_root,
        records_root
    );
    assert_eq!(db.ledger().audit_chain(), None);

    // The client that pinned the pre-restart digest accepts the reopened
    // database's proofs unchanged.
    let (value, proof) = db.get_verified(b"acct/00007").unwrap();
    assert_eq!(value, Some(b"balance=updated".to_vec()));
    assert!(client.verify_read(b"acct/00007", value.as_deref(), &proof));
    let (missing, proof) = db.get_verified(b"acct/99999").unwrap();
    assert!(missing.is_none());
    assert!(proof.verify(b"acct/99999", None));
    let (entries, range_proof) = db.range_verified(b"acct/00010", b"acct/00020").unwrap();
    assert_eq!(entries.len(), 10);
    assert!(range_proof.verify(&entries));

    // Dedup stats survive the restart and keep counting.
    let stats2 = db.storage_stats();
    assert_eq!(stats2.chunk_count, stats.chunk_count);
    assert_eq!(stats2.physical_bytes, stats.physical_bytes);
    assert_eq!(stats2.logical_bytes, stats.logical_bytes);
    assert_eq!(stats2.dedup_hits, stats.dedup_hits);
    db.store().put(blob(b"dedup-probe"));
    assert!(
        db.storage_stats().dedup_hits > stats.dedup_hits,
        "re-storing a persisted chunk must hit dedup after reopen"
    );

    // Writes after reopen extend the same chain.
    db.put(b"acct/00008", b"balance=8").unwrap();
    let extended = db.digest();
    assert_eq!(extended.block_height, 3);
    assert_ne!(extended.journal_root, digest.journal_root);
    assert_eq!(db.ledger().audit_chain(), None);
}

#[test]
fn torn_tail_record_is_dropped_and_the_rest_survives() {
    let dir = TempDir::new("torn-tail");
    let config = DurableConfig {
        segment_target_bytes: 1024 * 1024, // keep everything in one segment
        cache_capacity_bytes: 0,
        fsync_each_put: false,
    };

    let addresses: Vec<_> = {
        let store = DurableChunkStore::open_with_config(dir.path(), config).unwrap();
        (0..20u32)
            .map(|i| store.put(blob(format!("record payload {i:04}").as_bytes())))
            .collect()
    };

    // Simulate a crash mid-append: cut into the middle of the last record.
    let segment = single_segment_file(dir.path());
    let len = std::fs::metadata(&segment).unwrap().len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&segment)
        .unwrap();
    file.set_len(len - 9).unwrap();
    drop(file);

    let store = DurableChunkStore::open_with_config(dir.path(), config).unwrap();
    assert!(store.torn_bytes_recovered() > 0);

    // Every complete chunk survives; the torn one is gone.
    for address in &addresses[..19] {
        assert!(store.contains(address));
        store.get(address).unwrap();
    }
    assert!(!store.contains(&addresses[19]));
    assert!(matches!(
        store.get(&addresses[19]),
        Err(StorageError::ChunkNotFound(_))
    ));

    // Stats are consistent with what actually survived.
    let stats = store.stats();
    assert_eq!(stats.chunk_count, 19);
    assert!(stats.logical_bytes >= stats.physical_bytes);
    assert!(store.audit().is_empty());

    // The store keeps working: the dropped chunk can be rewritten and the
    // rewrite is durable.
    let rewritten = store.put(blob(b"record payload 0019"));
    assert_eq!(rewritten, addresses[19]);
    drop(store);
    let store = DurableChunkStore::open_with_config(dir.path(), config).unwrap();
    assert_eq!(store.torn_bytes_recovered(), 0);
    assert_eq!(store.stats().chunk_count, 20);
    assert_eq!(
        store.get(&addresses[19]).unwrap().data(),
        b"record payload 0019"
    );
}

#[test]
fn torn_tail_under_a_ledger_drops_only_the_uncommitted_block() {
    let dir = TempDir::new("torn-ledger");
    let config = DurableConfig {
        segment_target_bytes: 1024 * 1024,
        cache_capacity_bytes: 0,
        fsync_each_put: false,
    };

    // Two committed blocks, then simulate a crash that tears the tail of
    // the segment (as if a third append never completed).
    let digest_before = {
        let store: Arc<dyn ChunkStore> =
            Arc::new(DurableChunkStore::open_with_config(dir.path(), config).unwrap());
        let db = SpitzDb::with_store(store, Default::default()).unwrap();
        db.put(b"k1", b"v1").unwrap();
        db.put(b"k2", b"v2").unwrap();
        db.digest()
    };

    let segment = single_segment_file(dir.path());
    let len = std::fs::metadata(&segment).unwrap().len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&segment)
        .unwrap();
    file.set_len(len - 3).unwrap();
    drop(file);

    // The torn record was the most recent block chunk, so the recovered
    // head pointer (written at commit time) no longer resolves — the store
    // opens fine but the ledger walk must fail loudly rather than serve a
    // silently shortened chain.
    let store: Arc<dyn ChunkStore> =
        Arc::new(DurableChunkStore::open_with_config(dir.path(), config).unwrap());
    let result = SpitzDb::with_store(Arc::clone(&store), Default::default());
    assert!(
        matches!(
            result.as_ref().err(),
            Some(spitz::core::error::DbError::Storage(_))
        ),
        "dangling head pointer must not open silently: {:?}",
        result.as_ref().err()
    );
    drop(result);
    drop(store);

    // Un-torn variant for contrast: without the truncation the digest is
    // reproduced exactly.
    let dir2 = TempDir::new("untorn-ledger");
    {
        let store: Arc<dyn ChunkStore> =
            Arc::new(DurableChunkStore::open_with_config(dir2.path(), config).unwrap());
        let db = SpitzDb::with_store(store, Default::default()).unwrap();
        db.put(b"k1", b"v1").unwrap();
        db.put(b"k2", b"v2").unwrap();
        assert_eq!(db.digest().block_hash, digest_before.block_hash);
    }
    let store: Arc<dyn ChunkStore> =
        Arc::new(DurableChunkStore::open_with_config(dir2.path(), config).unwrap());
    let db = SpitzDb::with_store(store, Default::default()).unwrap();
    assert_eq!(db.digest().block_hash, digest_before.block_hash);
}

#[test]
fn stats_and_roots_survive_segment_rotation() {
    let dir = TempDir::new("rotation");
    let config = DurableConfig {
        segment_target_bytes: 2048, // force frequent rotation
        cache_capacity_bytes: 4096,
        fsync_each_put: false,
    };

    let (stats, segments) = {
        let store = DurableChunkStore::open_with_config(dir.path(), config).unwrap();
        for i in 0..100u32 {
            store.put(blob(&i.to_be_bytes().repeat(16)));
        }
        for i in 0..50u32 {
            store.put(blob(&i.to_be_bytes().repeat(16))); // dedup hits
        }
        (store.stats(), store.segment_count())
    };
    assert!(segments > 1, "rotation must have produced extra segments");
    assert_eq!(stats.chunk_count, 100);
    assert_eq!(stats.dedup_hits, 50);

    let store = DurableChunkStore::open_with_config(dir.path(), config).unwrap();
    assert_eq!(store.segment_count(), segments);
    assert_eq!(store.stats().chunk_count, stats.chunk_count);
    assert_eq!(store.stats().physical_bytes, stats.physical_bytes);
    assert_eq!(store.stats().logical_bytes, stats.logical_bytes);
    assert_eq!(store.stats().dedup_hits, stats.dedup_hits);
    assert!(store.audit().is_empty());
}
