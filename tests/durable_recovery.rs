//! Crash-recovery and reopen-identity tests for the durable chunk store.
//!
//! The acceptance bar: a `SpitzDb`/`Ledger` built on `DurableChunkStore`,
//! dropped, and reopened from the same path yields byte-identical
//! records-root, chain head and digest, serves verifying Merkle proofs, and
//! preserves dedup `StoreStats` across reopen; a segment with a torn tail
//! record (a crashed append) recovers to the last intact record.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use spitz::core::db::SpitzConfig;
use spitz::ledger::DurabilityPolicy;
use spitz::storage::chunk::{Chunk, ChunkKind};
use spitz::storage::durable::format::root_record_len;
use spitz::storage::durable::DurableConfig;
use spitz::storage::{ChunkStore, DurableChunkStore, StorageError};
use spitz::{ClientVerifier, SpitzDb};

mod common;
use common::{segment_files, TempDir};

/// The only segment file in a store directory (for tests that damage it).
fn single_segment_file(dir: &Path) -> PathBuf {
    let mut segments = segment_files(dir);
    assert_eq!(segments.len(), 1, "test expects exactly one segment");
    segments.pop().unwrap()
}

fn blob(data: &[u8]) -> Chunk {
    Chunk::new(ChunkKind::Blob, data.to_vec())
}

#[test]
fn reopened_spitzdb_reproduces_digest_chain_and_proofs() {
    let dir = TempDir::new("db-reopen");
    let mut client = ClientVerifier::new();

    let (digest, records_root, block0, stats) = {
        let db = SpitzDb::open(dir.path()).unwrap();
        let writes: Vec<_> = (0..300u32)
            .map(|i| {
                (
                    format!("acct/{i:05}").into_bytes(),
                    format!("balance={}", i % 50).into_bytes(),
                )
            })
            .collect();
        db.put_batch(writes).unwrap();
        db.put(b"acct/00007", b"balance=updated").unwrap();
        db.put(b"audit/log", b"entry-1").unwrap();
        // A deterministic dedup event: the identical chunk stored twice.
        let probe = db.store().put(blob(b"dedup-probe"));
        assert_eq!(db.store().put(blob(b"dedup-probe")), probe);
        assert!(client.observe_digest(db.digest()));
        (
            db.digest(),
            db.ledger().block(0).unwrap().header.records_root,
            db.ledger().block(0).unwrap(),
            db.storage_stats(),
        )
    };
    assert!(stats.dedup_hits > 0, "identical chunks must deduplicate");

    // Reopen from the same path: everything a verifying client pins must be
    // byte-identical.
    let db = SpitzDb::open(dir.path()).unwrap();
    let reopened = db.digest();
    assert_eq!(reopened, digest);
    assert_eq!(reopened.block_hash, digest.block_hash);
    assert_eq!(reopened.index_root, digest.index_root);
    assert_eq!(reopened.journal_root, digest.journal_root);
    assert_eq!(reopened.block_height, 2);
    assert_eq!(db.ledger().block(0).unwrap(), block0);
    assert_eq!(
        db.ledger().block(0).unwrap().header.records_root,
        records_root
    );
    assert_eq!(db.ledger().audit_chain(), None);

    // The client that pinned the pre-restart digest accepts the reopened
    // database's proofs unchanged.
    let (value, proof) = db.get_verified(b"acct/00007").unwrap();
    assert_eq!(value, Some(b"balance=updated".to_vec()));
    assert!(client.verify_read(b"acct/00007", value.as_deref(), &proof));
    let (missing, proof) = db.get_verified(b"acct/99999").unwrap();
    assert!(missing.is_none());
    assert!(proof.verify(b"acct/99999", None));
    let (entries, range_proof) = db.range_verified(b"acct/00010", b"acct/00020").unwrap();
    assert_eq!(entries.len(), 10);
    assert!(range_proof.verify(&entries));

    // Dedup stats survive the restart and keep counting.
    let stats2 = db.storage_stats();
    assert_eq!(stats2.chunk_count, stats.chunk_count);
    assert_eq!(stats2.physical_bytes, stats.physical_bytes);
    assert_eq!(stats2.logical_bytes, stats.logical_bytes);
    assert_eq!(stats2.dedup_hits, stats.dedup_hits);
    db.store().put(blob(b"dedup-probe"));
    assert!(
        db.storage_stats().dedup_hits > stats.dedup_hits,
        "re-storing a persisted chunk must hit dedup after reopen"
    );

    // Writes after reopen extend the same chain.
    db.put(b"acct/00008", b"balance=8").unwrap();
    let extended = db.digest();
    assert_eq!(extended.block_height, 3);
    assert_ne!(extended.journal_root, digest.journal_root);
    assert_eq!(db.ledger().audit_chain(), None);
}

#[test]
fn torn_tail_record_is_dropped_and_the_rest_survives() {
    let dir = TempDir::new("torn-tail");
    let config = DurableConfig {
        segment_target_bytes: 1024 * 1024, // keep everything in one segment
        cache_capacity_bytes: 0,
        fsync_each_put: false,
    };

    let addresses: Vec<_> = {
        let store = DurableChunkStore::open_with_config(dir.path(), config).unwrap();
        (0..20u32)
            .map(|i| store.put(blob(format!("record payload {i:04}").as_bytes())))
            .collect()
    };

    // Simulate a crash mid-append: cut into the middle of the last record.
    let segment = single_segment_file(dir.path());
    let len = std::fs::metadata(&segment).unwrap().len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&segment)
        .unwrap();
    file.set_len(len - 9).unwrap();
    drop(file);

    let store = DurableChunkStore::open_with_config(dir.path(), config).unwrap();
    assert!(store.torn_bytes_recovered() > 0);

    // Every complete chunk survives; the torn one is gone.
    for address in &addresses[..19] {
        assert!(store.contains(address));
        store.get(address).unwrap();
    }
    assert!(!store.contains(&addresses[19]));
    assert!(matches!(
        store.get(&addresses[19]),
        Err(StorageError::ChunkNotFound(_))
    ));

    // Stats are consistent with what actually survived.
    let stats = store.stats();
    assert_eq!(stats.chunk_count, 19);
    assert!(stats.logical_bytes >= stats.physical_bytes);
    assert!(store.audit().is_empty());

    // The store keeps working: the dropped chunk can be rewritten and the
    // rewrite is durable.
    let rewritten = store.put(blob(b"record payload 0019"));
    assert_eq!(rewritten, addresses[19]);
    drop(store);
    let store = DurableChunkStore::open_with_config(dir.path(), config).unwrap();
    assert_eq!(store.torn_bytes_recovered(), 0);
    assert_eq!(store.stats().chunk_count, 20);
    assert_eq!(
        store.get(&addresses[19]).unwrap().data(),
        b"record payload 0019"
    );
}

/// Commit two blocks, record the per-block digests and the segment length
/// after each commit, and return them — the shared setup of the crash
/// tests. The database is closed cleanly; the caller then damages the
/// segment to simulate the crash.
fn two_block_history(
    dir: &Path,
    config: DurableConfig,
) -> (spitz::Digest, spitz::Digest, PathBuf, u64) {
    let store: Arc<dyn ChunkStore> =
        Arc::new(DurableChunkStore::open_with_config(dir, config).unwrap());
    let db = SpitzDb::with_store(store, Default::default()).unwrap();
    let digest1 = db.put(b"k1", b"v1").unwrap();
    let digest2 = db.put(b"k2", b"v2").unwrap();
    drop(db);
    let segment = single_segment_file(dir);
    let len = std::fs::metadata(&segment).unwrap().len();
    (digest1, digest2, segment, len)
}

fn truncate_to(path: &Path, len: u64) {
    let file = std::fs::OpenOptions::new().write(true).open(path).unwrap();
    file.set_len(len).unwrap();
}

/// Crash simulation: the kill lands *between* the segment fsync of block
/// 2's data and the append of its root record — the log ends exactly at
/// the block chunk, with no (partial) root record after it. Reopen must
/// land on block 1, the last *durable* root, with the chain and digest
/// intact, and recommitting the lost write must reproduce block 2 exactly.
#[test]
fn crash_before_root_record_recovers_to_previous_root() {
    let dir = TempDir::new("crash-pre-root");
    let config = DurableConfig {
        segment_target_bytes: 1024 * 1024,
        cache_capacity_bytes: 0,
        fsync_each_put: false,
    };
    let (digest1, digest2, segment, len) = two_block_history(dir.path(), config);

    // The file tail is [... block-2 chunk][root record]; cut the whole root
    // record so the data survives but its publication never happened.
    let root_len = root_record_len(spitz::ledger::LEDGER_HEAD_ROOT) as u64;
    truncate_to(&segment, len - root_len);

    let store: Arc<dyn ChunkStore> =
        Arc::new(DurableChunkStore::open_with_config(dir.path(), config).unwrap());
    let db = SpitzDb::with_store(Arc::clone(&store), Default::default()).unwrap();
    assert_eq!(db.digest(), digest1, "must land on the last durable root");
    assert_eq!(db.digest().block_height, 0);
    assert_eq!(db.get(b"k1").unwrap(), Some(b"v1".to_vec()));
    assert_eq!(db.get(b"k2").unwrap(), None, "unpublished commit is gone");
    assert_eq!(db.ledger().audit_chain(), None);

    // Recommitting the lost write reproduces the identical block 2: same
    // height, same prev hash, same digest — and the block chunk that
    // survived unreferenced deduplicates instead of growing the log.
    let recommitted = db.put(b"k2", b"v2").unwrap();
    assert_eq!(recommitted, digest2);
    assert_eq!(db.ledger().audit_chain(), None);
}

/// Crash simulation: the kill lands *mid root-record* (a torn tail). The
/// partial record must be dropped, recovery again lands on the last
/// durable root, and every durability policy reopens to the same state.
#[test]
fn torn_root_record_recovers_to_previous_root_under_every_policy() {
    for policy in [
        DurabilityPolicy::Strict,
        DurabilityPolicy::grouped_default(),
        DurabilityPolicy::Os,
    ] {
        let dir = TempDir::new("crash-torn-root");
        let config = DurableConfig {
            segment_target_bytes: 1024 * 1024,
            cache_capacity_bytes: 0,
            fsync_each_put: false,
        };
        let (digest1, _digest2, segment, len) = two_block_history(dir.path(), config);

        // Tear into the middle of block 2's root record (3 bytes short).
        truncate_to(&segment, len - 3);

        let durable = Arc::new(DurableChunkStore::open_with_config(dir.path(), config).unwrap());
        assert!(durable.torn_bytes_recovered() > 0, "{}", policy.name());
        let db = SpitzDb::with_store(
            durable as Arc<dyn ChunkStore>,
            SpitzConfig::default().with_durability(policy),
        )
        .unwrap();
        assert_eq!(db.digest(), digest1, "{}", policy.name());
        assert_eq!(db.get(b"k2").unwrap(), None, "{}", policy.name());
        assert_eq!(db.ledger().audit_chain(), None, "{}", policy.name());

        // The recovered chain keeps extending under the same policy.
        let extended = db.put(b"k3", b"v3").unwrap();
        assert_eq!(extended.block_height, 1, "{}", policy.name());
        drop(db);
        let store: Arc<dyn ChunkStore> =
            Arc::new(DurableChunkStore::open_with_config(dir.path(), config).unwrap());
        let db = SpitzDb::with_store(store, Default::default()).unwrap();
        assert_eq!(db.digest(), extended, "{}", policy.name());
    }
}

/// N writer threads × M puts through the group-commit pipeline must yield
/// exactly N·M records with a verifiable digest and a clean chain, and the
/// whole history must survive a drain + reopen byte-identically.
#[test]
fn concurrent_pipeline_writers_commit_every_record_exactly_once() {
    const WRITERS: u32 = 4;
    const PUTS: u32 = 30;
    let dir = TempDir::new("pipeline-concurrency");
    let config = SpitzConfig::default().with_durability(DurabilityPolicy::grouped_default());

    let digest = {
        let db = SpitzDb::open_with_config(dir.path(), config).unwrap();
        std::thread::scope(|scope| {
            for writer in 0..WRITERS {
                let db = &db;
                scope.spawn(move || {
                    for i in 0..PUTS {
                        let key = format!("writer-{writer:02}/key-{i:04}");
                        let value = format!("value-{writer}-{i}");
                        db.put(key.as_bytes(), value.as_bytes()).unwrap();
                    }
                });
            }
        });

        assert_eq!(db.ledger().len() as u32, WRITERS * PUTS);
        for writer in 0..WRITERS {
            for i in 0..PUTS {
                let key = format!("writer-{writer:02}/key-{i:04}");
                assert_eq!(
                    db.get(key.as_bytes()).unwrap(),
                    Some(format!("value-{writer}-{i}").into_bytes())
                );
            }
        }
        assert_eq!(db.ledger().audit_chain(), None);
        let pipeline = db.pipeline().expect("durable db commits via pipeline");
        assert_eq!(pipeline.stats().commits, (WRITERS * PUTS) as u64);

        // A verified read proves the coalesced blocks still chain cleanly.
        let (value, proof) = db.get_verified(b"writer-00/key-0000").unwrap();
        assert!(proof.verify(b"writer-00/key-0000", value.as_deref()));
        db.digest()
    }; // drop: drain + final fsync + manifest

    let db = SpitzDb::open(dir.path()).unwrap();
    assert_eq!(db.digest(), digest);
    assert_eq!(db.ledger().len() as u32, WRITERS * PUTS);
    assert_eq!(db.ledger().audit_chain(), None);
}

/// `flush()` makes grouped commits durable on demand: after a flush, a
/// crash (simulated by leaking the store so nothing runs at drop) must not
/// lose the flushed history.
#[test]
fn explicit_flush_makes_grouped_commits_durable() {
    let dir = TempDir::new("pipeline-flush");
    let config = SpitzConfig::default().with_durability(DurabilityPolicy::Grouped {
        max_delay: std::time::Duration::from_secs(3600),
        max_writes: 1_000_000, // only an explicit flush may sync
    });

    let digest = {
        let db = SpitzDb::open_with_config(dir.path(), config).unwrap();
        db.put(b"k1", b"v1").unwrap();
        db.put(b"k2", b"v2").unwrap();
        db.flush().unwrap();
        let digest = db.digest();
        // Simulate a hard kill: no pipeline drain, no store flush.
        std::mem::forget(db);
        digest
    };

    let db = SpitzDb::open(dir.path()).unwrap();
    assert_eq!(db.digest(), digest, "flushed commits must survive a crash");
    assert_eq!(db.get(b"k2").unwrap(), Some(b"v2".to_vec()));
    assert_eq!(db.ledger().audit_chain(), None);
}

#[test]
fn stats_and_roots_survive_segment_rotation() {
    let dir = TempDir::new("rotation");
    let config = DurableConfig {
        segment_target_bytes: 2048, // force frequent rotation
        cache_capacity_bytes: 4096,
        fsync_each_put: false,
    };

    let (stats, segments) = {
        let store = DurableChunkStore::open_with_config(dir.path(), config).unwrap();
        for i in 0..100u32 {
            store.put(blob(&i.to_be_bytes().repeat(16)));
        }
        for i in 0..50u32 {
            store.put(blob(&i.to_be_bytes().repeat(16))); // dedup hits
        }
        (store.stats(), store.segment_count())
    };
    assert!(segments > 1, "rotation must have produced extra segments");
    assert_eq!(stats.chunk_count, 100);
    assert_eq!(stats.dedup_hits, 50);

    let store = DurableChunkStore::open_with_config(dir.path(), config).unwrap();
    assert_eq!(store.segment_count(), segments);
    assert_eq!(store.stats().chunk_count, stats.chunk_count);
    assert_eq!(store.stats().physical_bytes, stats.physical_bytes);
    assert_eq!(store.stats().logical_bytes, stats.logical_bytes);
    assert_eq!(store.stats().dedup_hits, stats.dedup_hits);
    assert!(store.audit().is_empty());
}

/// The typed-table catalog survives a reopen: schemas come back from the
/// `spitz/catalog` root chunk, and the analytical state (inverted indexes,
/// primary keys, record timestamps) is rebuilt from the ledger's
/// universal-key ranges — so typed reads, analytical queries and further
/// inserts all keep working across a restart.
#[test]
fn typed_table_catalog_survives_reopen() {
    use spitz::{ColumnType, Record, Schema, Value};

    let dir = TempDir::new("catalog-reopen");
    {
        let db = SpitzDb::open(dir.path()).unwrap();
        db.create_table(Schema::new(
            "items",
            vec![("name", ColumnType::Text), ("stock", ColumnType::Integer)],
        ))
        .unwrap();
        for i in 0..20 {
            let record = Record::new(format!("item-{i:03}"))
                .with("name", Value::Text(format!("widget-{i}")))
                .with("stock", Value::Integer(i));
            db.insert_record("items", &record).unwrap();
        }
        // A second version of one record: the reopen must surface the
        // latest version, not the first.
        db.insert_record(
            "items",
            &Record::new("item-007")
                .with("name", Value::Text("widget-7-v2".into()))
                .with("stock", Value::Integer(700)),
        )
        .unwrap();
        db.flush().unwrap();
    }

    let db = SpitzDb::open(dir.path()).unwrap();
    // Typed point reads serve the latest versions.
    let record = db.get_record("items", "item-007").unwrap().unwrap();
    assert_eq!(record.get("stock"), Some(&Value::Integer(700)));
    assert_eq!(record.get("name"), Some(&Value::Text("widget-7-v2".into())));
    let record = db.get_record("items", "item-012").unwrap().unwrap();
    assert_eq!(record.get("stock"), Some(&Value::Integer(12)));

    // Analytical queries over the rebuilt inverted indexes.
    let low = db.query_int_range("items", "stock", 0, 5).unwrap();
    assert_eq!(low.len(), 5);
    assert!(low.contains(&"item-004".to_string()));
    let named = db
        .query_eq("items", "name", &Value::Text("widget-12".into()))
        .unwrap();
    assert_eq!(named, vec!["item-012".to_string()]);

    // Inserts keep working after the rebuild (timestamps resume).
    db.insert_record(
        "items",
        &Record::new("item-new")
            .with("name", Value::Text("fresh".into()))
            .with("stock", Value::Integer(1)),
    )
    .unwrap();
    let record = db.get_record("items", "item-new").unwrap().unwrap();
    assert_eq!(record.get("stock"), Some(&Value::Integer(1)));

    // And a second reopen still sees everything.
    db.flush().unwrap();
    drop(db);
    let db = SpitzDb::open(dir.path()).unwrap();
    assert!(db.get_record("items", "item-new").unwrap().is_some());
    assert_eq!(
        db.query_eq("items", "name", &Value::Text("fresh".into()))
            .unwrap(),
        vec!["item-new".to_string()]
    );
}

/// Two tables whose columns share positions (and types) must stay separate
/// across a reopen: column ids are allocated globally per table, so the
/// catalog rebuild must not leak one table's cells into another's indexes.
#[test]
fn catalog_rebuild_keeps_tables_separate() {
    use spitz::{ColumnType, Record, Schema, Value};

    let dir = TempDir::new("catalog-two-tables");
    {
        let db = SpitzDb::open(dir.path()).unwrap();
        db.create_table(Schema::new("users", vec![("name", ColumnType::Text)]))
            .unwrap();
        db.create_table(Schema::new("cities", vec![("name", ColumnType::Text)]))
            .unwrap();
        db.insert_record(
            "users",
            &Record::new("u1").with("name", Value::Text("ada".into())),
        )
        .unwrap();
        db.insert_record(
            "cities",
            &Record::new("c1").with("name", Value::Text("athens".into())),
        )
        .unwrap();
        db.flush().unwrap();
    }

    let db = SpitzDb::open(dir.path()).unwrap();
    // Each table sees exactly its own rows, before and after analytics.
    assert_eq!(
        db.query_eq("users", "name", &Value::Text("ada".into()))
            .unwrap(),
        vec!["u1".to_string()]
    );
    assert!(db
        .query_eq("users", "name", &Value::Text("athens".into()))
        .unwrap()
        .is_empty());
    assert_eq!(
        db.query_eq("cities", "name", &Value::Text("athens".into()))
            .unwrap(),
        vec!["c1".to_string()]
    );
    assert!(db.get_record("users", "c1").unwrap().is_none());
    assert!(db.get_record("cities", "u1").unwrap().is_none());
    let user = db.get_record("users", "u1").unwrap().unwrap();
    assert_eq!(user.get("name"), Some(&Value::Text("ada".into())));
}
