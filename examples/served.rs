//! Served front-end walkthrough: the database behind a socket, with a
//! light client that trusts nothing but a pinned digest.
//!
//! Run with `cargo run --release --example served`.
//!
//! Starts a `SpitzServer` over a four-shard in-memory database, then
//! talks to it purely over TCP: a raw `SpitzClient` for the wire-level
//! view (pipelined requests, typed errors, admin endpoints) and a
//! `LightClient` for the trust story — every read is verified against a
//! pinned cross-shard digest with the exact acceptance rule an
//! in-process `Verifier` applies, so a lying server is caught, not
//! believed.

use std::sync::Arc;

use spitz::server::protocol::ErrorCode;
use spitz::server::ClientError;
use spitz::{LightClient, ServerConfig, ShardedDb, SpitzClient, SpitzServer};

fn main() {
    let db = Arc::new(ShardedDb::in_memory(4));
    let server = SpitzServer::start(Arc::clone(&db), ServerConfig::default()).expect("start");
    let addr = server.local_addr();
    println!("serving {} shards on {addr}", db.shard_count());

    // --- The light client: pin once, verify everything. -----------------
    let mut client = LightClient::connect(addr).expect("connect");
    client
        .put_batch(&[
            (
                b"invoice/2026-001".to_vec(),
                b"amount=1250;status=paid".to_vec(),
            ),
            (
                b"invoice/2026-002".to_vec(),
                b"amount=480;status=open".to_vec(),
            ),
            (
                b"invoice/2026-003".to_vec(),
                b"amount=90;status=open".to_vec(),
            ),
        ])
        .expect("cross-shard batch");
    client.pin().expect("pin the post-write digest");
    println!("pinned root {}", client.pinned_root().expect("pinned"));

    let value = client.get(b"invoice/2026-001").expect("verified get");
    println!(
        "verified read: invoice/2026-001 = {:?}",
        String::from_utf8_lossy(&value.expect("present"))
    );

    // Verified range over every shard, merged under one proof.
    let entries = client
        .range(b"invoice/", b"invoice/~")
        .expect("verified range");
    println!("verified range: {} invoices", entries.len());
    for (k, v) in &entries {
        println!(
            "  {} = {}",
            String::from_utf8_lossy(k),
            String::from_utf8_lossy(v)
        );
    }

    // Absence is proved too: a missing key comes back None only if the
    // server can prove the hole against the pinned root.
    assert!(client
        .get(b"invoice/2026-999")
        .expect("absence proof")
        .is_none());
    println!("verified absence: invoice/2026-999 is provably unwritten");

    // follow() long-polls the digest feed and advances the pin — this is
    // how a light client tracks a live database without re-reading it.
    let next_epoch = client.inner().digest().expect("digest").epoch + 1;
    let feeder = std::thread::spawn({
        let db = Arc::clone(&db);
        move || {
            db.put(b"invoice/2026-004", b"amount=7700;status=open")
                .expect("put")
        }
    });
    let digest = client.follow(next_epoch).expect("digest feed");
    feeder.join().expect("feeder");
    println!("followed digest feed to epoch {}", digest.epoch);

    // --- The raw wire client: admin endpoints and typed errors. ----------
    let mut wire = SpitzClient::connect(addr).expect("wire connect");
    let health = wire.health().expect("health");
    println!(
        "health: {:?} across {} shards",
        health.overall,
        health.shards.len()
    );

    let json = wire.telemetry_json().expect("telemetry");
    println!("telemetry endpoint served {} bytes of JSON", json.len());

    // Errors are typed and scoped to their request: an unknown opcode gets
    // a structured refusal and the connection keeps serving.
    let err = wire
        .call(0x5A, b"???")
        .expect_err("unknown opcode must be refused");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::UnknownOpcode),
        other => panic!("expected a typed server error, got {other}"),
    }
    assert_eq!(wire.ping(b"still-alive").expect("ping"), b"still-alive");
    println!("typed refusal for an unknown opcode; connection still serving");

    drop(server); // graceful drain: accepted work finishes, threads join
    println!("server drained cleanly");
}
