//! Durable reopen walkthrough: a ledger database that survives restarts.
//!
//! Run with `cargo run --release --example durable_reopen`.
//!
//! Phase 1 opens a `SpitzDb` on an on-disk chunk store, commits a few
//! blocks and records the digest a verifying client would pin. Phase 2
//! drops the database entirely (simulating a process restart), reopens the
//! same directory, and shows that the recovered database is
//! indistinguishable to that client: identical digest, identical blocks,
//! proofs that still verify against the pre-restart pin, and storage
//! statistics (including dedup counters) carried across.

use spitz::{SpitzDb, Verifier};

fn main() {
    let dir = std::env::temp_dir().join(format!("spitz-durable-reopen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- Phase 1: a fresh database, some committed history ----------------
    let mut client = Verifier::new();
    let digest_before = {
        let db = SpitzDb::open(&dir).expect("open fresh durable db");
        let accounts: Vec<_> = (0..100u32)
            .map(|i| {
                (
                    format!("acct/{i:04}").into_bytes(),
                    format!("balance={}", 100 + i).into_bytes(),
                )
            })
            .collect();
        db.put_batch(accounts).expect("load accounts");
        db.put(b"acct/0007", b"balance=frozen")
            .expect("freeze 0007");
        db.put(b"audit/2026-07-28", b"quarterly review passed")
            .expect("audit entry");

        let digest = db.digest();
        assert!(client.observe_digest(digest));
        let stats = db.storage_stats();
        println!("phase 1: committed {} blocks", digest.block_height + 1);
        println!(
            "  digest        block={} index={}",
            digest.block_hash.short(),
            digest.index_root.short()
        );
        println!(
            "  storage       {} chunks, {} physical bytes, {:.1}% dedup",
            stats.chunk_count,
            stats.physical_bytes,
            stats.dedup_ratio() * 100.0
        );
        digest
    }; // <- the database (and its store) is dropped here: "process exit"

    // ---- Phase 2: reopen from disk ----------------------------------------
    let db = SpitzDb::open(&dir).expect("reopen from the same directory");
    let digest_after = db.digest();
    println!("phase 2: reopened from {}", dir.display());
    println!(
        "  digest        block={} index={}",
        digest_after.block_hash.short(),
        digest_after.index_root.short()
    );

    assert_eq!(digest_after, digest_before, "digest must survive restart");
    assert_eq!(db.ledger().audit_chain(), None, "chain must audit clean");

    // The client pinned its digest *before* the restart; the reopened
    // database's proofs verify against that pin unchanged.
    let (value, proof) = db.get_verified(b"acct/0007").expect("verified read");
    assert_eq!(value.as_deref(), Some(b"balance=frozen".as_slice()));
    assert!(client.verify_read(b"acct/0007", value.as_deref(), &proof));
    println!("  verified read acct/0007 = balance=frozen (proof ok against old pin)");

    let (entries, range_proof) = db
        .range_verified(b"acct/0010", b"acct/0020")
        .expect("verified range");
    assert!(range_proof.verify(&entries));
    println!(
        "  verified range acct/0010..acct/0020 -> {} entries",
        entries.len()
    );

    // History keeps extending on the recovered chain.
    let extended = db.put(b"acct/0007", b"balance=unfrozen").expect("write");
    assert!(client.observe_digest(extended));
    assert_eq!(extended.block_height, digest_before.block_height + 1);
    println!(
        "  new block {} accepted by the same client",
        extended.block_height
    );

    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    println!("durable reopen: all checks passed");
}
