//! E-commerce scenario from Section 3.3: purchases must be serializable (no
//! double spending, no shipping out-of-stock items), while stock-level
//! reports run as weakly isolated analytical reads. A verifying client (an
//! auditor or regulator) checks query results and detects tampering and
//! history rollback.
//!
//! Run with: `cargo run --example ecommerce_ledger`

use spitz::txn::{CcScheme, IsolationLevel, MvccStore, TimestampOracle, TransactionManager};
use spitz::{ColumnType, Record, Schema, SpitzDb, Value, Verifier};
use std::sync::Arc;

fn main() {
    // ------------------------------------------------------------------
    // Serializable purchases through the transaction substrate.
    // ------------------------------------------------------------------
    let tm = TransactionManager::new(
        Arc::new(MvccStore::new()),
        Arc::new(TimestampOracle::new()),
        CcScheme::Occ,
    );

    // Seed the stock of one item.
    let mut seed = tm.begin(IsolationLevel::Serializable);
    tm.write(&mut seed, b"stock/widget", b"1".to_vec()).unwrap();
    tm.commit(&mut seed).unwrap();

    // Two customers race for the last widget; exactly one purchase commits.
    let mut alice = tm.begin(IsolationLevel::Serializable);
    let mut bob = tm.begin(IsolationLevel::Serializable);
    let stock_seen_by_alice = tm.read(&mut alice, b"stock/widget");
    let stock_seen_by_bob = tm.read(&mut bob, b"stock/widget");
    assert_eq!(stock_seen_by_alice, Some(b"1".to_vec()));
    assert_eq!(stock_seen_by_bob, Some(b"1".to_vec()));
    tm.write(&mut alice, b"stock/widget", b"0".to_vec())
        .unwrap();
    tm.write(&mut bob, b"stock/widget", b"0".to_vec()).unwrap();
    let alice_result = tm.commit(&mut alice);
    let bob_result = tm.commit(&mut bob);
    println!(
        "purchase race: alice committed = {}, bob committed = {}",
        alice_result.is_ok(),
        bob_result.is_ok()
    );
    assert!(
        alice_result.is_ok() ^ bob_result.is_ok(),
        "exactly one purchase must win"
    );

    // ------------------------------------------------------------------
    // The order history lives in the verifiable database.
    // ------------------------------------------------------------------
    let db = SpitzDb::in_memory();
    db.create_table(Schema::new(
        "orders",
        vec![
            ("item", ColumnType::Text),
            ("quantity", ColumnType::Integer),
            ("status", ColumnType::Text),
        ],
    ))
    .unwrap();

    for i in 0..200 {
        let record = Record::new(format!("order-{i:05}"))
            .with("item", Value::Text(format!("sku-{}", i % 20)))
            .with("quantity", Value::Integer(1 + (i % 3)))
            .with(
                "status",
                Value::Text(if i % 7 == 0 { "refunded" } else { "shipped" }.into()),
            );
        db.insert_record("orders", &record).unwrap();
    }
    println!(
        "recorded 200 orders across {} ledger blocks",
        db.digest().block_height + 1
    );

    // Weakly isolated analytics: status report straight from the inverted
    // index, no serializable transaction needed.
    let refunded = db
        .query_eq("orders", "status", &Value::Text("refunded".into()))
        .unwrap();
    println!("refunded orders: {}", refunded.len());

    // ------------------------------------------------------------------
    // The auditor verifies what the merchant reports.
    // ------------------------------------------------------------------
    let mut auditor = Verifier::new();
    auditor.observe_digest(db.digest());

    // Verified range scan over a window of raw order cells.
    let (entries, proof) = db.range_verified(&[0u8, 0, 0, 0], &[0u8, 0, 0, 1]).unwrap();
    let ok = auditor.verify_range(&entries, &proof);
    println!(
        "verified scan of the 'item' column: {} cells, verification {}",
        entries.len(),
        if ok { "PASSED" } else { "FAILED" }
    );
    assert!(ok);

    // Deferred verification: queue a batch of reads, verify them together.
    for i in 0..50 {
        let key = format!("order-{i:05}");
        let prefix = spitz::core::cell::UniversalKey::cell_prefix(0, key.as_bytes());
        let mut end = prefix.clone();
        end.push(0xff);
        let (cells, _) = db.range_verified(&prefix, &end).unwrap();
        if let Some((cell_key, value)) = cells.into_iter().next() {
            let (v, proof) = db.get_verified(&cell_key).unwrap();
            assert_eq!(v.as_ref(), Some(&value));
            auditor.defer_read(cell_key, v, proof);
        }
    }
    let report = auditor.flush_deferred();
    println!(
        "deferred audit: {} verified, {} failed",
        report.verified, report.failed
    );
    assert!(report.all_ok());

    // A rollback attack (re-presenting an older digest) is refused.
    let old_digest = db.digest();
    db.put(b"orders/extra", b"late write").unwrap();
    assert!(auditor.observe_digest(db.digest()));
    assert!(!auditor.observe_digest(old_digest));
    println!("rollback to an older digest correctly refused");
}
