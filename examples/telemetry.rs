//! Telemetry walkthrough: what an operator sees after a mixed workload.
//!
//! Run with `cargo run --release --example telemetry`.
//!
//! Opens a durable two-shard `ShardedDb` (telemetry is on by default),
//! drives every instrumented layer — storage appends and cache reads,
//! per-shard group-commit pipelines, a few cross-shard 2PC batches, and
//! point/range proofs with their wire sizes — then prints the text
//! exposition from a single deployment-wide snapshot. The same snapshot
//! also renders as JSON (`render_json()`), which is what a scrape
//! endpoint would serve; `fig_obs --smoke` validates that form in CI.

use spitz::{ShardedConfig, ShardedDb, Verifier};

fn main() {
    let dir = std::env::temp_dir().join(format!("spitz-telemetry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let config = ShardedConfig::default().with_shards(2);
    let db = ShardedDb::open(&dir, config).expect("open durable sharded db");

    // Storage + commit pipeline: single-key puts routed across the shards.
    for i in 0..300u32 {
        let key = format!("sensor/{i:05}");
        let value = format!("reading={};unit=kPa", 90 + i % 20);
        db.put(key.as_bytes(), value.as_bytes()).expect("put");
    }

    // 2PC: atomic cross-shard batches (hash routing spreads each batch
    // over both shards, so every batch runs prepare/commit).
    for batch in 0..6u32 {
        let writes: Vec<(Vec<u8>, Vec<u8>)> = (0..12u32)
            .map(|i| {
                (
                    format!("rollup/{batch:02}/{i:02}").into_bytes(),
                    format!("window={batch};count={i}").into_bytes(),
                )
            })
            .collect();
        db.put_batch(writes).expect("cross-shard batch");
    }

    // Proof layer: verified point reads and a verified cross-shard range,
    // checked by a client the way a real deployment would.
    let mut client = Verifier::new();
    assert!(client.observe_sharded(&db.digest()));
    for i in 0..25u32 {
        let key = format!("sensor/{:05}", i * 7);
        let (value, proof) = db.get_verified(key.as_bytes()).expect("get_verified");
        assert!(proof.verify(key.as_bytes(), value.as_deref()));
    }
    let (entries, proof) = db
        .range_verified(b"sensor/00100", b"sensor/00160")
        .expect("range_verified");
    assert!(proof.verify(&entries), "range proof must verify");
    println!(
        "workload done: 300 puts, 6 cross-shard batches, 25 verified gets, \
         1 verified range ({} entries)\n",
        entries.len()
    );

    // Flush so the pipeline/fsync instruments reflect a settled system,
    // then take one consistent snapshot of the shared registry.
    db.flush().expect("flush");
    let snapshot = db.telemetry();
    println!("{}", snapshot.render_text());

    // A few of the questions the snapshot answers directly:
    let commits = snapshot.counter("pipeline.commits").unwrap_or(0);
    let prepares = snapshot.counter("twopc.prepares").unwrap_or(0);
    let point = snapshot
        .histogram("proof.sharded_point_bytes")
        .expect("proof.sharded_point_bytes");
    println!(
        "pipeline committed {commits} writes; 2PC ran {prepares} prepares; \
         mean sharded point proof = {} bytes over {} reads",
        point.sum.checked_div(point.count).unwrap_or(0),
        point.count
    );

    let _ = std::fs::remove_dir_all(&dir);
}
