//! Healthcare analytics scenario from the paper's introduction: patient
//! records are append-only, coding standards change over time (ICD-9 →
//! ICD-10), historical versions must stay queryable, and analytical queries
//! run over the typed table layer with inverted indexes.
//!
//! Run with: `cargo run --example healthcare_records`

use spitz::{ColumnType, Record, Schema, SpitzDb, Value};

fn main() {
    let db = SpitzDb::in_memory();
    db.create_table(Schema::new(
        "patients",
        vec![
            ("diagnosis", ColumnType::Text),
            ("lab_glucose", ColumnType::Integer),
            ("physician", ColumnType::Text),
        ],
    ))
    .unwrap();

    // Initial records coded under ICD-9.
    for i in 0..50 {
        let record = Record::new(format!("patient-{i:03}"))
            .with("diagnosis", Value::Text("icd9/250.00".to_string()))
            .with("lab_glucose", Value::Integer(90 + (i % 60)))
            .with("physician", Value::Text(format!("dr-{}", i % 5)));
        db.insert_record("patients", &record).unwrap();
    }
    let digest_icd9 = db.digest();
    println!(
        "loaded 50 ICD-9 coded records; ledger at block #{}",
        digest_icd9.block_height
    );

    // A recoding pass appends *new versions* under ICD-10; nothing is
    // deleted, the old versions remain in the immutable store and ledger.
    for i in 0..50 {
        let record = Record::new(format!("patient-{i:03}"))
            .with("diagnosis", Value::Text("icd10/E11.9".to_string()))
            .with("lab_glucose", Value::Integer(90 + (i % 60)))
            .with("physician", Value::Text(format!("dr-{}", i % 5)));
        db.insert_record("patients", &record).unwrap();
    }
    let digest_icd10 = db.digest();
    println!(
        "recoded to ICD-10; ledger grew from block #{} to #{}",
        digest_icd9.block_height, digest_icd10.block_height
    );
    assert!(digest_icd10.block_height > digest_icd9.block_height);

    // Current state reflects the new coding.
    let current = db.get_record("patients", "patient-007").unwrap().unwrap();
    println!(
        "patient-007 current diagnosis: {:?}",
        current.get("diagnosis")
    );
    assert_eq!(
        current.get("diagnosis"),
        Some(&Value::Text("icd10/E11.9".into()))
    );

    // Analytical queries over the inverted indexes.
    let diabetic = db
        .query_eq("patients", "diagnosis", &Value::Text("icd10/E11.9".into()))
        .unwrap();
    println!("patients with the ICD-10 diabetes code: {}", diabetic.len());
    assert_eq!(diabetic.len(), 50);

    let elevated = db
        .query_int_range("patients", "lab_glucose", 126, 200)
        .unwrap();
    println!("patients with elevated glucose (>=126): {}", elevated.len());

    // Point-in-time provenance: the pre-recoding ledger version can still be
    // opened and shows the ICD-9 data.
    let historical = db.ledger().checkout(digest_icd9.block_height).unwrap();
    let historical_entries = historical.range(&[], &[0xff; 16]);
    println!(
        "historical ledger version at block #{} still holds {} cells",
        digest_icd9.block_height,
        historical_entries.len()
    );
    assert!(!historical_entries.is_empty());

    // And the whole history audits clean.
    assert_eq!(db.ledger().audit_chain(), None);
    println!("provenance audit passed");
}
