//! A miniature version of the paper's evaluation: load the same workload
//! into the immutable KVS, Spitz, the QLDB-like baseline, and the
//! non-intrusive composition, then print the relative cost of reads, writes
//! and verified reads. This is the quickest way to see the Figure 6/8 shape
//! without running the full benchmark harness.
//!
//! Run with: `cargo run --release --example system_comparison`

use spitz::baseline::{ImmutableKvs, NonIntrusiveVdb, QldbBaseline};
use spitz::{SpitzDb, Verifier};
use std::time::Instant;

const RECORDS: usize = 20_000;
const READS: usize = 10_000;

fn record(i: usize) -> (Vec<u8>, Vec<u8>) {
    (format!("{i:08x}").into_bytes(), vec![0xabu8; 20])
}

fn kops(count: usize, elapsed: std::time::Duration) -> f64 {
    count as f64 / elapsed.as_secs_f64() / 1_000.0
}

fn main() {
    println!("loading {RECORDS} records into each system...");
    let kvs = ImmutableKvs::new();
    let spitz = SpitzDb::in_memory();
    let qldb = QldbBaseline::new();
    let non_intrusive = NonIntrusiveVdb::new();

    for i in 0..RECORDS {
        let (k, v) = record(i);
        kvs.put(&k, &v);
        spitz.put(&k, &v).unwrap();
        qldb.put(&k, &v);
        non_intrusive.put(&k, &v);
    }
    qldb.seal();

    let keys: Vec<Vec<u8>> = (0..READS).map(|i| record(i * 7 % RECORDS).0).collect();

    // Plain reads.
    let t = Instant::now();
    for k in &keys {
        std::hint::black_box(kvs.get(k));
    }
    println!(
        "read  | immutable KVS        : {:8.1} kops/s",
        kops(READS, t.elapsed())
    );

    let t = Instant::now();
    for k in &keys {
        std::hint::black_box(spitz.get(k).unwrap());
    }
    println!(
        "read  | Spitz                : {:8.1} kops/s",
        kops(READS, t.elapsed())
    );

    let mut client = Verifier::new();
    client.observe_digest(spitz.digest());
    let t = Instant::now();
    for k in &keys {
        let (value, proof) = spitz.get_verified(k).unwrap();
        assert!(client.verify_read(k, value.as_deref(), &proof));
    }
    println!(
        "read  | Spitz + verification : {:8.1} kops/s",
        kops(READS, t.elapsed())
    );

    let t = Instant::now();
    for k in &keys {
        std::hint::black_box(qldb.get(k));
    }
    println!(
        "read  | baseline             : {:8.1} kops/s",
        kops(READS, t.elapsed())
    );

    let t = Instant::now();
    for k in &keys {
        let (value, proof) = qldb.get_verified(k).unwrap();
        assert!(proof.verify(k, &value));
    }
    println!(
        "read  | baseline + verify    : {:8.1} kops/s",
        kops(READS, t.elapsed())
    );

    let t = Instant::now();
    for k in &keys {
        let (value, proof) = non_intrusive.get_verified(k);
        assert!(proof.verify(k, value.as_deref()));
    }
    println!(
        "read  | non-intrusive + verify: {:8.1} kops/s",
        kops(READS, t.elapsed())
    );

    // Writes of fresh keys.
    let fresh: Vec<(Vec<u8>, Vec<u8>)> = (0..5_000).map(|i| record(RECORDS + i)).collect();
    let t = Instant::now();
    for (k, v) in &fresh {
        spitz.put(k, v).unwrap();
    }
    println!(
        "write | Spitz                : {:8.1} kops/s",
        kops(fresh.len(), t.elapsed())
    );

    let t = Instant::now();
    for (k, v) in &fresh {
        non_intrusive.put(k, v);
    }
    println!(
        "write | non-intrusive        : {:8.1} kops/s",
        kops(fresh.len(), t.elapsed())
    );

    println!("\nexpected shape (paper): KVS fastest; Spitz close behind; verification costs");
    println!("Spitz ~2x, the baseline orders of magnitude; the non-intrusive design pays for");
    println!("every cross-system hop.");
}
