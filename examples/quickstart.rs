//! Quickstart: write data, read it back, and verify the results against the
//! database digest — the core loop of a verifiable database.
//!
//! Run with: `cargo run --example quickstart`

use spitz::{SpitzDb, Verifier};

fn main() {
    // A Spitz instance with the paper's default configuration: POS-Tree
    // ledger index, MVCC + OCC concurrency control.
    let db = SpitzDb::in_memory();

    // Writes are sealed into ledger blocks; every write advances the digest.
    db.put(b"account/alice", b"balance=100").unwrap();
    db.put(b"account/bob", b"balance=250").unwrap();
    db.put_batch(vec![
        (b"account/carol".to_vec(), b"balance=75".to_vec()),
        (b"account/dave".to_vec(), b"balance=310".to_vec()),
    ])
    .unwrap();

    // A verifying client pins the digest it trusts.
    let mut client = Verifier::new();
    client.observe_digest(db.digest());
    println!(
        "pinned digest: block #{} index root {}",
        db.digest().block_height,
        db.digest().index_root.short()
    );

    // Unverified fast path.
    let value = db.get(b"account/alice").unwrap();
    println!(
        "alice (unverified): {:?}",
        String::from_utf8_lossy(&value.clone().unwrap())
    );

    // Verified read: the proof is recomputed against the pinned digest.
    let (value, proof) = db.get_verified(b"account/bob").unwrap();
    let ok = client.verify_read(b"account/bob", value.as_deref(), &proof);
    println!(
        "bob (verified): {:?} — proof {} nodes, verification {}",
        String::from_utf8_lossy(value.as_deref().unwrap()),
        proof.index_proof.len(),
        if ok { "PASSED" } else { "FAILED" }
    );
    assert!(ok);

    // Verified range scan: one combined proof for the whole result.
    let (entries, range_proof) = db.range_verified(b"account/a", b"account/z").unwrap();
    let ok = client.verify_range(&entries, &range_proof);
    println!(
        "range scan returned {} accounts, verification {}",
        entries.len(),
        if ok { "PASSED" } else { "FAILED" }
    );
    assert!(ok);

    // Tampering is detected: a forged value cannot pass verification.
    let forged_ok = client.verify_read(b"account/bob", Some(b"balance=999999"), &proof);
    println!("forged balance accepted? {forged_ok}");
    assert!(!forged_ok);

    // Snapshot read path: pin once, then read repeatedly against that pin
    // while writers move the live database forward.
    let snapshot = db.snapshot().unwrap();
    db.put(b"account/alice", b"balance=0").unwrap();
    let (value, proof) = snapshot.get_verified(b"account/alice");
    assert!(client.verify_read(b"account/alice", value.as_deref(), &proof));
    println!(
        "snapshot still proves alice = {:?} at block #{} (live db moved on)",
        String::from_utf8_lossy(value.as_deref().unwrap()),
        snapshot.digest().block_height,
    );

    // The ledger's whole history can be audited.
    assert_eq!(db.ledger().audit_chain(), None);
    println!(
        "ledger audit: chain of {} blocks is consistent",
        db.digest().block_height + 1
    );
}
