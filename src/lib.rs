//! Spitz: a verifiable database system — facade crate.
//!
//! This crate re-exports the public API of the workspace so applications can
//! depend on a single crate:
//!
//! * [`crypto`] — SHA-256, hashes, Merkle trees ([`spitz_crypto`]).
//! * [`storage`] — the ForkBase-like deduplicating store ([`spitz_storage`]).
//! * [`index`] — SIRI indexes, B+-tree, inverted indexes ([`spitz_index`]).
//! * [`ledger`] — the tamper-evident unified ledger ([`spitz_ledger`]).
//! * [`txn`] — timestamps, MVCC and concurrency control ([`spitz_txn`]).
//! * [`obs`] — the telemetry layer: metrics registry, latency histograms
//!   and text/JSON exposition ([`spitz_obs`]).
//! * [`core`] — the Spitz database itself ([`spitz_core`]).
//! * [`server`] — the served front-end: wire protocol, threaded TCP
//!   server, and the proof-checking light client ([`spitz_server`]).
//! * [`baseline`] — the systems Spitz is compared against
//!   ([`spitz_baseline`]).
//!
//! The most common entry points are re-exported at the top level:
//! [`SpitzDb`], [`Verifier`], [`Snapshot`], [`Schema`], [`Record`] and
//! [`Value`].
//!
//! ```
//! use spitz::{SpitzDb, Verifier};
//!
//! let db = SpitzDb::in_memory();
//! db.put(b"invoice/2026-001", b"amount=1250;status=paid").unwrap();
//!
//! let mut client = Verifier::new();
//! client.observe_digest(db.digest());
//! let (value, proof) = db.get_verified(b"invoice/2026-001").unwrap();
//! assert!(client.verify_read(b"invoice/2026-001", value.as_deref(), &proof));
//!
//! // Pin once, verify many: the snapshot read path.
//! let snapshot = db.snapshot().unwrap();
//! let (value, proof) = snapshot.get_verified(b"invoice/2026-001");
//! assert!(client.verify_read(b"invoice/2026-001", value.as_deref(), &proof));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use spitz_baseline as baseline;
pub use spitz_core as core;
pub use spitz_crypto as crypto;
pub use spitz_index as index;
pub use spitz_ledger as ledger;
pub use spitz_obs as obs;
pub use spitz_server as server;
pub use spitz_storage as storage;
pub use spitz_txn as txn;

pub use spitz_core::db::{SpitzConfig, SpitzDb};
pub use spitz_core::proof::{ShardedProof, ShardedRangeProof, Verifier};
pub use spitz_core::schema::{ColumnType, Record, Schema, Value};
pub use spitz_core::sharded::{ShardedConfig, ShardedDb, ShardedDigest};
pub use spitz_core::snapshot::{ShardedSnapshot, Snapshot};
pub use spitz_core::ClientVerifier;
pub use spitz_crypto::Hash;
pub use spitz_ledger::{CommitPipeline, Digest, DurabilityPolicy, Ledger};
pub use spitz_obs::{TelemetryHandle, TelemetrySnapshot};
pub use spitz_server::{LightClient, ServerConfig, SpitzClient, SpitzServer};
pub use spitz_storage::{ChunkStore, DurableChunkStore, DurableConfig};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reexports_are_usable() {
        let db = SpitzDb::in_memory();
        db.put(b"k", b"v").unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"v".to_vec()));
        let digest: Digest = db.digest();
        assert_ne!(digest.index_root, Hash::ZERO);
    }
}
