//! The QLDB-like commercial baseline.
//!
//! Section 6.1: "The newly inserted or modified records are collected into
//! blocks and appended to a ledger implemented by a Merkle tree. The ledger
//! is used for verification purposes, shadowing the nodes of a typical
//! B+-tree for query key searching. Furthermore, the appended blocks are
//! materialized to indexed views for fast query processing."
//!
//! The decisive difference from Spitz (Section 6.2.1/6.2.2): the ledger and
//! the query index are *separate* structures. A read is fast (B+-tree view),
//! but a verified read must go back to the ledger and fetch the proof for
//! each record individually: locate the record's block, re-derive the
//! record-level Merkle path inside that block, and combine it with the
//! journal-level path. Range queries cannot batch this work — each resultant
//! record pays the per-record proof cost, which is why the verified-range
//! gap in Figure 7 is so much larger than the point-read gap in Figure 6(a).

use parking_lot::RwLock;
use spitz_crypto::{sha256, AuditProof, Hash, MerkleTree};
use spitz_index::BPlusTree;
use spitz_ledger::{Journal, JournalProof};

/// Number of records collected into one ledger block.
const BLOCK_CAPACITY: usize = 256;

/// Location of a record inside the baseline's ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RecordLocation {
    block: usize,
    offset: usize,
}

/// A sealed baseline block: the raw records and their Merkle root.
struct SealedBlock {
    /// Encoded `key || 0x00 || value` leaves.
    leaves: Vec<Vec<u8>>,
    root: Hash,
}

/// Proof returned by the baseline for one record.
#[derive(Debug, Clone)]
pub struct QldbProof {
    /// Merkle path of the record inside its block.
    pub record_proof: AuditProof,
    /// Root of the record's block.
    pub block_root: Hash,
    /// Journal-level inclusion proof of the block.
    pub journal_proof: JournalProof,
    /// Journal root (the baseline's digest).
    pub journal_root: Hash,
}

impl QldbProof {
    /// Client-side verification of a single record proof.
    pub fn verify(&self, key: &[u8], value: &[u8]) -> bool {
        let leaf = encode_leaf(key, value);
        self.record_proof.verify(self.block_root, &leaf)
            && self
                .journal_proof
                .verify(self.journal_root, self.block_root)
    }
}

fn encode_leaf(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.len() + 1 + value.len());
    out.extend_from_slice(key);
    out.push(0x00);
    out.extend_from_slice(value);
    out
}

struct QldbInner {
    /// Materialized indexed view: key → (value, location of latest version).
    view: BPlusTree<(Vec<u8>, RecordLocation)>,
    /// History view: one entry per record version (a second indexed view the
    /// baseline must maintain on every write).
    history: BPlusTree<RecordLocation>,
    /// Open block accumulating new records.
    open_leaves: Vec<Vec<u8>>,
    /// Sealed blocks.
    blocks: Vec<SealedBlock>,
    /// Journal over sealed block roots.
    journal: Journal,
    /// Monotonic sequence number for history-view keys.
    sequence: u64,
}

/// The QLDB-like baseline system.
pub struct QldbBaseline {
    inner: RwLock<QldbInner>,
}

impl Default for QldbBaseline {
    fn default() -> Self {
        Self::new()
    }
}

impl QldbBaseline {
    /// Create an empty instance.
    pub fn new() -> Self {
        QldbBaseline {
            inner: RwLock::new(QldbInner {
                view: BPlusTree::new(),
                history: BPlusTree::new(),
                open_leaves: Vec::new(),
                blocks: Vec::new(),
                journal: Journal::new(),
                sequence: 0,
            }),
        }
    }

    /// Write a key/value pair: append the record to the open ledger block
    /// and refresh both materialized views.
    pub fn put(&self, key: &[u8], value: &[u8]) {
        let mut inner = self.inner.write();
        let leaf = encode_leaf(key, value);
        inner.open_leaves.push(leaf);
        let location = RecordLocation {
            block: inner.blocks.len(),
            offset: inner.open_leaves.len() - 1,
        };

        // Maintain the indexed views (the cost the paper attributes to the
        // baseline's writes).
        inner.view.insert(key, (value.to_vec(), location));
        let seq = inner.sequence;
        inner.sequence += 1;
        let mut history_key = key.to_vec();
        history_key.push(0x00);
        history_key.extend_from_slice(&seq.to_be_bytes());
        inner.history.insert(history_key, location);

        if inner.open_leaves.len() >= BLOCK_CAPACITY {
            Self::seal_block(&mut inner);
        }
    }

    fn seal_block(inner: &mut QldbInner) {
        if inner.open_leaves.is_empty() {
            return;
        }
        let leaves = std::mem::take(&mut inner.open_leaves);
        let tree = MerkleTree::from_leaves(leaves.iter().map(|l| l.as_slice()));
        let root = tree.root();
        inner.journal.append(root);
        inner.blocks.push(SealedBlock { leaves, root });
    }

    /// Force the open block to be sealed (e.g. at the end of a load phase),
    /// so that every record has a ledger proof available.
    pub fn seal(&self) {
        Self::seal_block(&mut self.inner.write());
    }

    /// Fast, unverified point read from the materialized view.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.inner.read().view.get(key).map(|(v, _)| v.clone())
    }

    /// Unverified range read from the materialized view.
    pub fn range(&self, start: &[u8], end: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.inner
            .read()
            .view
            .range(start, end)
            .into_iter()
            .map(|(k, (v, _))| (k, v))
            .collect()
    }

    /// Verified point read: the value from the view plus a proof retrieved
    /// from the ledger. The proof requires re-deriving the record's Merkle
    /// path within its block — the per-record cost that separates the
    /// baseline from Spitz under verification.
    pub fn get_verified(&self, key: &[u8]) -> Option<(Vec<u8>, QldbProof)> {
        let inner = self.inner.read();
        let (value, location) = inner.view.get(key).cloned()?;
        let proof = Self::prove_location(&inner, location)?;
        Some((value, proof))
    }

    /// Verified range read: the baseline has no way to batch proof
    /// retrieval, so it fetches one ledger proof per resultant record.
    pub fn range_verified(&self, start: &[u8], end: &[u8]) -> Vec<(Vec<u8>, Vec<u8>, QldbProof)> {
        let inner = self.inner.read();
        inner
            .view
            .range(start, end)
            .into_iter()
            .filter_map(|(k, (v, location))| {
                Self::prove_location(&inner, location).map(|proof| (k, v, proof))
            })
            .collect()
    }

    fn prove_location(inner: &QldbInner, location: RecordLocation) -> Option<QldbProof> {
        let block = inner.blocks.get(location.block)?;
        // Rebuild the block's Merkle tree to derive the record path — the
        // baseline stores only the block root in its journal.
        let tree = MerkleTree::from_leaves(block.leaves.iter().map(|l| l.as_slice()));
        let record_proof = tree.audit_proof(location.offset)?;
        let journal_proof = inner.journal.prove(location.block as u64)?;
        Some(QldbProof {
            record_proof,
            block_root: block.root,
            journal_proof,
            journal_root: inner.journal.root(),
        })
    }

    /// Number of keys in the materialized view.
    pub fn len(&self) -> usize {
        self.inner.read().view.len()
    }

    /// True when no keys have been written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The baseline's digest: the journal root.
    pub fn digest(&self) -> Hash {
        let inner = self.inner.read();
        if inner.open_leaves.is_empty() {
            inner.journal.root()
        } else {
            // Include the open block so the digest covers every write.
            let tree = MerkleTree::from_leaves(inner.open_leaves.iter().map(|l| l.as_slice()));
            sha256(&[inner.journal.root().into_bytes(), tree.root().into_bytes()].concat())
        }
    }

    /// Number of sealed ledger blocks.
    pub fn block_count(&self) -> usize {
        self.inner.read().blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded(n: u32) -> QldbBaseline {
        let db = QldbBaseline::new();
        for i in 0..n {
            db.put(
                format!("key-{i:06}").as_bytes(),
                format!("value-{i}").as_bytes(),
            );
        }
        db.seal();
        db
    }

    #[test]
    fn put_get_range() {
        let db = loaded(1000);
        assert_eq!(db.len(), 1000);
        assert_eq!(db.get(b"key-000123"), Some(b"value-123".to_vec()));
        assert_eq!(db.get(b"missing"), None);
        assert_eq!(db.range(b"key-000100", b"key-000200").len(), 100);
        assert!(db.block_count() >= 3);
    }

    #[test]
    fn verified_reads_carry_valid_proofs() {
        let db = loaded(600);
        let (value, proof) = db.get_verified(b"key-000432").unwrap();
        assert_eq!(value, b"value-432".to_vec());
        assert!(proof.verify(b"key-000432", &value));
        assert!(!proof.verify(b"key-000432", b"forged"));
        assert!(!proof.verify(b"key-000999", &value));
        assert!(db.get_verified(b"missing").is_none());
    }

    #[test]
    fn verified_range_produces_one_proof_per_record() {
        let db = loaded(600);
        let results = db.range_verified(b"key-000100", b"key-000120");
        assert_eq!(results.len(), 20);
        for (k, v, proof) in &results {
            assert!(proof.verify(k, v), "{}", String::from_utf8_lossy(k));
        }
    }

    #[test]
    fn updates_supersede_in_view_but_history_is_kept_in_ledger() {
        let db = QldbBaseline::new();
        db.put(b"acct", b"100");
        db.put(b"acct", b"250");
        db.seal();
        assert_eq!(db.get(b"acct"), Some(b"250".to_vec()));
        let (value, proof) = db.get_verified(b"acct").unwrap();
        assert_eq!(value, b"250");
        assert!(proof.verify(b"acct", b"250"));
        // The old version is still part of the sealed block (immutability of
        // the ledger), reflected by a digest that depends on both writes.
        let digest_both = db.digest();
        let fresh = QldbBaseline::new();
        fresh.put(b"acct", b"250");
        fresh.seal();
        assert_ne!(digest_both, fresh.digest());
    }

    #[test]
    fn digest_covers_unsealed_writes() {
        let db = QldbBaseline::new();
        db.put(b"a", b"1");
        let d1 = db.digest();
        db.put(b"b", b"2");
        let d2 = db.digest();
        assert_ne!(d1, d2);
    }
}
