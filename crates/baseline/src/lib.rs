//! Baseline systems from the Spitz evaluation (Section 6.1).
//!
//! Three comparison points are implemented:
//!
//! * [`kvs::ImmutableKvs`] — "an immutable key-value store using ForkBase.
//!   It is the same as Spitz in terms of indexing, except that it does not
//!   maintain a ledger or provide verifiability." The upper bound of Figures
//!   6 and 7.
//! * [`qldb::QldbBaseline`] — "a baseline system to emulate a commercial
//!   product based on the features described online": newly inserted or
//!   modified records are collected into blocks appended to a Merkle-tree
//!   ledger, the ledger shadows a B+-tree for key search, and blocks are
//!   materialized into indexed views for fast queries. Proofs must be
//!   retrieved from the ledger separately, record by record.
//! * [`nonintrusive::NonIntrusiveVdb`] — the non-intrusive composition of
//!   Figure 3: an unmodified underlying database (the immutable KVS) plus a
//!   separate ledger database (a full Spitz instance used only as a ledger),
//!   kept consistent by dual writes. Every verified operation crosses the
//!   boundary between the two systems, which is the overhead Figure 8
//!   measures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kvs;
pub mod nonintrusive;
pub mod qldb;

pub use kvs::ImmutableKvs;
pub use nonintrusive::NonIntrusiveVdb;
pub use qldb::{QldbBaseline, QldbProof};
