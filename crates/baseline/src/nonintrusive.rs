//! The non-intrusive VDB composition (Figure 3 of the paper).
//!
//! "We set up an immutable key-value store using ForkBase as the underlying
//! system, which interacts with the ledger … the submitted data are
//! committed in both the underlying and ledger database atomically … the
//! client obtains the queried results from the underlying database and the
//! proofs from the ledger as responses." (Section 6.2.3)
//!
//! Two independent systems therefore process every request: the unmodified
//! underlying database (here the [`ImmutableKvs`]) and a separate ledger
//! database (a full [`spitz_ledger::Ledger`]). Each hop between them crosses
//! a system boundary, modelled by serializing the request and response the
//! way an RPC would — the interaction cost the paper attributes to this
//! design. The simulated per-hop byte copy can be widened with
//! [`NonIntrusiveVdb::with_interaction_cost`] to model slower links.

use std::sync::Arc;

use spitz_crypto::Hash;
use spitz_ledger::{Digest, Ledger, LedgerProof, VerifiedRange};
use spitz_storage::{ChunkStore, InMemoryChunkStore};

use crate::kvs::ImmutableKvs;

/// The non-intrusive verifiable database: underlying KVS + separate ledger.
pub struct NonIntrusiveVdb {
    underlying: ImmutableKvs,
    ledger: Ledger,
    /// Extra bytes copied per cross-system interaction (simulated envelope
    /// overhead; 0 = serialization of the payload only).
    envelope_bytes: usize,
}

impl Default for NonIntrusiveVdb {
    fn default() -> Self {
        Self::new()
    }
}

impl NonIntrusiveVdb {
    /// Create an instance with the default (serialization-only) interaction
    /// cost.
    pub fn new() -> Self {
        Self::with_interaction_cost(64)
    }

    /// Create an instance with `envelope_bytes` of additional per-hop
    /// envelope copying (models heavier RPC stacks).
    pub fn with_interaction_cost(envelope_bytes: usize) -> Self {
        Self::with_stores(
            InMemoryChunkStore::shared(),
            InMemoryChunkStore::shared(),
            envelope_bytes,
        )
    }

    /// Create an instance over explicit chunk stores for the two composed
    /// systems (e.g. durable stores for an on-disk deployment). The two
    /// systems are independent products in this architecture, so they do
    /// not share a store.
    pub fn with_stores(
        underlying_store: Arc<dyn ChunkStore>,
        ledger_store: Arc<dyn ChunkStore>,
        envelope_bytes: usize,
    ) -> Self {
        NonIntrusiveVdb {
            underlying: ImmutableKvs::with_store(underlying_store),
            ledger: Ledger::new(ledger_store),
            envelope_bytes,
        }
    }

    /// Simulate one cross-system interaction carrying `payload`: the request
    /// and response are serialized into fresh buffers (as an RPC marshaller
    /// would) and a digest of the envelope is computed (checksumming).
    fn cross_system_hop(&self, payload: &[u8]) -> Hash {
        let mut envelope = Vec::with_capacity(payload.len() + self.envelope_bytes + 16);
        envelope.extend_from_slice(b"rpc-envelope:");
        envelope.extend_from_slice(&(payload.len() as u64).to_be_bytes());
        envelope.extend_from_slice(payload);
        envelope.resize(envelope.len() + self.envelope_bytes, 0xEE);
        spitz_crypto::sha256(&envelope)
    }

    /// Write a key/value pair: committed in both the underlying database and
    /// the ledger database ("atomically" — here sequentially under the
    /// caller's control, with a hop to each system).
    pub fn put(&self, key: &[u8], value: &[u8]) -> Digest {
        let mut payload = key.to_vec();
        payload.extend_from_slice(value);
        // Hop 1: underlying database.
        self.cross_system_hop(&payload);
        self.underlying.put(key, value);
        // Hop 2: ledger database.
        self.cross_system_hop(&payload);
        self.ledger
            .append_block(vec![(key.to_vec(), value.to_vec())], "PUT")
    }

    /// Unverified read: only the underlying database is consulted, but the
    /// request still crosses into it.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.cross_system_hop(key);
        self.underlying.get(key)
    }

    /// Verified read: fetch the value from the underlying database, then the
    /// proof from the ledger database (a second cross-system interaction).
    pub fn get_verified(&self, key: &[u8]) -> (Option<Vec<u8>>, LedgerProof) {
        self.cross_system_hop(key);
        let value = self.underlying.get(key);
        self.cross_system_hop(key);
        let (_, proof) = self.ledger.get_with_proof(key);
        (value, proof)
    }

    /// Unverified range read from the underlying database.
    pub fn range(&self, start: &[u8], end: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.cross_system_hop(start);
        self.underlying.range(start, end)
    }

    /// Verified range read: results from the underlying database, proofs
    /// from the ledger database.
    pub fn range_verified(&self, start: &[u8], end: &[u8]) -> VerifiedRange {
        self.cross_system_hop(start);
        let entries = self.underlying.range(start, end);
        // The whole result set is shipped to the ledger database so it can
        // locate the proofs — the second, payload-sized hop.
        let shipped: Vec<u8> = entries
            .iter()
            .flat_map(|(k, v)| {
                let mut row = k.clone();
                row.extend_from_slice(v);
                row
            })
            .collect();
        self.cross_system_hop(&shipped);
        let (_, proof) = self.ledger.range_with_proof(start, end);
        (entries, proof)
    }

    /// Number of keys in the underlying database.
    pub fn len(&self) -> usize {
        self.underlying.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.underlying.is_empty()
    }

    /// The ledger database's digest.
    pub fn digest(&self) -> Digest {
        self.ledger.digest()
    }

    /// Check that the two systems agree on a key (a consistency audit the
    /// operator of a non-intrusive deployment has to run; Spitz gets this
    /// for free by construction).
    pub fn consistent(&self, key: &[u8]) -> bool {
        self.underlying.get(key) == self.ledger.get(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded(n: u32) -> NonIntrusiveVdb {
        let db = NonIntrusiveVdb::new();
        for i in 0..n {
            db.put(
                format!("key-{i:05}").as_bytes(),
                format!("value-{i}").as_bytes(),
            );
        }
        db
    }

    #[test]
    fn dual_commit_keeps_both_systems_consistent() {
        let db = loaded(200);
        assert_eq!(db.len(), 200);
        for i in (0..200u32).step_by(17) {
            let key = format!("key-{i:05}");
            assert!(db.consistent(key.as_bytes()), "{key}");
        }
        assert_eq!(db.get(b"key-00042"), Some(b"value-42".to_vec()));
        assert_eq!(db.get(b"missing"), None);
    }

    #[test]
    fn verified_reads_combine_value_and_ledger_proof() {
        let db = loaded(100);
        let (value, proof) = db.get_verified(b"key-00033");
        assert_eq!(value, Some(b"value-33".to_vec()));
        assert!(proof.verify(b"key-00033", value.as_deref()));
        assert!(!proof.verify(b"key-00033", Some(b"forged")));
    }

    #[test]
    fn verified_ranges_work_across_the_two_systems() {
        let db = loaded(300);
        let (entries, proof) = db.range_verified(b"key-00100", b"key-00120");
        assert_eq!(entries.len(), 20);
        assert!(proof.verify(&entries));
        let digest = db.digest();
        assert_eq!(digest.block_height, 299);
    }

    #[test]
    fn interaction_cost_is_configurable() {
        let cheap = NonIntrusiveVdb::with_interaction_cost(0);
        let pricey = NonIntrusiveVdb::with_interaction_cost(4096);
        cheap.put(b"k", b"v");
        pricey.put(b"k", b"v");
        assert_eq!(cheap.get(b"k"), pricey.get(b"k"));
    }
}
