//! The immutable key-value store comparison point.
//!
//! "For comparison purpose, we also build an immutable key-value store (KVS)
//! using ForkBase. It is the same as Spitz in terms of indexing, except that
//! it does not maintain a ledger or provide verifiability. Therefore, by
//! comparing the two systems, we can focus on the maintenance and
//! verification cost of the ledger storage implemented in Spitz."
//! (Section 6.1)

use std::sync::Arc;

use parking_lot::RwLock;
use spitz_index::siri::SiriIndex;
use spitz_index::PosTree;
use spitz_storage::{ChunkStore, InMemoryChunkStore, StoreStats};

/// An immutable key-value store: the same POS-Tree indexing as Spitz, no
/// ledger, no proofs.
pub struct ImmutableKvs {
    store: Arc<dyn ChunkStore>,
    index: RwLock<PosTree>,
}

impl Default for ImmutableKvs {
    fn default() -> Self {
        Self::new()
    }
}

impl ImmutableKvs {
    /// Create an in-memory instance.
    pub fn new() -> Self {
        Self::with_store(InMemoryChunkStore::shared())
    }

    /// Create an instance over any chunk store (e.g. a
    /// [`spitz_storage::DurableChunkStore`] for an on-disk KVS).
    pub fn with_store(store: Arc<dyn ChunkStore>) -> Self {
        let index = RwLock::new(PosTree::new(Arc::clone(&store)));
        ImmutableKvs { store, index }
    }

    /// Write a key/value pair (a new immutable version of the index).
    pub fn put(&self, key: &[u8], value: &[u8]) {
        self.index.write().insert(key.to_vec(), value.to_vec());
    }

    /// Point read.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.index.read().get(key)
    }

    /// Range read over `start <= key < end`.
    pub fn range(&self, start: &[u8], end: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.index.read().range(start, end)
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.index.read().len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Storage statistics of the backing chunk store.
    pub fn storage_stats(&self) -> StoreStats {
        self.store.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_range() {
        let kvs = ImmutableKvs::new();
        for i in 0..500u32 {
            kvs.put(format!("key-{i:05}").as_bytes(), format!("v{i}").as_bytes());
        }
        assert_eq!(kvs.len(), 500);
        assert_eq!(kvs.get(b"key-00123"), Some(b"v123".to_vec()));
        assert_eq!(kvs.get(b"missing"), None);
        let window = kvs.range(b"key-00100", b"key-00110");
        assert_eq!(window.len(), 10);
        assert!(window.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn overwrites_create_new_versions_not_in_place_mutation() {
        let kvs = ImmutableKvs::new();
        kvs.put(b"k", b"v1");
        let bytes_before = kvs.storage_stats().physical_bytes;
        kvs.put(b"k", b"v2");
        assert_eq!(kvs.get(b"k"), Some(b"v2".to_vec()));
        // The old version's chunks are still retained (immutability).
        assert!(kvs.storage_stats().physical_bytes > bytes_before);
        assert!(!kvs.is_empty());
    }
}
