//! Content-defined chunking.
//!
//! ForkBase deduplicates data by splitting values into chunks at positions
//! determined by the *content* (a rolling hash hitting a boundary pattern)
//! rather than at fixed offsets. An insertion or edit near the start of a
//! page therefore only changes the chunks around the edit; all later chunks
//! keep their boundaries and hashes and are deduplicated. The same mechanism
//! underlies the Pattern-Oriented-Split Tree in `spitz-index`.
//!
//! The rolling hash here is a Buzhash-style byte-table hash over a sliding
//! window. It is not cryptographic — it only chooses boundaries; integrity is
//! provided by the SHA-256 content addresses of the resulting chunks.

use crate::error::StorageError;
use crate::Result;

/// Window size for the rolling hash, in bytes.
const WINDOW_SIZE: usize = 48;

/// Configuration for the content-defined chunker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkerConfig {
    /// Minimum chunk size; boundaries are not considered before this many
    /// bytes have been consumed.
    pub min_size: usize,
    /// Average target chunk size. Must be a power of two; the boundary mask
    /// is `avg_size - 1`.
    pub avg_size: usize,
    /// Maximum chunk size; a boundary is forced at this length.
    pub max_size: usize,
}

impl Default for ChunkerConfig {
    /// Defaults tuned for the paper's workloads: 16 KB pages with small
    /// per-version edits, and 20-byte cell values that fit in one chunk.
    fn default() -> Self {
        ChunkerConfig {
            min_size: 256,
            avg_size: 1024,
            max_size: 4096,
        }
    }
}

impl ChunkerConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.min_size == 0 {
            return Err(StorageError::InvalidConfig("min_size must be > 0".into()));
        }
        if !self.avg_size.is_power_of_two() {
            return Err(StorageError::InvalidConfig(
                "avg_size must be a power of two".into(),
            ));
        }
        if self.min_size > self.avg_size || self.avg_size > self.max_size {
            return Err(StorageError::InvalidConfig(
                "require min_size <= avg_size <= max_size".into(),
            ));
        }
        Ok(())
    }

    /// The bit mask used to detect chunk boundaries.
    fn boundary_mask(&self) -> u64 {
        (self.avg_size as u64) - 1
    }
}

/// Content-defined chunker.
#[derive(Debug, Clone)]
pub struct Chunker {
    config: ChunkerConfig,
    /// Byte-to-random-u64 substitution table for the rolling hash.
    table: [u64; 256],
}

impl Chunker {
    /// Create a chunker with the given configuration.
    pub fn new(config: ChunkerConfig) -> Result<Self> {
        config.validate()?;
        Ok(Chunker {
            config,
            table: build_table(),
        })
    }

    /// Create a chunker with [`ChunkerConfig::default`].
    pub fn with_defaults() -> Self {
        Chunker::new(ChunkerConfig::default()).expect("default config is valid")
    }

    /// The configuration this chunker was built with.
    pub fn config(&self) -> &ChunkerConfig {
        &self.config
    }

    /// Split `data` into content-defined chunks. The concatenation of the
    /// returned slices always equals the input.
    pub fn split<'a>(&self, data: &'a [u8]) -> Vec<&'a [u8]> {
        let mut chunks = Vec::new();
        let mut start = 0;
        while start < data.len() {
            let end = self.find_boundary(&data[start..]);
            chunks.push(&data[start..start + end]);
            start += end;
        }
        chunks
    }

    /// Return the cut points (exclusive end offsets) for `data`.
    pub fn cut_points(&self, data: &[u8]) -> Vec<usize> {
        let mut cuts = Vec::new();
        let mut start = 0;
        while start < data.len() {
            let end = self.find_boundary(&data[start..]);
            start += end;
            cuts.push(start);
        }
        cuts
    }

    /// Length of the first chunk of `data` (at least 1 for non-empty input).
    fn find_boundary(&self, data: &[u8]) -> usize {
        let cfg = &self.config;
        if data.len() <= cfg.min_size {
            return data.len();
        }
        let mask = cfg.boundary_mask();
        let limit = data.len().min(cfg.max_size);

        let mut hash: u64 = 0;
        // Warm the window over the bytes just before the earliest possible
        // boundary so the decision at `min_size` already sees a full window.
        let warm_start = cfg.min_size.saturating_sub(WINDOW_SIZE);
        for &b in &data[warm_start..cfg.min_size] {
            hash = hash.rotate_left(1) ^ self.table[b as usize];
        }

        for i in cfg.min_size..limit {
            // Slide: add the new byte, then remove the byte that has left the
            // window (its table value has accumulated WINDOW_SIZE rotations).
            hash = hash.rotate_left(1) ^ self.table[data[i] as usize];
            if i >= WINDOW_SIZE {
                let out = data[i - WINDOW_SIZE];
                hash ^= self.table[out as usize].rotate_left((WINDOW_SIZE % 64) as u32);
            }
            if hash & mask == mask {
                return i + 1;
            }
        }
        limit
    }
}

/// Deterministic substitution table derived from SHA-256, so every chunker
/// instance (and every run) picks identical boundaries.
fn build_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    for (i, entry) in table.iter_mut().enumerate() {
        let digest = spitz_crypto::sha256(&[i as u8, 0x5a, 0x13, 0x37]);
        *entry = digest.prefix_u64();
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    fn random_bytes(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = vec![0u8; len];
        rng.fill_bytes(&mut data);
        data
    }

    #[test]
    fn chunks_reassemble_to_input() {
        let chunker = Chunker::with_defaults();
        for len in [0usize, 1, 100, 255, 256, 257, 4096, 16 * 1024, 100_000] {
            let data = random_bytes(len, len as u64);
            let chunks = chunker.split(&data);
            let rejoined: Vec<u8> = chunks.concat();
            assert_eq!(rejoined, data, "len {len}");
        }
    }

    #[test]
    fn chunk_sizes_respect_bounds() {
        let chunker = Chunker::with_defaults();
        let data = random_bytes(200_000, 42);
        let chunks = chunker.split(&data);
        assert!(chunks.len() > 10);
        for (i, c) in chunks.iter().enumerate() {
            assert!(c.len() <= chunker.config().max_size, "chunk {i} too big");
            if i + 1 < chunks.len() {
                assert!(c.len() >= chunker.config().min_size, "chunk {i} too small");
            }
        }
    }

    #[test]
    fn splitting_is_deterministic() {
        let data = random_bytes(50_000, 7);
        let a = Chunker::with_defaults().cut_points(&data);
        let b = Chunker::with_defaults().cut_points(&data);
        assert_eq!(a, b);
    }

    #[test]
    fn local_edit_preserves_most_chunks() {
        // This is the property Figure 1 depends on: editing a small region of
        // a page must leave the majority of chunk hashes unchanged.
        let chunker = Chunker::with_defaults();
        let original = random_bytes(16 * 1024, 99);
        let mut edited = original.clone();
        let mut rng = StdRng::seed_from_u64(123);
        let pos = rng.gen_range(0..edited.len() - 64);
        for b in &mut edited[pos..pos + 64] {
            *b = rng.gen();
        }

        let hashes = |data: &[u8]| -> Vec<spitz_crypto::Hash> {
            chunker
                .split(data)
                .iter()
                .map(|c| spitz_crypto::sha256(c))
                .collect()
        };
        let orig_hashes = hashes(&original);
        let edit_hashes = hashes(&edited);
        let orig_set: std::collections::HashSet<_> = orig_hashes.iter().collect();
        let shared = edit_hashes.iter().filter(|h| orig_set.contains(h)).count();
        assert!(
            shared * 2 >= edit_hashes.len(),
            "expected at least half the chunks shared, got {shared}/{}",
            edit_hashes.len()
        );
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(Chunker::new(ChunkerConfig {
            min_size: 0,
            avg_size: 1024,
            max_size: 4096
        })
        .is_err());
        assert!(Chunker::new(ChunkerConfig {
            min_size: 256,
            avg_size: 1000, // not a power of two
            max_size: 4096
        })
        .is_err());
        assert!(Chunker::new(ChunkerConfig {
            min_size: 2048,
            avg_size: 1024,
            max_size: 4096
        })
        .is_err());
    }

    #[test]
    fn small_values_are_single_chunks() {
        let chunker = Chunker::with_defaults();
        let data = random_bytes(20, 1);
        assert_eq!(chunker.split(&data).len(), 1);
        assert!(chunker.split(&[]).is_empty());
    }
}
