//! The chunk store: content-addressed, deduplicating physical storage.
//!
//! [`ChunkStore`] is the trait the rest of the system writes through;
//! [`InMemoryChunkStore`] is the default implementation used by the
//! evaluation (the paper's experiments also run against an in-process
//! ForkBase instance). The store deduplicates by content address and keeps
//! [`StoreStats`] that distinguish *logical* bytes (what callers wrote) from
//! *physical* bytes (what is actually retained) — the quantity plotted in
//! Figure 1.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use spitz_crypto::Hash;

use crate::chunk::{Chunk, ChunkKind};
use crate::error::StorageError;
use crate::Result;

/// The operational health of a chunk store, surfaced so serving layers can
/// route around sick storage instead of discovering failures one write at a
/// time.
///
/// Transitions are one-way within a process lifetime (`Healthy → Degraded →
/// ReadOnly`); reopening the store after the underlying condition is fixed
/// resets it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Fully operational.
    #[default]
    Healthy,
    /// Still writable, but something needs attention: transient I/O retries
    /// were exhausted, or a scrub quarantined a corrupt segment (with all
    /// live chunks salvaged).
    Degraded,
    /// Writes are rejected with [`StorageError::ReadOnly`]; verified reads
    /// keep serving. Entered on `ENOSPC`, fsync failure, torn appends whose
    /// tail could not be restored, or corruption that salvage could not
    /// fully repair.
    ReadOnly,
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthState::Healthy => write!(f, "healthy"),
            HealthState::Degraded => write!(f, "degraded"),
            HealthState::ReadOnly => write!(f, "read-only"),
        }
    }
}

/// Aggregate statistics maintained by a chunk store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of distinct chunks physically retained.
    pub chunk_count: u64,
    /// Bytes physically retained (sum of [`Chunk::storage_size`] over
    /// distinct chunks).
    pub physical_bytes: u64,
    /// Bytes logically written (every `put`, including duplicates).
    pub logical_bytes: u64,
    /// Number of `put` calls that were absorbed by deduplication.
    pub dedup_hits: u64,
    /// Number of `get` calls served.
    pub reads: u64,
    /// Bytes occupied on the backing device (segment files for a durable
    /// store). For an in-memory store this equals `physical_bytes`.
    pub disk_bytes: u64,
    /// Bytes reachable from the named roots, as measured by the most recent
    /// mark-sweep pass. Zero until a compaction has run; an in-memory store
    /// reports `physical_bytes` (it never retains garbage it could drop).
    pub live_bytes: u64,
}

impl StoreStats {
    /// Fraction of logical bytes saved by deduplication, in `[0, 1]`.
    pub fn dedup_ratio(&self) -> f64 {
        if self.logical_bytes == 0 {
            0.0
        } else {
            1.0 - (self.physical_bytes as f64 / self.logical_bytes as f64)
        }
    }

    /// Bytes on the device that no root can reach: the compactor's fodder.
    /// Zero until a mark pass has established `live_bytes`.
    pub fn dead_bytes(&self) -> u64 {
        if self.live_bytes == 0 {
            0
        } else {
            self.disk_bytes.saturating_sub(self.live_bytes)
        }
    }

    /// Ratio of device bytes to live bytes (≥ 1.0 in steady state).
    ///
    /// `None` until a mark pass has measured `live_bytes`: before that the
    /// ratio has no denominator, and returning a made-up `1.0` (as this
    /// used to) hid real amplification from dashboards and triggers.
    pub fn space_amplification(&self) -> Option<f64> {
        if self.live_bytes == 0 {
            None
        } else {
            Some(self.disk_bytes as f64 / self.live_bytes as f64)
        }
    }
}

/// A content-addressed store of immutable chunks.
///
/// Implementations must be safe to share across threads; Spitz processor
/// nodes all write through the same store.
pub trait ChunkStore: Send + Sync {
    /// Store a chunk and return its content address. Storing an identical
    /// chunk twice is a no-op for physical storage.
    fn put(&self, chunk: Chunk) -> Hash;

    /// Fallible variant of [`ChunkStore::put`]: surfaces storage failures
    /// (disk full, I/O errors in a durable backend) as a [`StorageError`]
    /// instead of panicking. The default forwards to `put`, which cannot
    /// fail for in-memory stores.
    fn try_put(&self, chunk: Chunk) -> Result<Hash> {
        Ok(self.put(chunk))
    }

    /// Fetch a chunk by address.
    fn get(&self, address: &Hash) -> Result<Arc<Chunk>>;

    /// True when the store holds a chunk with this address.
    fn contains(&self, address: &Hash) -> bool;

    /// Current statistics snapshot.
    fn stats(&self) -> StoreStats;

    /// Verify the integrity of every stored chunk: its address must equal
    /// the hash of its contents. Returns the addresses that fail.
    ///
    /// This models an offline audit pass over the physical storage; for a
    /// durable store it re-reads and re-hashes every chunk on disk.
    fn audit(&self) -> Vec<Hash>;

    /// Persist a named root pointer (e.g. the ledger chain head).
    ///
    /// Root pointers are the only mutable cells in the otherwise
    /// content-addressed store — the same role git refs play over its object
    /// database. Stores without durability may keep them in memory; the
    /// default implementation discards them.
    fn set_root(&self, name: &str, hash: Hash) {
        let _ = (name, hash);
    }

    /// Fallible variant of [`ChunkStore::set_root`] (a durable backend can
    /// fail to append the root record). The default forwards to `set_root`.
    fn try_set_root(&self, name: &str, hash: Hash) -> Result<()> {
        self.set_root(name, hash);
        Ok(())
    }

    /// Read back a named root pointer. The default implementation knows no
    /// roots.
    fn root(&self, name: &str) -> Option<Hash> {
        let _ = name;
        None
    }

    /// Force everything written so far to stable storage. A no-op for
    /// stores without a durability notion (the default); a durable backend
    /// fsyncs its active log so that every chunk *and root publication*
    /// appended before this call survives a crash.
    fn sync(&self) -> Result<()> {
        Ok(())
    }

    /// Fetch a chunk and check that it has the expected kind.
    fn get_kind(&self, address: &Hash, expected: ChunkKind) -> Result<Arc<Chunk>> {
        let chunk = self.get(address)?;
        if chunk.kind() != expected {
            return Err(StorageError::WrongChunkKind {
                expected: expected.name(),
                found: chunk.kind().name(),
            });
        }
        Ok(chunk)
    }

    /// Current operational health. Stores without failure modes (the
    /// in-memory default) are always [`HealthState::Healthy`]; a durable
    /// backend reports degraded/read-only states here.
    fn health(&self) -> HealthState {
        HealthState::Healthy
    }
}

/// The default, thread-safe, in-memory chunk store.
#[derive(Debug, Default)]
pub struct InMemoryChunkStore {
    inner: RwLock<StoreInner>,
}

#[derive(Debug, Default)]
struct StoreInner {
    chunks: HashMap<Hash, Arc<Chunk>>,
    roots: HashMap<String, Hash>,
    stats: StoreStats,
}

impl InMemoryChunkStore {
    /// Create an empty store.
    pub fn new() -> Self {
        InMemoryChunkStore::default()
    }

    /// Create an empty store already wrapped in an [`Arc`], the form most
    /// components take it in.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Total number of distinct chunks of a particular kind (diagnostics).
    pub fn count_kind(&self, kind: ChunkKind) -> usize {
        self.inner
            .read()
            .chunks
            .values()
            .filter(|c| c.kind() == kind)
            .count()
    }
}

impl ChunkStore for InMemoryChunkStore {
    fn put(&self, chunk: Chunk) -> Hash {
        let address = chunk.address();
        let mut inner = self.inner.write();
        inner.stats.logical_bytes += chunk.storage_size() as u64;
        if inner.chunks.contains_key(&address) {
            inner.stats.dedup_hits += 1;
        } else {
            inner.stats.chunk_count += 1;
            inner.stats.physical_bytes += chunk.storage_size() as u64;
            inner.chunks.insert(address, Arc::new(chunk));
        }
        address
    }

    fn get(&self, address: &Hash) -> Result<Arc<Chunk>> {
        let mut inner = self.inner.write();
        inner.stats.reads += 1;
        inner
            .chunks
            .get(address)
            .cloned()
            .ok_or(StorageError::ChunkNotFound(*address))
    }

    fn contains(&self, address: &Hash) -> bool {
        self.inner.read().chunks.contains_key(address)
    }

    fn stats(&self) -> StoreStats {
        let mut stats = self.inner.read().stats;
        // Memory is the device, and nothing unreachable is ever retained
        // past a process lifetime — physical bytes are both quantities.
        stats.disk_bytes = stats.physical_bytes;
        stats.live_bytes = stats.physical_bytes;
        stats
    }

    fn audit(&self) -> Vec<Hash> {
        let inner = self.inner.read();
        inner
            .chunks
            .iter()
            .filter(|(addr, chunk)| chunk.address() != **addr)
            .map(|(addr, _)| *addr)
            .collect()
    }

    fn set_root(&self, name: &str, hash: Hash) {
        self.inner.write().roots.insert(name.to_string(), hash);
    }

    fn root(&self, name: &str) -> Option<Hash> {
        self.inner.read().roots.get(name).copied()
    }
}

/// A chunk store wrapper that verifies content addresses on every read,
/// turning silent tampering of the underlying store into an explicit
/// [`StorageError::IntegrityViolation`].
#[derive(Debug)]
pub struct VerifyingStore<S> {
    inner: S,
}

impl<S: ChunkStore> VerifyingStore<S> {
    /// Wrap a store with read-time verification.
    pub fn new(inner: S) -> Self {
        VerifyingStore { inner }
    }

    /// Access the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: ChunkStore> ChunkStore for VerifyingStore<S> {
    fn put(&self, chunk: Chunk) -> Hash {
        self.inner.put(chunk)
    }

    fn try_put(&self, chunk: Chunk) -> Result<Hash> {
        self.inner.try_put(chunk)
    }

    fn get(&self, address: &Hash) -> Result<Arc<Chunk>> {
        let chunk = self.inner.get(address)?;
        let actual = chunk.address();
        if actual != *address {
            return Err(StorageError::IntegrityViolation {
                expected: *address,
                actual,
            });
        }
        Ok(chunk)
    }

    fn contains(&self, address: &Hash) -> bool {
        self.inner.contains(address)
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn audit(&self) -> Vec<Hash> {
        self.inner.audit()
    }

    fn set_root(&self, name: &str, hash: Hash) {
        self.inner.set_root(name, hash)
    }

    fn try_set_root(&self, name: &str, hash: Hash) -> Result<()> {
        self.inner.try_set_root(name, hash)
    }

    fn root(&self, name: &str) -> Option<Hash> {
        self.inner.root(name)
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }

    fn health(&self) -> HealthState {
        self.inner.health()
    }
}

impl<S: ChunkStore + ?Sized> ChunkStore for &S {
    fn put(&self, chunk: Chunk) -> Hash {
        (**self).put(chunk)
    }

    fn try_put(&self, chunk: Chunk) -> Result<Hash> {
        (**self).try_put(chunk)
    }

    fn get(&self, address: &Hash) -> Result<Arc<Chunk>> {
        (**self).get(address)
    }

    fn contains(&self, address: &Hash) -> bool {
        (**self).contains(address)
    }

    fn stats(&self) -> StoreStats {
        (**self).stats()
    }

    fn audit(&self) -> Vec<Hash> {
        (**self).audit()
    }

    fn set_root(&self, name: &str, hash: Hash) {
        (**self).set_root(name, hash)
    }

    fn try_set_root(&self, name: &str, hash: Hash) -> Result<()> {
        (**self).try_set_root(name, hash)
    }

    fn root(&self, name: &str) -> Option<Hash> {
        (**self).root(name)
    }

    fn sync(&self) -> Result<()> {
        (**self).sync()
    }

    fn get_kind(&self, address: &Hash, expected: ChunkKind) -> Result<Arc<Chunk>> {
        (**self).get_kind(address, expected)
    }

    fn health(&self) -> HealthState {
        (**self).health()
    }
}

impl<S: ChunkStore + ?Sized> ChunkStore for Arc<S> {
    fn put(&self, chunk: Chunk) -> Hash {
        (**self).put(chunk)
    }

    fn try_put(&self, chunk: Chunk) -> Result<Hash> {
        (**self).try_put(chunk)
    }

    fn get(&self, address: &Hash) -> Result<Arc<Chunk>> {
        (**self).get(address)
    }

    fn contains(&self, address: &Hash) -> bool {
        (**self).contains(address)
    }

    fn stats(&self) -> StoreStats {
        (**self).stats()
    }

    fn audit(&self) -> Vec<Hash> {
        (**self).audit()
    }

    fn set_root(&self, name: &str, hash: Hash) {
        (**self).set_root(name, hash)
    }

    fn try_set_root(&self, name: &str, hash: Hash) -> Result<()> {
        (**self).try_set_root(name, hash)
    }

    fn root(&self, name: &str) -> Option<Hash> {
        (**self).root(name)
    }

    fn sync(&self) -> Result<()> {
        (**self).sync()
    }

    fn get_kind(&self, address: &Hash, expected: ChunkKind) -> Result<Arc<Chunk>> {
        (**self).get_kind(address, expected)
    }

    fn health(&self) -> HealthState {
        (**self).health()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(data: &[u8]) -> Chunk {
        Chunk::new(ChunkKind::Blob, data.to_vec())
    }

    #[test]
    fn put_get_roundtrip() {
        let store = InMemoryChunkStore::new();
        let addr = store.put(blob(b"hello"));
        let fetched = store.get(&addr).unwrap();
        assert_eq!(fetched.data(), b"hello");
        assert_eq!(fetched.kind(), ChunkKind::Blob);
    }

    #[test]
    fn missing_chunk_is_an_error() {
        let store = InMemoryChunkStore::new();
        let err = store.get(&spitz_crypto::sha256(b"nope")).unwrap_err();
        assert!(matches!(err, StorageError::ChunkNotFound(_)));
    }

    #[test]
    fn duplicate_puts_do_not_grow_physical_storage() {
        let store = InMemoryChunkStore::new();
        store.put(blob(b"same"));
        let s1 = store.stats();
        for _ in 0..10 {
            store.put(blob(b"same"));
        }
        let s2 = store.stats();
        assert_eq!(s1.physical_bytes, s2.physical_bytes);
        assert_eq!(s2.dedup_hits, 10);
        assert_eq!(s2.chunk_count, 1);
        assert!(s2.logical_bytes > s2.physical_bytes);
        assert!(s2.dedup_ratio() > 0.8);
    }

    #[test]
    fn distinct_chunks_accumulate() {
        let store = InMemoryChunkStore::new();
        for i in 0..100u32 {
            store.put(blob(&i.to_be_bytes()));
        }
        let stats = store.stats();
        assert_eq!(stats.chunk_count, 100);
        assert_eq!(stats.dedup_hits, 0);
        assert_eq!(stats.dedup_ratio(), 0.0);
    }

    #[test]
    fn space_accounting_fields_and_ratios() {
        let store = InMemoryChunkStore::new();
        let empty = store.stats();
        // No live-byte measurement yet: the ratio must say so, not fake 1.0.
        assert_eq!(empty.space_amplification(), None);
        assert_eq!(empty.dead_bytes(), 0);

        store.put(blob(b"hello"));
        let stats = store.stats();
        assert_eq!(stats.disk_bytes, stats.physical_bytes);
        assert_eq!(stats.live_bytes, stats.physical_bytes);
        assert_eq!(stats.space_amplification(), Some(1.0));
        assert_eq!(stats.dead_bytes(), 0);

        let skewed = StoreStats {
            disk_bytes: 300,
            live_bytes: 100,
            ..StoreStats::default()
        };
        assert_eq!(skewed.dead_bytes(), 200);
        assert!((skewed.space_amplification().unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn get_kind_checks_kind() {
        let store = InMemoryChunkStore::new();
        let addr = store.put(blob(b"x"));
        assert!(store.get_kind(&addr, ChunkKind::Blob).is_ok());
        let err = store.get_kind(&addr, ChunkKind::Meta).unwrap_err();
        assert!(matches!(err, StorageError::WrongChunkKind { .. }));
    }

    #[test]
    fn contains_and_count_kind() {
        let store = InMemoryChunkStore::new();
        let addr = store.put(blob(b"x"));
        store.put(Chunk::new(ChunkKind::Meta, &b"m"[..]));
        assert!(store.contains(&addr));
        assert!(!store.contains(&spitz_crypto::sha256(b"other")));
        assert_eq!(store.count_kind(ChunkKind::Blob), 1);
        assert_eq!(store.count_kind(ChunkKind::Meta), 1);
        assert_eq!(store.count_kind(ChunkKind::Commit), 0);
    }

    #[test]
    fn audit_of_honest_store_is_clean() {
        let store = InMemoryChunkStore::new();
        for i in 0..10u8 {
            store.put(blob(&[i]));
        }
        assert!(store.audit().is_empty());
    }

    #[test]
    fn root_pointers_roundtrip_and_overwrite() {
        let store = InMemoryChunkStore::new();
        assert_eq!(store.root("ledger/head"), None);
        let h1 = spitz_crypto::sha256(b"head-1");
        let h2 = spitz_crypto::sha256(b"head-2");
        store.set_root("ledger/head", h1);
        assert_eq!(store.root("ledger/head"), Some(h1));
        store.set_root("ledger/head", h2);
        assert_eq!(store.root("ledger/head"), Some(h2));
        assert_eq!(store.root("other"), None);
    }

    #[test]
    fn verifying_store_passes_through_honest_reads() {
        let store = VerifyingStore::new(InMemoryChunkStore::new());
        let addr = store.put(blob(b"v"));
        assert_eq!(store.get(&addr).unwrap().data(), b"v");
        assert!(store.contains(&addr));
        assert_eq!(store.stats().chunk_count, 1);
    }

    #[test]
    fn arc_store_is_usable_through_trait() {
        let store = InMemoryChunkStore::shared();
        let addr = ChunkStore::put(&store, blob(b"arc"));
        assert_eq!(store.get(&addr).unwrap().data(), b"arc");
    }

    #[test]
    fn concurrent_puts_deduplicate() {
        let store = InMemoryChunkStore::shared();
        let mut handles = Vec::new();
        for t in 0..8 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u32 {
                    // Every thread writes the same 500 chunks.
                    store.put(Chunk::new(ChunkKind::Blob, i.to_be_bytes().to_vec()));
                }
                t
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = store.stats();
        assert_eq!(stats.chunk_count, 500);
        assert_eq!(stats.dedup_hits, 7 * 500);
    }
}
