//! Typed objects layered over chunks: chunked blobs and small maps.
//!
//! A [`VBlob`] stores a byte string of arbitrary size as a list of
//! content-defined chunks referenced by a meta node, so that successive
//! versions of a mostly-unchanged value share almost all physical chunks.
//! A [`VMap`] is a small, immutable, content-addressed map used for object
//! metadata (for example a page id → blob root mapping in the Figure 1
//! workload).

use std::collections::BTreeMap;

use spitz_crypto::Hash;

use crate::chunk::{Chunk, ChunkKind};
use crate::chunker::{Chunker, ChunkerConfig};
use crate::error::StorageError;
use crate::store::ChunkStore;
use crate::Result;

/// A large byte value stored as content-defined chunks under one root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VBlob {
    root: Hash,
    len: u64,
    chunks: Vec<(Hash, u32)>,
}

impl VBlob {
    /// Split `data` with a chunker configured by `config`, store every chunk
    /// and a meta node in `store`, and return the blob handle.
    pub fn write<S: ChunkStore + ?Sized>(
        store: &S,
        data: &[u8],
        config: &ChunkerConfig,
    ) -> Result<VBlob> {
        let chunker = Chunker::new(*config)?;
        let mut entries: Vec<(Hash, u32)> = Vec::new();
        for piece in chunker.split(data) {
            let addr = store.put(Chunk::new(ChunkKind::Blob, piece.to_vec()));
            entries.push((addr, piece.len() as u32));
        }

        let meta = encode_meta(&entries, data.len() as u64);
        let root = store.put(Chunk::new(ChunkKind::Meta, meta));
        Ok(VBlob {
            root,
            len: data.len() as u64,
            chunks: entries,
        })
    }

    /// Load a blob handle from its meta-node root.
    pub fn load<S: ChunkStore + ?Sized>(store: &S, root: &Hash) -> Result<VBlob> {
        let meta = store.get_kind(root, ChunkKind::Meta)?;
        let (entries, len) = decode_meta(meta.data()).ok_or(StorageError::CorruptChunk(*root))?;
        Ok(VBlob {
            root: *root,
            len,
            chunks: entries,
        })
    }

    /// Read back the full contents of the blob stored under `root`.
    pub fn read<S: ChunkStore + ?Sized>(store: &S, root: &Hash) -> Result<Vec<u8>> {
        let blob = VBlob::load(store, root)?;
        blob.contents(store)
    }

    /// Read back this blob's contents.
    pub fn contents<S: ChunkStore + ?Sized>(&self, store: &S) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(self.len as usize);
        for (addr, _) in &self.chunks {
            let chunk = store.get_kind(addr, ChunkKind::Blob)?;
            out.extend_from_slice(chunk.data());
        }
        Ok(out)
    }

    /// The content address of the blob's meta node.
    pub fn root(&self) -> Hash {
        self.root
    }

    /// Logical length of the blob in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the blob is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The chunk addresses (and sizes) making up this blob.
    pub fn chunk_entries(&self) -> &[(Hash, u32)] {
        &self.chunks
    }
}

fn encode_meta(entries: &[(Hash, u32)], len: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + entries.len() * 36);
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(&(entries.len() as u32).to_be_bytes());
    for (hash, size) in entries {
        out.extend_from_slice(hash.as_bytes());
        out.extend_from_slice(&size.to_be_bytes());
    }
    out
}

fn decode_meta(data: &[u8]) -> Option<(Vec<(Hash, u32)>, u64)> {
    if data.len() < 12 {
        return None;
    }
    let len = u64::from_be_bytes(data[0..8].try_into().ok()?);
    let count = u32::from_be_bytes(data[8..12].try_into().ok()?) as usize;
    let mut entries = Vec::with_capacity(count);
    let mut offset = 12;
    for _ in 0..count {
        if offset + 36 > data.len() {
            return None;
        }
        let mut hash_bytes = [0u8; 32];
        hash_bytes.copy_from_slice(&data[offset..offset + 32]);
        let size = u32::from_be_bytes(data[offset + 32..offset + 36].try_into().ok()?);
        entries.push((Hash::from_bytes(hash_bytes), size));
        offset += 36;
    }
    if offset != data.len() {
        return None;
    }
    Some((entries, len))
}

/// A small immutable map from byte-string keys to chunk addresses, itself
/// stored as a single content-addressed chunk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VMap {
    entries: BTreeMap<Vec<u8>, Hash>,
}

impl VMap {
    /// Create an empty map.
    pub fn new() -> Self {
        VMap::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a key.
    pub fn get(&self, key: &[u8]) -> Option<Hash> {
        self.entries.get(key).copied()
    }

    /// Return a new map with `key` bound to `value` (persistent update).
    pub fn with(&self, key: impl Into<Vec<u8>>, value: Hash) -> VMap {
        let mut entries = self.entries.clone();
        entries.insert(key.into(), value);
        VMap { entries }
    }

    /// Return a new map with `key` removed.
    pub fn without(&self, key: &[u8]) -> VMap {
        let mut entries = self.entries.clone();
        entries.remove(key);
        VMap { entries }
    }

    /// Iterate over entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], Hash)> {
        self.entries.iter().map(|(k, v)| (k.as_slice(), *v))
    }

    /// Persist the map as a meta chunk and return its address.
    pub fn save<S: ChunkStore + ?Sized>(&self, store: &S) -> Hash {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.entries.len() as u32).to_be_bytes());
        for (k, v) in &self.entries {
            out.extend_from_slice(&(k.len() as u32).to_be_bytes());
            out.extend_from_slice(k);
            out.extend_from_slice(v.as_bytes());
        }
        store.put(Chunk::new(ChunkKind::Meta, out))
    }

    /// Load a map previously saved with [`VMap::save`].
    pub fn load<S: ChunkStore + ?Sized>(store: &S, address: &Hash) -> Result<VMap> {
        let chunk = store.get_kind(address, ChunkKind::Meta)?;
        let data = chunk.data();
        if data.len() < 4 {
            return Err(StorageError::CorruptChunk(*address));
        }
        let count = u32::from_be_bytes(data[0..4].try_into().expect("4 bytes")) as usize;
        let mut entries = BTreeMap::new();
        let mut offset = 4;
        for _ in 0..count {
            if offset + 4 > data.len() {
                return Err(StorageError::CorruptChunk(*address));
            }
            let klen =
                u32::from_be_bytes(data[offset..offset + 4].try_into().expect("4 bytes")) as usize;
            offset += 4;
            if offset + klen + 32 > data.len() {
                return Err(StorageError::CorruptChunk(*address));
            }
            let key = data[offset..offset + klen].to_vec();
            offset += klen;
            let mut hash_bytes = [0u8; 32];
            hash_bytes.copy_from_slice(&data[offset..offset + 32]);
            offset += 32;
            entries.insert(key, Hash::from_bytes(hash_bytes));
        }
        if offset != data.len() {
            return Err(StorageError::CorruptChunk(*address));
        }
        Ok(VMap { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::InMemoryChunkStore;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    fn random_bytes(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = vec![0u8; len];
        rng.fill_bytes(&mut data);
        data
    }

    #[test]
    fn blob_roundtrip_various_sizes() {
        let store = InMemoryChunkStore::new();
        let cfg = ChunkerConfig::default();
        for len in [0usize, 1, 20, 255, 4096, 16 * 1024, 70_000] {
            let data = random_bytes(len, len as u64 + 1);
            let blob = VBlob::write(&store, &data, &cfg).unwrap();
            assert_eq!(blob.len() as usize, len);
            assert_eq!(
                VBlob::read(&store, &blob.root()).unwrap(),
                data,
                "len {len}"
            );
        }
    }

    #[test]
    fn identical_blobs_share_all_chunks() {
        let store = InMemoryChunkStore::new();
        let cfg = ChunkerConfig::default();
        let data = random_bytes(16 * 1024, 3);
        let b1 = VBlob::write(&store, &data, &cfg).unwrap();
        let before = store.stats().physical_bytes;
        let b2 = VBlob::write(&store, &data, &cfg).unwrap();
        assert_eq!(b1.root(), b2.root());
        assert_eq!(store.stats().physical_bytes, before);
    }

    #[test]
    fn edited_blob_shares_most_chunks() {
        let store = InMemoryChunkStore::new();
        let cfg = ChunkerConfig::default();
        let data = random_bytes(16 * 1024, 5);
        let b1 = VBlob::write(&store, &data, &cfg).unwrap();

        let mut edited = data.clone();
        for b in &mut edited[100..150] {
            *b ^= 0xff;
        }
        let b2 = VBlob::write(&store, &edited, &cfg).unwrap();
        assert_ne!(b1.root(), b2.root());

        let set1: std::collections::HashSet<_> =
            b1.chunk_entries().iter().map(|(h, _)| *h).collect();
        let shared = b2
            .chunk_entries()
            .iter()
            .filter(|(h, _)| set1.contains(h))
            .count();
        assert!(
            shared * 2 >= b2.chunk_entries().len(),
            "expected chunk sharing, got {shared}/{}",
            b2.chunk_entries().len()
        );
    }

    #[test]
    fn load_rejects_wrong_kind() {
        let store = InMemoryChunkStore::new();
        let addr = store.put(Chunk::new(ChunkKind::Blob, &b"not a meta node"[..]));
        assert!(matches!(
            VBlob::load(&store, &addr),
            Err(StorageError::WrongChunkKind { .. })
        ));
    }

    #[test]
    fn load_rejects_corrupt_meta() {
        let store = InMemoryChunkStore::new();
        let addr = store.put(Chunk::new(ChunkKind::Meta, vec![1, 2, 3]));
        assert!(matches!(
            VBlob::load(&store, &addr),
            Err(StorageError::CorruptChunk(_))
        ));
    }

    #[test]
    fn vmap_roundtrip() {
        let store = InMemoryChunkStore::new();
        let mut map = VMap::new();
        assert!(map.is_empty());
        for i in 0..20u8 {
            map = map.with(vec![i], spitz_crypto::sha256(&[i]));
        }
        assert_eq!(map.len(), 20);
        let addr = map.save(&store);
        let loaded = VMap::load(&store, &addr).unwrap();
        assert_eq!(loaded, map);
        assert_eq!(loaded.get(&[7]), Some(spitz_crypto::sha256(&[7])));
        assert_eq!(loaded.get(&[99]), None);
    }

    #[test]
    fn vmap_persistent_updates_do_not_mutate_original() {
        let base = VMap::new().with(b"a".to_vec(), spitz_crypto::sha256(b"1"));
        let derived = base.with(b"b".to_vec(), spitz_crypto::sha256(b"2"));
        let removed = derived.without(b"a");
        assert_eq!(base.len(), 1);
        assert_eq!(derived.len(), 2);
        assert_eq!(removed.len(), 1);
        assert!(removed.get(b"a").is_none());
        assert!(base.get(b"a").is_some());
    }

    #[test]
    fn identical_vmaps_have_identical_addresses() {
        let store = InMemoryChunkStore::new();
        let m1 = VMap::new()
            .with(b"x".to_vec(), spitz_crypto::sha256(b"1"))
            .with(b"y".to_vec(), spitz_crypto::sha256(b"2"));
        // Insert in the opposite order — address must not depend on it.
        let m2 = VMap::new()
            .with(b"y".to_vec(), spitz_crypto::sha256(b"2"))
            .with(b"x".to_vec(), spitz_crypto::sha256(b"1"));
        assert_eq!(m1.save(&store), m2.save(&store));
    }
}
