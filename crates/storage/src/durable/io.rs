//! The `SegmentIo` seam: a deterministic fault-injection hook under the
//! segment file I/O.
//!
//! Every record append and every segment fsync consults the store's
//! [`SegmentIo`] before touching the file. The production implementation
//! ([`RealIo`]) says "proceed" unconditionally and costs two predictable
//! branches; a test harness installs an injector (see the `spitz-faults`
//! crate) that can tear a write at an arbitrary prefix, flip a bit, report
//! `ENOSPC`, or fail an fsync at an exact operation count — reproducibly
//! from a seed. Faults injected here exercise the *same* recovery code real
//! disks would: torn-tail truncation on reopen, CRC detection on read and
//! scrub, retry/backoff, and the read-only health transition.

use std::fmt::Debug;
use std::sync::Arc;

use crate::error::IoErrorKind;

/// What happens to a single segment record append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Write the full record — the normal case.
    Full,
    /// Write only the first `prefix` bytes of the record, then report
    /// failure *without* restoring the previous file length: models the
    /// process (or kernel) dying mid-`write`, leaving a torn tail for the
    /// reopen scan to truncate.
    Torn {
        /// Bytes of the record that reach the file (may be zero).
        prefix: usize,
    },
    /// Write the full record with one byte damaged, and report success —
    /// silent media corruption, caught later by the CRC on the read path or
    /// by a scrub pass.
    Corrupt {
        /// Byte offset within the record to damage (clamped to the record).
        offset: usize,
        /// XOR mask applied to that byte; zero masks are promoted to `0x01`
        /// so the fault always actually corrupts.
        mask: u8,
    },
    /// Fail without writing anything, classified as `kind`.
    Fail(IoErrorKind),
}

/// What happens to a segment fsync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncOutcome {
    /// Flush normally.
    Ok,
    /// Report failure without flushing, classified as `kind`. Note that
    /// after a failed fsync the kernel page cache state is unknowable, which
    /// is why the store treats a non-transient fsync failure as fatal for
    /// writability rather than retrying it.
    Fail(IoErrorKind),
}

/// Hook consulted by [`Segment`](super::segment::Segment) file operations.
///
/// Implementations must be cheap and non-blocking: the hooks run inside the
/// store's write path, under the segment file mutex.
pub trait SegmentIo: Send + Sync + Debug {
    /// Decide the fate of the next record append to segment `segment`; the
    /// full record is `len` bytes.
    fn on_append(&self, segment: u64, len: usize) -> WriteOutcome {
        let _ = (segment, len);
        WriteOutcome::Full
    }

    /// Decide the fate of the next fsync of segment `segment`.
    fn on_fsync(&self, segment: u64) -> FsyncOutcome {
        let _ = segment;
        FsyncOutcome::Ok
    }
}

/// The production implementation: never injects anything.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl SegmentIo for RealIo {}

/// Shared handle to a [`SegmentIo`], the form the store threads it in.
pub type SegmentIoHandle = Arc<dyn SegmentIo>;

/// A fresh handle to the no-fault production I/O.
pub fn real_io() -> SegmentIoHandle {
    Arc::new(RealIo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_io_never_injects() {
        let io = real_io();
        for op in 0..64 {
            assert_eq!(io.on_append(op % 3, 100), WriteOutcome::Full);
            assert_eq!(io.on_fsync(op % 3), FsyncOutcome::Ok);
        }
    }
}
