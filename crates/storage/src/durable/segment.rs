//! Segment files: append-only carriers of chunk and root records.
//!
//! A [`Segment`] wraps one open file handle shared by the appender (the
//! active segment) and by random-access readers (all segments). The handle
//! sits behind a per-segment mutex, so readers of *different* segments — and
//! cache hits, which never reach a segment at all — proceed in parallel;
//! only a cold read racing another cold read of the same segment serializes.
//! A second independent handle serves `fsync`, so flushing a segment to
//! stable storage never blocks its readers (`fsync` is per-inode, not
//! per-descriptor). Appends are additionally serialized by the store's
//! writer lock; the mutex only protects the seek position from interleaved
//! reads.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use spitz_crypto::Hash;

use crate::chunk::{Chunk, ChunkKind};
use crate::error::{IoErrorKind, StorageError};
use crate::Result;

use super::format::{
    decode_record, decode_segment_header, encode_record, encode_root_record, encode_segment_header,
    RecordBody, SEGMENT_HEADER_LEN,
};
use super::io::{real_io, FsyncOutcome, SegmentIoHandle, WriteOutcome};

/// Location of one chunk record inside the segment set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkLocation {
    /// Id of the segment holding the record.
    pub segment: u64,
    /// Byte offset of the record within the segment file.
    pub offset: u64,
    /// Total encoded length of the record.
    pub len: u32,
    /// Kind of the stored chunk (kept in the index so `get_kind` mismatches
    /// fail without touching the disk).
    pub kind: ChunkKind,
}

/// File name of segment `id` (fixed width so lexicographic = numeric order).
pub fn segment_file_name(id: u64) -> String {
    format!("seg-{id:010}.spitz")
}

/// Parse a segment id back out of a file name produced by
/// [`segment_file_name`].
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".spitz")?
        .parse()
        .ok()
}

/// One open segment file.
#[derive(Debug)]
pub struct Segment {
    /// Segment id (position in the manifest's segment order).
    pub id: u64,
    path: PathBuf,
    /// Read/append handle; the mutex keeps one reader's seek+read atomic
    /// with respect to other readers and the appender.
    file: Mutex<File>,
    /// Separate handle used only for `fsync`, so a sync in progress never
    /// holds the lock readers need.
    sync_file: File,
    /// Current file length; the append offset for the active segment.
    len: AtomicU64,
    /// Fault-injection seam consulted before every append and fsync; the
    /// production handle ([`real_io`]) never injects.
    io: SegmentIoHandle,
}

/// Outcome of scanning a segment at open time.
#[derive(Debug)]
pub struct ScanOutcome {
    /// Address and location of every intact chunk record, in file order.
    pub records: Vec<(Hash, ChunkLocation)>,
    /// Every intact root-publication record, in file order (later entries
    /// supersede earlier ones for the same name).
    pub roots: Vec<(String, Hash)>,
    /// Bytes dropped from the tail as a torn write (0 when the file was
    /// clean). Only ever non-zero when scanning with `tolerate_torn_tail`.
    pub torn_bytes: u64,
}

impl Segment {
    /// Create a fresh segment file (fails if it already exists).
    pub fn create(dir: &Path, id: u64) -> Result<Segment> {
        Segment::create_with_io(dir, id, real_io())
    }

    /// [`Segment::create`] with an explicit fault-injection seam.
    pub fn create_with_io(dir: &Path, id: u64, io: SegmentIoHandle) -> Result<Segment> {
        let path = dir.join(segment_file_name(id));
        let mut file = OpenOptions::new()
            .create_new(true)
            .read(true)
            .append(true)
            .open(&path)
            .map_err(|e| StorageError::io("create", &path, e))?;
        let header = encode_segment_header(id);
        file.write_all(&header)
            .map_err(|e| StorageError::io("create", &path, e))?;
        let sync_file = File::open(&path).map_err(|e| StorageError::io("create", &path, e))?;
        Ok(Segment {
            id,
            path,
            file: Mutex::new(file),
            sync_file,
            len: AtomicU64::new(SEGMENT_HEADER_LEN),
            io,
        })
    }

    /// Open an existing segment file and validate its header.
    pub fn open(dir: &Path, id: u64) -> Result<Segment> {
        Segment::open_with_io(dir, id, real_io())
    }

    /// [`Segment::open`] with an explicit fault-injection seam.
    pub fn open_with_io(dir: &Path, id: u64, io: SegmentIoHandle) -> Result<Segment> {
        let path = dir.join(segment_file_name(id));
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&path)
            .map_err(|e| StorageError::io("open", &path, e))?;
        let mut header = [0u8; SEGMENT_HEADER_LEN as usize];
        file.seek(SeekFrom::Start(0))
            .and_then(|_| file.read_exact(&mut header))
            .map_err(|e| StorageError::io("open", &path, e))?;
        match decode_segment_header(&header) {
            Some(found) if found == id => {}
            _ => {
                return Err(StorageError::SegmentCorrupt {
                    segment: id,
                    offset: 0,
                    reason: "bad segment header".into(),
                })
            }
        }
        let len = file
            .metadata()
            .map_err(|e| StorageError::io("open", &path, e))?
            .len();
        let sync_file = File::open(&path).map_err(|e| StorageError::io("open", &path, e))?;
        Ok(Segment {
            id,
            path,
            file: Mutex::new(file),
            sync_file,
            len: AtomicU64::new(len),
            io,
        })
    }

    /// Path of the backing file (used by quarantine to move it aside).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current file length (the append offset for the active segment).
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Acquire)
    }

    /// True when the segment holds no records (header only).
    pub fn is_empty(&self) -> bool {
        self.len() <= SEGMENT_HEADER_LEN
    }

    /// Append pre-encoded record bytes; returns the offset they start at.
    /// On a failed write the file is cut back to its previous length so a
    /// partial record never sits in the middle of later appends — except for
    /// an injected *torn* write, which deliberately leaves the partial tail
    /// in place (that is the fault being modelled; the store responds by
    /// refusing further appends, and the reopen scan truncates the tail).
    fn append_bytes(&self, record: &[u8]) -> Result<u64> {
        let offset = self.len.load(Ordering::Acquire);
        let mut file = self.file.lock();
        match self.io.on_append(self.id, record.len()) {
            WriteOutcome::Full => {
                if let Err(e) = file.write_all(record) {
                    let _ = file.set_len(offset);
                    return Err(StorageError::io("append", &self.path, e));
                }
            }
            WriteOutcome::Torn { prefix } => {
                let prefix = prefix.min(record.len());
                let _ = file.write_all(&record[..prefix]);
                return Err(StorageError::io_synthetic(
                    IoErrorKind::Other,
                    "append",
                    format!("injected torn write ({prefix}/{} bytes)", record.len()),
                ));
            }
            WriteOutcome::Corrupt { offset: at, mask } => {
                let mut damaged = record.to_vec();
                let at = at.min(damaged.len().saturating_sub(1));
                damaged[at] ^= if mask == 0 { 0x01 } else { mask };
                if let Err(e) = file.write_all(&damaged) {
                    let _ = file.set_len(offset);
                    return Err(StorageError::io("append", &self.path, e));
                }
            }
            WriteOutcome::Fail(kind) => {
                return Err(StorageError::io_synthetic(
                    kind,
                    "append",
                    format!("injected append fault ({kind})"),
                ));
            }
        }
        self.len
            .store(offset + record.len() as u64, Ordering::Release);
        Ok(offset)
    }

    /// Append one encoded chunk record; returns its location.
    pub fn append(&self, address: &Hash, chunk: &Chunk) -> Result<ChunkLocation> {
        let record = encode_record(address, chunk);
        let offset = self.append_bytes(&record)?;
        Ok(ChunkLocation {
            segment: self.id,
            offset,
            len: record.len() as u32,
            kind: chunk.kind(),
        })
    }

    /// Append one root-publication record ("root `name` → `hash`").
    pub fn append_root(&self, name: &str, hash: &Hash) -> Result<()> {
        self.append_bytes(&encode_root_record(name, hash))
            .map(|_| ())
    }

    /// Read back and validate the chunk record at `location`.
    pub fn read(&self, location: &ChunkLocation) -> Result<Chunk> {
        let mut buf = vec![0u8; location.len as usize];
        {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(location.offset))
                .and_then(|_| file.read_exact(&mut buf))
                .map_err(|e| StorageError::io("read", &self.path, e))?;
        }
        let corrupt = |reason: String| StorageError::SegmentCorrupt {
            segment: self.id,
            offset: location.offset,
            reason,
        };
        let (decoded, _) = decode_record(&buf).map_err(|e| corrupt(format!("{e:?}")))?;
        match decoded.body {
            RecordBody::Chunk(chunk) => Ok(chunk),
            RecordBody::Root { .. } => {
                Err(corrupt("root record where a chunk was expected".into()))
            }
        }
    }

    /// Flush file contents to stable storage (`fsync`). Uses the dedicated
    /// sync handle, so concurrent readers of this segment are not blocked.
    pub fn sync(&self) -> Result<()> {
        match self.io.on_fsync(self.id) {
            FsyncOutcome::Ok => self
                .sync_file
                .sync_all()
                .map_err(|e| StorageError::io("fsync", &self.path, e)),
            FsyncOutcome::Fail(kind) => Err(StorageError::io_synthetic(
                kind,
                "fsync",
                format!("injected fsync fault ({kind})"),
            )),
        }
    }

    /// Scan every record in the segment, rebuilding index entries and
    /// replaying root publications.
    ///
    /// `tolerate_torn_tail` is set for the *last* segment only: a record
    /// that is cut short or fails its CRC **at the very end of the file** is
    /// treated as the remnant of a crashed append — the file is truncated
    /// back to the last intact record and the scan succeeds. The same damage
    /// anywhere else (or in a sealed segment) is corruption and fails the
    /// open.
    pub fn scan(&self, tolerate_torn_tail: bool) -> Result<ScanOutcome> {
        let mut bytes = Vec::new();
        {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(0))
                .and_then(|_| file.read_to_end(&mut bytes))
                .map_err(|e| StorageError::io("scan", &self.path, e))?;
        }
        if decode_segment_header(&bytes).is_none() {
            return Err(StorageError::SegmentCorrupt {
                segment: self.id,
                offset: 0,
                reason: "bad segment header".into(),
            });
        }

        let mut records = Vec::new();
        let mut roots = Vec::new();
        let mut offset = SEGMENT_HEADER_LEN as usize;
        while offset < bytes.len() {
            match decode_record(&bytes[offset..]) {
                Ok((decoded, consumed)) => {
                    match decoded.body {
                        RecordBody::Chunk(chunk) => records.push((
                            decoded.address,
                            ChunkLocation {
                                segment: self.id,
                                offset: offset as u64,
                                len: consumed as u32,
                                kind: chunk.kind(),
                            },
                        )),
                        RecordBody::Root { name } => roots.push((name, decoded.address)),
                    }
                    offset += consumed;
                }
                Err(error) => {
                    // A damaged record that still claims to end before EOF
                    // cannot be a torn append — refuse to open.
                    let claimed_end = record_claimed_end(&bytes, offset);
                    let reaches_eof = claimed_end.map(|end| end >= bytes.len()).unwrap_or(true);
                    if !(tolerate_torn_tail && reaches_eof) {
                        return Err(StorageError::SegmentCorrupt {
                            segment: self.id,
                            offset: offset as u64,
                            reason: format!("{error:?}"),
                        });
                    }
                    let torn = (bytes.len() - offset) as u64;
                    self.truncate_to(offset as u64)?;
                    return Ok(ScanOutcome {
                        records,
                        roots,
                        torn_bytes: torn,
                    });
                }
            }
        }
        self.len.store(bytes.len() as u64, Ordering::Release);
        Ok(ScanOutcome {
            records,
            roots,
            torn_bytes: 0,
        })
    }

    /// Cut the file back to `len` bytes (dropping a torn tail record).
    fn truncate_to(&self, len: u64) -> Result<()> {
        let file = self.file.lock();
        file.set_len(len)
            .map_err(|e| StorageError::io("truncate", &self.path, e))?;
        self.len.store(len, Ordering::Release);
        Ok(())
    }
}

/// Where the record starting at `offset` claims to end, if its length
/// prefix is readable.
fn record_claimed_end(bytes: &[u8], offset: usize) -> Option<usize> {
    let prefix = bytes.get(offset..offset + 4)?;
    let payload_len = u32::from_be_bytes(prefix.try_into().ok()?) as usize;
    Some(offset + super::format::RECORD_OVERHEAD + payload_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::testutil::TempDir;

    fn blob(data: &[u8]) -> Chunk {
        Chunk::new(ChunkKind::Blob, data.to_vec())
    }

    #[test]
    fn append_scan_read_roundtrip() {
        let dir = TempDir::new("segment-roundtrip");
        let segment = Segment::create(dir.path(), 0).unwrap();
        let chunks: Vec<Chunk> = (0..10u8).map(|i| blob(&[i; 33])).collect();
        let mut locations = Vec::new();
        for chunk in &chunks {
            locations.push(segment.append(&chunk.address(), chunk).unwrap());
        }
        for (chunk, location) in chunks.iter().zip(&locations) {
            assert_eq!(&segment.read(location).unwrap(), chunk);
        }

        let reopened = Segment::open(dir.path(), 0).unwrap();
        let outcome = reopened.scan(true).unwrap();
        assert_eq!(outcome.torn_bytes, 0);
        assert_eq!(outcome.records.len(), 10);
        assert!(outcome.roots.is_empty());
        for ((address, location), chunk) in outcome.records.iter().zip(&chunks) {
            assert_eq!(*address, chunk.address());
            assert_eq!(&reopened.read(location).unwrap(), chunk);
        }
    }

    #[test]
    fn root_records_interleave_with_chunks_and_replay_in_order() {
        let dir = TempDir::new("segment-roots");
        let segment = Segment::create(dir.path(), 0).unwrap();
        let chunk1 = blob(b"block one");
        let chunk2 = blob(b"block two");
        segment.append(&chunk1.address(), &chunk1).unwrap();
        segment.append_root("head", &chunk1.address()).unwrap();
        segment.append(&chunk2.address(), &chunk2).unwrap();
        segment.append_root("head", &chunk2.address()).unwrap();
        segment.append_root("other", &chunk1.address()).unwrap();

        let reopened = Segment::open(dir.path(), 0).unwrap();
        let outcome = reopened.scan(true).unwrap();
        assert_eq!(outcome.records.len(), 2);
        assert_eq!(
            outcome.roots,
            vec![
                ("head".to_string(), chunk1.address()),
                ("head".to_string(), chunk2.address()),
                ("other".to_string(), chunk1.address()),
            ]
        );
    }

    #[test]
    fn reading_a_root_record_as_a_chunk_fails() {
        let dir = TempDir::new("segment-root-read");
        let segment = Segment::create(dir.path(), 0).unwrap();
        let offset = segment.len();
        let hash = spitz_crypto::sha256(b"target");
        segment.append_root("head", &hash).unwrap();
        let bogus = ChunkLocation {
            segment: 0,
            offset,
            len: (segment.len() - offset) as u32,
            kind: ChunkKind::Blob,
        };
        assert!(matches!(
            segment.read(&bogus),
            Err(StorageError::SegmentCorrupt { .. })
        ));
    }

    #[test]
    fn torn_tail_is_truncated_only_when_tolerated() {
        let dir = TempDir::new("segment-torn");
        let segment = Segment::create(dir.path(), 3).unwrap();
        for i in 0..5u8 {
            let chunk = blob(&[i; 50]);
            segment.append(&chunk.address(), &chunk).unwrap();
        }
        let full_len = segment.len();
        drop(segment);

        // Cut into the middle of the last record.
        let path = dir.path().join(segment_file_name(3));
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full_len - 20).unwrap();
        drop(file);

        let sealed = Segment::open(dir.path(), 3).unwrap();
        assert!(matches!(
            sealed.scan(false),
            Err(StorageError::SegmentCorrupt { segment: 3, .. })
        ));

        let tail = Segment::open(dir.path(), 3).unwrap();
        let outcome = tail.scan(true).unwrap();
        assert_eq!(outcome.records.len(), 4);
        assert!(outcome.torn_bytes > 0);
        // The file is physically truncated back to the intact prefix and
        // appends keep working.
        let chunk = blob(b"after recovery");
        let location = tail.append(&chunk.address(), &chunk).unwrap();
        assert_eq!(tail.read(&location).unwrap(), chunk);
        let rescanned = Segment::open(dir.path(), 3).unwrap().scan(true).unwrap();
        assert_eq!(rescanned.records.len(), 5);
        assert_eq!(rescanned.torn_bytes, 0);
    }

    #[test]
    fn torn_root_record_is_dropped_like_any_tail() {
        let dir = TempDir::new("segment-torn-root");
        let segment = Segment::create(dir.path(), 0).unwrap();
        let chunk = blob(b"data before the root");
        segment.append(&chunk.address(), &chunk).unwrap();
        segment.append_root("head", &chunk.address()).unwrap();
        let full_len = segment.len();
        drop(segment);

        let path = dir.path().join(segment_file_name(0));
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full_len - 2).unwrap(); // tear the root record's CRC
        drop(file);

        let tail = Segment::open(dir.path(), 0).unwrap();
        let outcome = tail.scan(true).unwrap();
        assert_eq!(outcome.records.len(), 1, "the data record survives");
        assert!(outcome.roots.is_empty(), "the torn root must not replay");
        assert!(outcome.torn_bytes > 0);
    }

    #[test]
    fn mid_file_corruption_fails_even_with_tolerance() {
        let dir = TempDir::new("segment-midflip");
        let segment = Segment::create(dir.path(), 0).unwrap();
        for i in 0..5u8 {
            let chunk = blob(&[i; 50]);
            segment.append(&chunk.address(), &chunk).unwrap();
        }
        drop(segment);

        // Flip one payload byte of the first record.
        let path = dir.path().join(segment_file_name(0));
        let mut bytes = std::fs::read(&path).unwrap();
        let index = SEGMENT_HEADER_LEN as usize + 40;
        bytes[index] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let reopened = Segment::open(dir.path(), 0).unwrap();
        assert!(matches!(
            reopened.scan(true),
            Err(StorageError::SegmentCorrupt { .. })
        ));
    }

    #[test]
    fn segment_file_names_roundtrip() {
        assert_eq!(segment_file_name(7), "seg-0000000007.spitz");
        assert_eq!(parse_segment_file_name("seg-0000000007.spitz"), Some(7));
        assert_eq!(parse_segment_file_name("seg-x.spitz"), None);
        assert_eq!(parse_segment_file_name("other"), None);
    }
}
