//! Segment files: append-only carriers of chunk records.
//!
//! A [`Segment`] wraps one open file handle used both for appending (the
//! active segment) and for random-access reads (all segments). Reads and
//! writes are serialized by the store's outer lock, so plain `Seek` +
//! `Read` is sufficient and the code stays free of platform-specific I/O.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use spitz_crypto::Hash;

use crate::chunk::{Chunk, ChunkKind};
use crate::error::StorageError;
use crate::Result;

use super::format::{
    decode_record, decode_segment_header, encode_record, encode_segment_header, SEGMENT_HEADER_LEN,
};

/// Location of one chunk record inside the segment set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkLocation {
    /// Id of the segment holding the record.
    pub segment: u64,
    /// Byte offset of the record within the segment file.
    pub offset: u64,
    /// Total encoded length of the record.
    pub len: u32,
    /// Kind of the stored chunk (kept in the index so `get_kind` mismatches
    /// fail without touching the disk).
    pub kind: ChunkKind,
}

/// File name of segment `id` (fixed width so lexicographic = numeric order).
pub fn segment_file_name(id: u64) -> String {
    format!("seg-{id:010}.spitz")
}

/// Parse a segment id back out of a file name produced by
/// [`segment_file_name`].
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".spitz")?
        .parse()
        .ok()
}

/// One open segment file.
#[derive(Debug)]
pub struct Segment {
    /// Segment id (position in the manifest's segment order).
    pub id: u64,
    path: PathBuf,
    file: File,
    /// Current file length; the append offset for the active segment.
    pub len: u64,
}

/// Outcome of scanning a segment at open time.
#[derive(Debug)]
pub struct ScanOutcome {
    /// Address and location of every intact record, in file order.
    pub records: Vec<(Hash, ChunkLocation)>,
    /// Bytes dropped from the tail as a torn write (0 when the file was
    /// clean). Only ever non-zero when scanning with `tolerate_torn_tail`.
    pub torn_bytes: u64,
}

impl Segment {
    /// Create a fresh segment file (fails if it already exists).
    pub fn create(dir: &Path, id: u64) -> Result<Segment> {
        let path = dir.join(segment_file_name(id));
        let mut file = OpenOptions::new()
            .create_new(true)
            .read(true)
            .append(true)
            .open(&path)
            .map_err(|e| StorageError::io(&path, e))?;
        let header = encode_segment_header(id);
        file.write_all(&header)
            .map_err(|e| StorageError::io(&path, e))?;
        Ok(Segment {
            id,
            path,
            file,
            len: SEGMENT_HEADER_LEN,
        })
    }

    /// Open an existing segment file and validate its header.
    pub fn open(dir: &Path, id: u64) -> Result<Segment> {
        let path = dir.join(segment_file_name(id));
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&path)
            .map_err(|e| StorageError::io(&path, e))?;
        let mut header = [0u8; SEGMENT_HEADER_LEN as usize];
        file.seek(SeekFrom::Start(0))
            .and_then(|_| file.read_exact(&mut header))
            .map_err(|e| StorageError::io(&path, e))?;
        match decode_segment_header(&header) {
            Some(found) if found == id => {}
            _ => {
                return Err(StorageError::SegmentCorrupt {
                    segment: id,
                    offset: 0,
                    reason: "bad segment header".into(),
                })
            }
        }
        let len = file
            .metadata()
            .map_err(|e| StorageError::io(&path, e))?
            .len();
        Ok(Segment {
            id,
            path,
            file,
            len,
        })
    }

    /// Append one encoded chunk record; returns its location.
    pub fn append(&mut self, address: &Hash, chunk: &Chunk) -> Result<ChunkLocation> {
        let record = encode_record(address, chunk);
        self.file
            .write_all(&record)
            .map_err(|e| StorageError::io(&self.path, e))?;
        let location = ChunkLocation {
            segment: self.id,
            offset: self.len,
            len: record.len() as u32,
            kind: chunk.kind(),
        };
        self.len += record.len() as u64;
        Ok(location)
    }

    /// Read back and validate the record at `location`.
    pub fn read(&mut self, location: &ChunkLocation) -> Result<Chunk> {
        let mut buf = vec![0u8; location.len as usize];
        self.file
            .seek(SeekFrom::Start(location.offset))
            .and_then(|_| self.file.read_exact(&mut buf))
            .map_err(|e| StorageError::io(&self.path, e))?;
        let (decoded, _) = decode_record(&buf).map_err(|e| StorageError::SegmentCorrupt {
            segment: self.id,
            offset: location.offset,
            reason: format!("{e:?}"),
        })?;
        Ok(decoded.chunk)
    }

    /// Flush file contents to stable storage (`fsync`).
    pub fn sync(&self) -> Result<()> {
        self.file
            .sync_all()
            .map_err(|e| StorageError::io(&self.path, e))
    }

    /// Scan every record in the segment, rebuilding index entries.
    ///
    /// `tolerate_torn_tail` is set for the *last* segment only: a record
    /// that is cut short or fails its CRC **at the very end of the file** is
    /// treated as the remnant of a crashed append — the file is truncated
    /// back to the last intact record and the scan succeeds. The same damage
    /// anywhere else (or in a sealed segment) is corruption and fails the
    /// open.
    pub fn scan(&mut self, tolerate_torn_tail: bool) -> Result<ScanOutcome> {
        let mut bytes = Vec::new();
        self.file
            .seek(SeekFrom::Start(0))
            .and_then(|_| self.file.read_to_end(&mut bytes))
            .map_err(|e| StorageError::io(&self.path, e))?;
        if decode_segment_header(&bytes).is_none() {
            return Err(StorageError::SegmentCorrupt {
                segment: self.id,
                offset: 0,
                reason: "bad segment header".into(),
            });
        }

        let mut records = Vec::new();
        let mut offset = SEGMENT_HEADER_LEN as usize;
        while offset < bytes.len() {
            match decode_record(&bytes[offset..]) {
                Ok((decoded, consumed)) => {
                    records.push((
                        decoded.address,
                        ChunkLocation {
                            segment: self.id,
                            offset: offset as u64,
                            len: consumed as u32,
                            kind: decoded.chunk.kind(),
                        },
                    ));
                    offset += consumed;
                }
                Err(error) => {
                    // A damaged record that still claims to end before EOF
                    // cannot be a torn append — refuse to open.
                    let claimed_end = record_claimed_end(&bytes, offset);
                    let reaches_eof = claimed_end.map(|end| end >= bytes.len()).unwrap_or(true);
                    if !(tolerate_torn_tail && reaches_eof) {
                        return Err(StorageError::SegmentCorrupt {
                            segment: self.id,
                            offset: offset as u64,
                            reason: format!("{error:?}"),
                        });
                    }
                    let torn = (bytes.len() - offset) as u64;
                    self.truncate_to(offset as u64)?;
                    return Ok(ScanOutcome {
                        records,
                        torn_bytes: torn,
                    });
                }
            }
        }
        self.len = bytes.len() as u64;
        Ok(ScanOutcome {
            records,
            torn_bytes: 0,
        })
    }

    /// Cut the file back to `len` bytes (dropping a torn tail record).
    fn truncate_to(&mut self, len: u64) -> Result<()> {
        self.file
            .set_len(len)
            .map_err(|e| StorageError::io(&self.path, e))?;
        self.file
            .seek(SeekFrom::End(0))
            .map_err(|e| StorageError::io(&self.path, e))?;
        self.len = len;
        Ok(())
    }
}

/// Where the record starting at `offset` claims to end, if its length
/// prefix is readable.
fn record_claimed_end(bytes: &[u8], offset: usize) -> Option<usize> {
    let prefix = bytes.get(offset..offset + 4)?;
    let payload_len = u32::from_be_bytes(prefix.try_into().ok()?) as usize;
    Some(offset + super::format::RECORD_OVERHEAD + payload_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::testutil::TempDir;

    fn blob(data: &[u8]) -> Chunk {
        Chunk::new(ChunkKind::Blob, data.to_vec())
    }

    #[test]
    fn append_scan_read_roundtrip() {
        let dir = TempDir::new("segment-roundtrip");
        let mut segment = Segment::create(dir.path(), 0).unwrap();
        let chunks: Vec<Chunk> = (0..10u8).map(|i| blob(&[i; 33])).collect();
        let mut locations = Vec::new();
        for chunk in &chunks {
            locations.push(segment.append(&chunk.address(), chunk).unwrap());
        }
        for (chunk, location) in chunks.iter().zip(&locations) {
            assert_eq!(&segment.read(location).unwrap(), chunk);
        }

        let mut reopened = Segment::open(dir.path(), 0).unwrap();
        let outcome = reopened.scan(true).unwrap();
        assert_eq!(outcome.torn_bytes, 0);
        assert_eq!(outcome.records.len(), 10);
        for ((address, location), chunk) in outcome.records.iter().zip(&chunks) {
            assert_eq!(*address, chunk.address());
            assert_eq!(&reopened.read(location).unwrap(), chunk);
        }
    }

    #[test]
    fn torn_tail_is_truncated_only_when_tolerated() {
        let dir = TempDir::new("segment-torn");
        let mut segment = Segment::create(dir.path(), 3).unwrap();
        for i in 0..5u8 {
            let chunk = blob(&[i; 50]);
            segment.append(&chunk.address(), &chunk).unwrap();
        }
        let full_len = segment.len;
        drop(segment);

        // Cut into the middle of the last record.
        let path = dir.path().join(segment_file_name(3));
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full_len - 20).unwrap();
        drop(file);

        let mut sealed = Segment::open(dir.path(), 3).unwrap();
        assert!(matches!(
            sealed.scan(false),
            Err(StorageError::SegmentCorrupt { segment: 3, .. })
        ));

        let mut tail = Segment::open(dir.path(), 3).unwrap();
        let outcome = tail.scan(true).unwrap();
        assert_eq!(outcome.records.len(), 4);
        assert!(outcome.torn_bytes > 0);
        // The file is physically truncated back to the intact prefix and
        // appends keep working.
        let chunk = blob(b"after recovery");
        let location = tail.append(&chunk.address(), &chunk).unwrap();
        assert_eq!(tail.read(&location).unwrap(), chunk);
        let rescanned = Segment::open(dir.path(), 3).unwrap().scan(true).unwrap();
        assert_eq!(rescanned.records.len(), 5);
        assert_eq!(rescanned.torn_bytes, 0);
    }

    #[test]
    fn mid_file_corruption_fails_even_with_tolerance() {
        let dir = TempDir::new("segment-midflip");
        let mut segment = Segment::create(dir.path(), 0).unwrap();
        for i in 0..5u8 {
            let chunk = blob(&[i; 50]);
            segment.append(&chunk.address(), &chunk).unwrap();
        }
        drop(segment);

        // Flip one payload byte of the first record.
        let path = dir.path().join(segment_file_name(0));
        let mut bytes = std::fs::read(&path).unwrap();
        let index = SEGMENT_HEADER_LEN as usize + 40;
        bytes[index] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let mut reopened = Segment::open(dir.path(), 0).unwrap();
        assert!(matches!(
            reopened.scan(true),
            Err(StorageError::SegmentCorrupt { .. })
        ));
    }

    #[test]
    fn segment_file_names_roundtrip() {
        assert_eq!(segment_file_name(7), "seg-0000000007.spitz");
        assert_eq!(parse_segment_file_name("seg-0000000007.spitz"), Some(7));
        assert_eq!(parse_segment_file_name("seg-x.spitz"), None);
        assert_eq!(parse_segment_file_name("other"), None);
    }
}
