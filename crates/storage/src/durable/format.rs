//! On-disk record format of the durable chunk store.
//!
//! A segment file is a short header followed by a sequence of records:
//!
//! ```text
//! segment  := magic(8) version(u32 BE) segment_id(u64 BE) record*
//! record   := payload_len(u32 BE)   -- length of the record payload only
//!             kind(u8)              -- ChunkKind tag, or ROOT_RECORD_TAG
//!             address(32)           -- chunk: SHA-256(kind || payload)
//!                                   -- root:  the published root hash
//!             payload(payload_len)  -- chunk: the chunk bytes
//!                                   -- root:  the UTF-8 root name
//!             crc(u32 BE)           -- CRC-32 over everything above
//! ```
//!
//! Two record kinds share the frame: **chunk records** carry content-addressed
//! chunk payloads, and **root records** publish a named root pointer directly
//! into the log ("root `name` now points at `address`"). Embedding root
//! publication in the log is what lets a commit become durable with a single
//! segment append instead of a manifest rewrite: the data records precede
//! their root record in the same append-only file, so a root record that
//! survives crash recovery proves every record before it survived too
//! (data-before-pointer by construction).
//!
//! The CRC covers the length prefix, kind tag, address and payload, so any
//! single-bit flip anywhere in a record is detected. The address is stored
//! (rather than recomputed) so that the open-time scan can rebuild the
//! address → location index without hashing every payload; `audit()` is the
//! pass that re-hashes.

use spitz_crypto::hash::HASH_LEN;
use spitz_crypto::Hash;

use crate::chunk::{Chunk, ChunkKind};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"SPITZSEG";

/// Current segment format version.
pub const SEGMENT_VERSION: u32 = 1;

/// Bytes of the segment header (magic + version + segment id).
pub const SEGMENT_HEADER_LEN: u64 = 8 + 4 + 8;

/// Fixed per-record overhead: length prefix, kind tag, address and CRC.
pub const RECORD_OVERHEAD: usize = 4 + 1 + HASH_LEN + 4;

/// Kind tag of a root-publication record (`b'R'`), disjoint from every
/// [`ChunkKind`] tag.
pub const ROOT_RECORD_TAG: u8 = b'R';

/// CRC-32 (IEEE 802.3, the polynomial used by gzip/zip) over `data`.
///
/// Implemented locally with a lazily built lookup table; the workspace has
/// no registry access, so no `crc32fast` dependency.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ table[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// Serialize the segment header for segment `id`.
pub fn encode_segment_header(id: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEGMENT_HEADER_LEN as usize);
    out.extend_from_slice(&SEGMENT_MAGIC);
    out.extend_from_slice(&SEGMENT_VERSION.to_be_bytes());
    out.extend_from_slice(&id.to_be_bytes());
    out
}

/// Parse and validate a segment header; returns the segment id.
pub fn decode_segment_header(bytes: &[u8]) -> Option<u64> {
    if bytes.len() < SEGMENT_HEADER_LEN as usize || bytes[..8] != SEGMENT_MAGIC {
        return None;
    }
    let version = u32::from_be_bytes(bytes[8..12].try_into().ok()?);
    if version != SEGMENT_VERSION {
        return None;
    }
    Some(u64::from_be_bytes(bytes[12..20].try_into().ok()?))
}

/// Assemble a record frame from its tag, address and payload, appending the
/// trailing CRC.
fn encode_frame(tag: u8, address: &Hash, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_OVERHEAD + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.push(tag);
    out.extend_from_slice(address.as_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_be_bytes());
    out
}

/// Serialize one chunk record (including its trailing CRC).
pub fn encode_record(address: &Hash, chunk: &Chunk) -> Vec<u8> {
    encode_frame(chunk.kind().tag(), address, chunk.data())
}

/// Serialize one root-publication record: "root `name` now points at
/// `hash`".
pub fn encode_root_record(name: &str, hash: &Hash) -> Vec<u8> {
    encode_frame(ROOT_RECORD_TAG, hash, name.as_bytes())
}

/// Encoded length of the root record [`encode_root_record`] produces for
/// `name` (used by crash tests to compute truncation points).
pub fn root_record_len(name: &str) -> usize {
    RECORD_OVERHEAD + name.len()
}

/// What a decoded record carries.
#[derive(Debug)]
pub enum RecordBody {
    /// A content-addressed chunk.
    Chunk(Chunk),
    /// A root publication: the record's address field is the new value of
    /// the named root pointer.
    Root {
        /// Name of the published root pointer.
        name: String,
    },
}

/// A record decoded from a segment file.
#[derive(Debug)]
pub struct DecodedRecord {
    /// The address stored in the frame: the chunk's content address, or the
    /// published root hash.
    pub address: Hash,
    /// The decoded record body.
    pub body: RecordBody,
}

/// Why decoding a record failed.
#[derive(Debug, PartialEq, Eq)]
pub enum RecordError {
    /// Fewer bytes remain than the record claims to span — a torn write if
    /// it happens at the tail of the last segment, corruption otherwise.
    Truncated,
    /// The CRC did not match the record bytes.
    BadCrc,
    /// The kind tag is neither a known [`ChunkKind`] nor
    /// [`ROOT_RECORD_TAG`].
    BadKind(u8),
    /// A root record's name payload is not valid UTF-8.
    BadRootName,
}

/// Decode the record starting at `bytes[0]`; on success also returns the
/// total encoded length so the caller can advance its cursor.
pub fn decode_record(bytes: &[u8]) -> Result<(DecodedRecord, usize), RecordError> {
    if bytes.len() < RECORD_OVERHEAD {
        return Err(RecordError::Truncated);
    }
    let payload_len = u32::from_be_bytes(bytes[..4].try_into().unwrap()) as usize;
    let total = RECORD_OVERHEAD + payload_len;
    if bytes.len() < total {
        return Err(RecordError::Truncated);
    }
    let body = &bytes[..total - 4];
    let stored_crc = u32::from_be_bytes(bytes[total - 4..total].try_into().unwrap());
    if crc32(body) != stored_crc {
        return Err(RecordError::BadCrc);
    }
    let tag = bytes[4];
    let mut address = [0u8; HASH_LEN];
    address.copy_from_slice(&bytes[5..5 + HASH_LEN]);
    let payload = &bytes[5 + HASH_LEN..total - 4];
    let body = if tag == ROOT_RECORD_TAG {
        RecordBody::Root {
            name: String::from_utf8(payload.to_vec()).map_err(|_| RecordError::BadRootName)?,
        }
    } else {
        let kind = ChunkKind::from_tag(tag).ok_or(RecordError::BadKind(tag))?;
        RecordBody::Chunk(Chunk::new(kind, payload.to_vec()))
    };
    Ok((
        DecodedRecord {
            address: Hash::from_bytes(address),
            body,
        },
        total,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_roundtrip() {
        let chunk = Chunk::new(ChunkKind::Blob, b"payload bytes".to_vec());
        let addr = chunk.address();
        let encoded = encode_record(&addr, &chunk);
        assert_eq!(encoded.len(), RECORD_OVERHEAD + chunk.len());
        let (decoded, consumed) = decode_record(&encoded).unwrap();
        assert_eq!(consumed, encoded.len());
        assert_eq!(decoded.address, addr);
        match decoded.body {
            RecordBody::Chunk(c) => assert_eq!(c, chunk),
            other => panic!("expected a chunk record, got {other:?}"),
        }
    }

    #[test]
    fn root_record_roundtrip() {
        let hash = spitz_crypto::sha256(b"head block");
        let encoded = encode_root_record("spitz/ledger/head", &hash);
        assert_eq!(encoded.len(), root_record_len("spitz/ledger/head"));
        let (decoded, consumed) = decode_record(&encoded).unwrap();
        assert_eq!(consumed, encoded.len());
        assert_eq!(decoded.address, hash);
        match decoded.body {
            RecordBody::Root { name } => assert_eq!(name, "spitz/ledger/head"),
            other => panic!("expected a root record, got {other:?}"),
        }
    }

    #[test]
    fn root_tag_is_disjoint_from_every_chunk_kind() {
        for kind in [
            ChunkKind::Blob,
            ChunkKind::Meta,
            ChunkKind::IndexNode,
            ChunkKind::Commit,
            ChunkKind::Block,
            ChunkKind::Cell,
        ] {
            assert_ne!(kind.tag(), ROOT_RECORD_TAG);
        }
        assert_eq!(ChunkKind::from_tag(ROOT_RECORD_TAG), None);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let chunk = Chunk::new(ChunkKind::Meta, b"abcdef".to_vec());
        let encoded = encode_record(&chunk.address(), &chunk);
        for byte in 0..encoded.len() {
            for bit in 0..8 {
                let mut bad = encoded.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_record(&bad).is_err(),
                    "flip of byte {byte} bit {bit} went unnoticed"
                );
            }
        }
    }

    #[test]
    fn truncated_records_report_truncation() {
        let chunk = Chunk::new(ChunkKind::Blob, vec![7u8; 64]);
        let encoded = encode_record(&chunk.address(), &chunk);
        for cut in [0, 3, RECORD_OVERHEAD - 1, encoded.len() - 1] {
            assert_eq!(
                decode_record(&encoded[..cut]).unwrap_err(),
                RecordError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn segment_header_roundtrip() {
        let header = encode_segment_header(42);
        assert_eq!(header.len() as u64, SEGMENT_HEADER_LEN);
        assert_eq!(decode_segment_header(&header), Some(42));
        let mut bad = header.clone();
        bad[0] ^= 1;
        assert_eq!(decode_segment_header(&bad), None);
    }
}
