//! Durable, crash-recoverable chunk storage.
//!
//! [`DurableChunkStore`] implements the same [`ChunkStore`] trait as the
//! in-memory store, but persists every chunk to append-only *segment files*
//! in a store directory, so a database reopened from the same path
//! reproduces its exact records-roots, chain head and digest.
//!
//! # On-disk layout
//!
//! ```text
//! store-dir/
//! ├── MANIFEST                 segment order, stats snapshot, root pointers
//! ├── seg-0000000000.spitz     sealed segment (append-only, never rewritten)
//! ├── seg-0000000001.spitz     sealed segment
//! └── seg-0000000002.spitz     active segment (appends go here)
//!
//! segment  := magic "SPITZSEG" | version u32 | segment_id u64 | record*
//! record   := payload_len u32  -- big endian
//!           | kind u8          -- ChunkKind tag
//!           | address [32]     -- SHA-256(kind || payload)
//!           | payload [payload_len]
//!           | crc u32          -- CRC-32 over all of the above
//! ```
//!
//! # Recovery rules
//!
//! Opening a store scans every segment in manifest order and rebuilds the
//! in-memory address → (segment, offset) index:
//!
//! 1. A record that is cut short **at the tail of the last segment** — or
//!    whose CRC fails there — is the remnant of an append interrupted by a
//!    crash. It is dropped and the file truncated back to the last intact
//!    record; everything before it survives.
//! 2. The same damage anywhere else cannot be a torn append (appends only
//!    ever race the tail), so the open fails with
//!    [`StorageError::SegmentCorrupt`] — tampering or media corruption.
//!    One inherent ambiguity (shared with every length-prefixed WAL): a
//!    corrupted *length prefix* whose claimed extent reaches past the end
//!    of the last segment is indistinguishable from a torn append and is
//!    dropped along with everything after it. For ledger data this is
//!    still loud, not silent — the head root pointer stops resolving and
//!    the reopen fails.
//! 3. A record whose CRC passes but whose stored address does not hash to
//!    its contents is caught by [`ChunkStore::audit`] (and by
//!    [`crate::store::VerifyingStore`] at read time).
//! 4. `chunk_count` and `physical_bytes` are recomputed from the scan and
//!    are always exact. `logical_bytes`, `dedup_hits` and `reads` come from
//!    the manifest snapshot: exact after a clean shutdown, a lower bound
//!    after a crash (`logical_bytes` is clamped to at least
//!    `physical_bytes`).
//! 5. Segment files present on disk but missing from the manifest (a crash
//!    between rotation and the manifest rewrite) are adopted in id order.
//!
//! Writes go to the active segment; when it exceeds
//! [`DurableConfig::segment_target_bytes`] it is sealed and a new segment
//! is started. An optional byte-budgeted [`cache::ChunkCache`] keeps hot
//! chunks (index roots, recent blocks) resident so verified reads stay near
//! in-memory speed.

pub mod cache;
pub mod format;
pub mod manifest;
pub mod segment;

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::RwLock;
use spitz_crypto::Hash;

use crate::chunk::{Chunk, ChunkKind};
use crate::error::StorageError;
use crate::store::{ChunkStore, StoreStats};
use crate::Result;

use cache::ChunkCache;
use manifest::Manifest;
use segment::{parse_segment_file_name, ChunkLocation, Segment};

/// Tuning knobs of a [`DurableChunkStore`].
#[derive(Debug, Clone, Copy)]
pub struct DurableConfig {
    /// Seal the active segment and rotate once it grows past this size.
    pub segment_target_bytes: u64,
    /// Byte budget of the read-through chunk cache; 0 disables caching.
    pub cache_capacity_bytes: usize,
    /// `fsync` the active segment after every put (safest, slowest). With
    /// the default `false`, durability is up to the OS page cache until
    /// [`DurableChunkStore::flush`] or drop.
    pub fsync_each_put: bool,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            segment_target_bytes: 64 * 1024 * 1024,
            cache_capacity_bytes: 16 * 1024 * 1024,
            fsync_each_put: false,
        }
    }
}

struct DurableInner {
    index: HashMap<Hash, ChunkLocation>,
    /// All open segments in id order; the last one is active.
    segments: Vec<Segment>,
    next_segment: u64,
    stats: StoreStats,
    roots: std::collections::BTreeMap<String, Hash>,
    cache: ChunkCache,
    /// Bytes dropped as torn tail records during the last open.
    torn_bytes_recovered: u64,
}

/// A crash-recoverable [`ChunkStore`] over append-only segment files.
pub struct DurableChunkStore {
    dir: PathBuf,
    config: DurableConfig,
    inner: RwLock<DurableInner>,
}

impl DurableChunkStore {
    /// Open (or create) a store in `dir` with the default configuration.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open_with_config(dir, DurableConfig::default())
    }

    /// Open (or create) a store in `dir`, already wrapped in an [`Arc`].
    pub fn shared(dir: impl AsRef<Path>) -> Result<Arc<Self>> {
        Self::open(dir).map(Arc::new)
    }

    /// Open (or create) a store in `dir` with explicit tuning.
    pub fn open_with_config(dir: impl AsRef<Path>, config: DurableConfig) -> Result<Self> {
        if config.segment_target_bytes == 0 {
            return Err(StorageError::InvalidConfig(
                "segment_target_bytes must be positive".into(),
            ));
        }
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| StorageError::io(&dir, e))?;

        let manifest = Manifest::load(&dir)?.unwrap_or_default();
        let segment_ids = discover_segments(&dir, &manifest)?;

        let mut inner = DurableInner {
            index: HashMap::new(),
            segments: Vec::new(),
            next_segment: 0,
            stats: manifest.stats,
            roots: manifest.roots.clone(),
            cache: ChunkCache::new(config.cache_capacity_bytes),
            torn_bytes_recovered: 0,
        };

        // Rebuild the address index by scanning every segment; only the
        // last segment may carry a torn tail (recovery rule 1/2 above).
        inner.stats.chunk_count = 0;
        inner.stats.physical_bytes = 0;
        for (position, &id) in segment_ids.iter().enumerate() {
            let mut segment = Segment::open(&dir, id)?;
            let is_last = position + 1 == segment_ids.len();
            let outcome = segment.scan(is_last)?;
            inner.torn_bytes_recovered += outcome.torn_bytes;
            for (address, location) in outcome.records {
                // Later duplicates of an address are re-appends of identical
                // content; keep the first location.
                if inner.index.try_insert_location(address, location) {
                    let chunk_bytes = location.len as u64 - format::RECORD_OVERHEAD as u64;
                    inner.stats.chunk_count += 1;
                    inner.stats.physical_bytes +=
                        chunk_bytes + 1 + spitz_crypto::hash::HASH_LEN as u64;
                }
            }
            inner.segments.push(segment);
        }
        if inner.segments.is_empty() {
            inner.segments.push(Segment::create(&dir, 0)?);
        }
        inner.next_segment = inner.segments.last().map(|s| s.id + 1).unwrap_or(1);
        // A stale manifest can under-count logical writes after a crash;
        // every physical byte was a logical write at least once.
        inner.stats.logical_bytes = inner.stats.logical_bytes.max(inner.stats.physical_bytes);

        let store = DurableChunkStore {
            dir,
            config,
            inner: RwLock::new(inner),
        };
        store.write_manifest(&store.inner.write())?;
        Ok(store)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configuration the store was opened with.
    pub fn config(&self) -> DurableConfig {
        self.config
    }

    /// Bytes dropped as torn tail records while opening (crash recovery).
    pub fn torn_bytes_recovered(&self) -> u64 {
        self.inner.read().torn_bytes_recovered
    }

    /// Number of segment files (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.inner.read().segments.len()
    }

    /// `(hits, misses)` of the read-through cache since open.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.inner.read().cache.hit_stats()
    }

    /// Total number of distinct chunks of a particular kind (diagnostics,
    /// mirrors [`crate::store::InMemoryChunkStore::count_kind`]).
    pub fn count_kind(&self, kind: ChunkKind) -> usize {
        self.inner
            .read()
            .index
            .values()
            .filter(|location| location.kind == kind)
            .count()
    }

    /// Force segment contents and the manifest to stable storage.
    pub fn flush(&self) -> Result<()> {
        let inner = self.inner.write();
        if let Some(active) = inner.segments.last() {
            active.sync()?;
        }
        self.write_manifest(&inner)
    }

    fn write_manifest(&self, inner: &DurableInner) -> Result<()> {
        Manifest {
            segments: inner.segments.iter().map(|s| s.id).collect(),
            next_segment: inner.next_segment,
            stats: inner.stats,
            roots: inner.roots.clone(),
        }
        .store(&self.dir)
    }

    /// Read a chunk from its segment. `cache` controls whether the chunk is
    /// retained in the read cache — point reads want that, but a bulk scan
    /// like [`ChunkStore::audit`] would flush the hot working set.
    fn read_location(
        &self,
        inner: &mut DurableInner,
        address: &Hash,
        location: ChunkLocation,
        cache: bool,
    ) -> Result<Arc<Chunk>> {
        let position = inner
            .segments
            .binary_search_by_key(&location.segment, |s| s.id)
            .map_err(|_| StorageError::ChunkNotFound(*address))?;
        let chunk = Arc::new(inner.segments[position].read(&location)?);
        if cache {
            inner.cache.insert(*address, Arc::clone(&chunk));
        }
        Ok(chunk)
    }
}

impl ChunkStore for DurableChunkStore {
    /// Store a chunk, appending it to the active segment.
    ///
    /// The `ChunkStore` trait keeps `put` infallible (content addressing
    /// cannot fail), so an I/O failure of the underlying append — disk
    /// full, EIO — panics rather than silently dropping the chunk. A
    /// fallible `try_put` escape hatch is tracked as a ROADMAP follow-up.
    fn put(&self, chunk: Chunk) -> Hash {
        let address = chunk.address();
        let mut inner = self.inner.write();
        inner.stats.logical_bytes += chunk.storage_size() as u64;
        if inner.index.contains_key(&address) {
            inner.stats.dedup_hits += 1;
            return address;
        }

        let active = inner.segments.last_mut().expect("active segment exists");
        let location = active
            .append(&address, &chunk)
            .expect("append to active segment");
        inner.stats.chunk_count += 1;
        inner.stats.physical_bytes += chunk.storage_size() as u64;
        inner.index.insert(address, location);
        inner.cache.insert(address, Arc::new(chunk));

        let rotate = inner.segments.last().expect("active").len >= self.config.segment_target_bytes;
        if rotate {
            let id = inner.next_segment;
            inner.next_segment += 1;
            if let Some(sealed) = inner.segments.last() {
                let _ = sealed.sync();
            }
            let segment = Segment::create(&self.dir, id).expect("create rotated segment");
            inner.segments.push(segment);
            let _ = self.write_manifest(&inner);
        } else if self.config.fsync_each_put {
            let _ = inner.segments.last().expect("active").sync();
        }
        address
    }

    fn get(&self, address: &Hash) -> Result<Arc<Chunk>> {
        let mut inner = self.inner.write();
        inner.stats.reads += 1;
        if let Some(chunk) = inner.cache.get(address) {
            return Ok(chunk);
        }
        let location = *inner
            .index
            .get(address)
            .ok_or(StorageError::ChunkNotFound(*address))?;
        self.read_location(&mut inner, address, location, true)
    }

    fn contains(&self, address: &Hash) -> bool {
        self.inner.read().index.contains_key(address)
    }

    fn stats(&self) -> StoreStats {
        self.inner.read().stats
    }

    fn audit(&self) -> Vec<Hash> {
        let mut inner = self.inner.write();
        let locations: Vec<(Hash, ChunkLocation)> =
            inner.index.iter().map(|(a, l)| (*a, *l)).collect();
        let mut failures = Vec::new();
        for (address, location) in locations {
            match self.read_location(&mut inner, &address, location, false) {
                Ok(chunk) if chunk.address() == address => {}
                _ => failures.push(address),
            }
        }
        failures
    }

    fn set_root(&self, name: &str, hash: Hash) {
        let mut inner = self.inner.write();
        inner.roots.insert(name.to_string(), hash);
        // Data before pointer: fsync the active segment so every chunk the
        // new root can reference is durable before the manifest publishing
        // the root hits disk. Without this ordering a crash could persist
        // the manifest rename but not the referenced tail chunk, leaving a
        // head pointer that never resolves again. (Sealed segments were
        // synced at rotation.)
        if let Some(active) = inner.segments.last() {
            let _ = active.sync();
        }
        let _ = self.write_manifest(&inner);
    }

    fn root(&self, name: &str) -> Option<Hash> {
        self.inner.read().roots.get(name).copied()
    }
}

impl Drop for DurableChunkStore {
    fn drop(&mut self) {
        // Best-effort durability on clean shutdown; crash recovery covers
        // the rest.
        let _ = self.flush();
    }
}

impl std::fmt::Debug for DurableChunkStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableChunkStore")
            .field("dir", &self.dir)
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Union of the manifest's segment list and the segment files actually on
/// disk (adopting rotations the manifest missed), in id order.
fn discover_segments(dir: &Path, manifest: &Manifest) -> Result<Vec<u64>> {
    let mut ids: Vec<u64> = manifest.segments.clone();
    let entries = std::fs::read_dir(dir).map_err(|e| StorageError::io(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StorageError::io(dir, e))?;
        if let Some(id) = entry.file_name().to_str().and_then(parse_segment_file_name) {
            ids.push(id);
        }
    }
    ids.sort_unstable();
    ids.dedup();
    Ok(ids)
}

/// Tiny extension so the open-time scan can count only first occurrences.
trait TryInsertLocation {
    fn try_insert_location(&mut self, address: Hash, location: ChunkLocation) -> bool;
}

impl TryInsertLocation for HashMap<Hash, ChunkLocation> {
    fn try_insert_location(&mut self, address: Hash, location: ChunkLocation) -> bool {
        use std::collections::hash_map::Entry;
        match self.entry(address) {
            Entry::Occupied(_) => false,
            Entry::Vacant(slot) => {
                slot.insert(location);
                true
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A uniquely named temp directory removed on drop (the workspace has
    /// no `tempfile` dependency).
    pub struct TempDir(PathBuf);

    impl TempDir {
        pub fn new(label: &str) -> TempDir {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path =
                std::env::temp_dir().join(format!("spitz-{label}-{}-{n}", std::process::id()));
            std::fs::create_dir_all(&path).expect("create temp dir");
            TempDir(path)
        }

        pub fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::TempDir;

    fn blob(data: &[u8]) -> Chunk {
        Chunk::new(ChunkKind::Blob, data.to_vec())
    }

    fn small_config() -> DurableConfig {
        DurableConfig {
            segment_target_bytes: 4 * 1024,
            cache_capacity_bytes: 0,
            fsync_each_put: false,
        }
    }

    #[test]
    fn put_get_roundtrip_and_dedup() {
        let dir = TempDir::new("durable-roundtrip");
        let store = DurableChunkStore::open(dir.path()).unwrap();
        let addr = store.put(blob(b"hello durable"));
        assert!(store.contains(&addr));
        assert_eq!(store.get(&addr).unwrap().data(), b"hello durable");

        for _ in 0..5 {
            assert_eq!(store.put(blob(b"hello durable")), addr);
        }
        let stats = store.stats();
        assert_eq!(stats.chunk_count, 1);
        assert_eq!(stats.dedup_hits, 5);
        assert!(stats.logical_bytes > stats.physical_bytes);
        assert!(store.audit().is_empty());

        let missing = spitz_crypto::sha256(b"absent");
        assert!(matches!(
            store.get(&missing),
            Err(StorageError::ChunkNotFound(_))
        ));
    }

    #[test]
    fn reopen_preserves_chunks_stats_and_roots() {
        let dir = TempDir::new("durable-reopen");
        let mut addresses = Vec::new();
        let head = spitz_crypto::sha256(b"chain head");
        let stats_before;
        {
            let store = DurableChunkStore::open_with_config(dir.path(), small_config()).unwrap();
            for i in 0..200u32 {
                addresses.push(store.put(blob(&i.to_be_bytes())));
            }
            store.put(blob(&0u32.to_be_bytes())); // one dedup hit
            store.set_root("ledger/head", head);
            stats_before = store.stats();
            assert!(store.segment_count() > 1, "rotation must have happened");
        }

        let store = DurableChunkStore::open_with_config(dir.path(), small_config()).unwrap();
        assert_eq!(store.torn_bytes_recovered(), 0);
        for (i, addr) in addresses.iter().enumerate() {
            let chunk = store.get(addr).unwrap();
            assert_eq!(chunk.data(), (i as u32).to_be_bytes());
        }
        assert_eq!(store.root("ledger/head"), Some(head));
        let stats = store.stats();
        assert_eq!(stats.chunk_count, stats_before.chunk_count);
        assert_eq!(stats.physical_bytes, stats_before.physical_bytes);
        assert_eq!(stats.logical_bytes, stats_before.logical_bytes);
        assert_eq!(stats.dedup_hits, stats_before.dedup_hits);
        assert_eq!(store.count_kind(ChunkKind::Blob), 200);
        assert!(store.audit().is_empty());
    }

    #[test]
    fn cache_serves_repeated_reads() {
        let dir = TempDir::new("durable-cache");
        let config = DurableConfig {
            cache_capacity_bytes: 1024 * 1024,
            ..small_config()
        };
        let store = DurableChunkStore::open_with_config(dir.path(), config).unwrap();
        let addr = store.put(blob(b"hot chunk"));
        for _ in 0..10 {
            store.get(&addr).unwrap();
        }
        let (hits, misses) = store.cache_stats();
        assert_eq!(misses, 0, "put is write-through so every read hits");
        assert_eq!(hits, 10);
    }

    #[test]
    fn concurrent_puts_deduplicate_on_disk() {
        let dir = TempDir::new("durable-concurrent");
        let store =
            Arc::new(DurableChunkStore::open_with_config(dir.path(), small_config()).unwrap());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    store.put(blob(&i.to_be_bytes()));
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let stats = store.stats();
        assert_eq!(stats.chunk_count, 200);
        assert_eq!(stats.dedup_hits, 3 * 200);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let dir = TempDir::new("durable-badconfig");
        let config = DurableConfig {
            segment_target_bytes: 0,
            ..DurableConfig::default()
        };
        assert!(matches!(
            DurableChunkStore::open_with_config(dir.path(), config),
            Err(StorageError::InvalidConfig(_))
        ));
    }
}
