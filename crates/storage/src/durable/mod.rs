//! Durable, crash-recoverable chunk storage.
//!
//! [`DurableChunkStore`] implements the same [`ChunkStore`] trait as the
//! in-memory store, but persists every chunk to append-only *segment files*
//! in a store directory, so a database reopened from the same path
//! reproduces its exact records-roots, chain head and digest.
//!
//! # On-disk layout
//!
//! ```text
//! store-dir/
//! ├── MANIFEST                 segment order, stats snapshot, root snapshot
//! ├── seg-0000000000.spitz     sealed segment (append-only, never rewritten)
//! ├── seg-0000000001.spitz     sealed segment
//! └── seg-0000000002.spitz     active segment (appends go here)
//!
//! segment  := magic "SPITZSEG" | version u32 | segment_id u64 | record*
//! record   := payload_len u32  -- big endian
//!           | kind u8          -- ChunkKind tag, or the root-record tag 'R'
//!           | address [32]     -- chunk: SHA-256(kind || payload)
//!                              -- root:  the published root hash
//!           | payload [payload_len]
//!           | crc u32          -- CRC-32 over all of the above
//! ```
//!
//! # Log-embedded root publication
//!
//! Named root pointers (the ledger chain head) are published as **root
//! records appended to the active segment**, not by rewriting the manifest.
//! Because a root record lands in the same append-only file *after* the
//! chunks it references, the data-before-pointer invariant holds by
//! construction: crash recovery only replays a root record if it is intact,
//! and an intact record at offset X proves every record before X in that
//! segment is intact too (sealed segments were fsynced at rotation). The
//! manifest is rewritten only on rotation and clean shutdown, where its root
//! snapshot is a *starting point* that segment replay then brings up to
//! date — so a crash after N un-manifested commits recovers to the last
//! root record that reached the disk.
//!
//! When a commit must actually be on stable storage is a policy question
//! that lives one layer up, in `spitz-ledger`'s `CommitPipeline`
//! (`DurabilityPolicy::{Strict, Grouped, Os}`); this store only promises
//! that [`ChunkStore::sync`] orders everything appended so far before any
//! later root record, and that recovery lands on the newest root whose log
//! prefix survived. The trade-offs, briefly:
//!
//! * **Strict** — one `fsync` per commit batch, after the root record. An
//!   acknowledged commit is never lost; slowest for a single writer.
//! * **Grouped** — commits are acknowledged at *publication* (root record
//!   appended) and fsynced together at least every `max_delay`/`max_writes`.
//!   A crash loses at most that window; recovery is still clean because the
//!   log prefix property above holds at every byte.
//! * **Os** — durability is left to the page cache (fastest; a crash loses
//!   whatever the OS had not written back, recovery behaves as for Grouped).
//!
//! # Recovery rules
//!
//! Opening a store scans every segment in manifest order and rebuilds the
//! in-memory address → (segment, offset) index plus the root-pointer map:
//!
//! 1. A record that is cut short **at the tail of the last segment** — or
//!    whose CRC fails there — is the remnant of an append interrupted by a
//!    crash. It is dropped and the file truncated back to the last intact
//!    record; everything before it survives. A torn *root* record is
//!    dropped the same way, which is exactly what makes grouped commits
//!    safe: the store falls back to the previous durable root.
//! 2. The same damage anywhere else cannot be a torn append (appends only
//!    ever race the tail), so the open fails with
//!    [`StorageError::SegmentCorrupt`] — tampering or media corruption.
//!    One inherent ambiguity (shared with every length-prefixed WAL): a
//!    corrupted *length prefix* whose claimed extent reaches past the end
//!    of the last segment is indistinguishable from a torn append and is
//!    dropped along with everything after it. For ledger data this is
//!    still loud, not silent — the head root pointer stops resolving and
//!    the reopen fails.
//! 3. A record whose CRC passes but whose stored address does not hash to
//!    its contents is caught by [`ChunkStore::audit`] (and by
//!    [`crate::store::VerifyingStore`] at read time).
//! 4. Root pointers start from the manifest snapshot and are then
//!    overwritten by every intact root record, replayed in segment order —
//!    the final state is the newest published root that survived.
//! 5. `chunk_count` and `physical_bytes` are recomputed from the scan and
//!    are always exact. `logical_bytes`, `dedup_hits` and `reads` come from
//!    the manifest snapshot: exact after a clean shutdown, a lower bound
//!    after a crash (`logical_bytes` is clamped to at least
//!    `physical_bytes`).
//! 6. Segment files present on disk but missing from the manifest (a crash
//!    between rotation and the manifest rewrite) are adopted in id order.
//!
//! Writes go to the active segment; when it exceeds
//! [`DurableConfig::segment_target_bytes`] it is sealed and a new segment
//! is started. An optional byte-budgeted [`cache::ChunkCache`] keeps hot
//! chunks (index roots, recent blocks) resident so verified reads stay near
//! in-memory speed.
//!
//! # Concurrency
//!
//! The store is built so the hot read path never touches the writer lock:
//! statistics are atomics, the read cache has its own mutex, and cold reads
//! take the inner lock only briefly (shared) to resolve an address before
//! reading through a per-segment handle. Steady-state `fsync` calls
//! ([`ChunkStore::sync`], `fsync_each_put`) go through dedicated file
//! handles held outside every lock, so they stall neither readers nor the
//! cache. The one exception is the rotation fsync of a segment being
//! sealed: it runs under the writer lock *before* the successor segment is
//! created, because nothing may be appended after a sealed segment until
//! that segment is durable (a crash must only ever tear the *last*
//! segment). Rotation happens once per [`DurableConfig::segment_target_bytes`].
//!
//! # Compaction
//!
//! The log is append-only, so superseded index nodes, rolled-back blocks
//! and aborted staging chunks accumulate until
//! [`DurableChunkStore::compact_with`] sweeps them. The pass is mark-sweep
//! over *sealed* segments:
//!
//! 1. Every sealed segment becomes a **victim**; re-appends of
//!    victim-resident chunks start diverting to the active segment (see
//!    `DurableInner::compacting`) *before* the caller-supplied mark closure
//!    computes the live set, so a chunk resurrected mid-pass can never be
//!    lost.
//! 2. Live victim chunks are rewritten into fresh, fsynced output segments
//!    staged in a subdirectory (`compact-tmp/`), keeping the store
//!    directory's "only the last segment may be torn" invariant intact at
//!    every crash point.
//! 3. Under the writer lock: the active segment is sealed and fsynced like
//!    a rotation, the outputs are renamed into the store directory, a new
//!    active segment with the highest id is created, and the index is
//!    repointed (entries whose only copy was unreachable are dropped).
//!    Readers that already resolved a victim location keep their
//!    `Arc<Segment>` and its open file descriptor, so they are never
//!    blocked or broken.
//! 4. The manifest — now listing the outputs and carrying the victims as
//!    `condemned` — is made durable (fsync + rename + directory fsync);
//!    **only then** are the victim files deleted. A crash anywhere earlier
//!    reopens from the old manifest with the victims intact (outputs are
//!    redundant copies, adopted harmlessly or discarded); a crash after the
//!    manifest but before deletion has the open path delete the condemned
//!    files itself.

pub mod cache;
pub mod format;
pub mod io;
pub mod manifest;
pub mod segment;

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use spitz_crypto::Hash;
use spitz_obs::TelemetryHandle;

use crate::chunk::{Chunk, ChunkKind};
use crate::error::{IoErrorKind, StorageError};
use crate::store::{ChunkStore, HealthState, StoreStats};
use crate::Result;

use cache::ChunkCache;
use io::{real_io, SegmentIoHandle};
use manifest::Manifest;
use segment::{parse_segment_file_name, segment_file_name, ChunkLocation, Segment};

/// Subdirectory where compaction stages its output segments until the swap.
const COMPACT_STAGING_DIR: &str = "compact-tmp";

/// Subdirectory where scrub moves corrupt segment files. Unlike condemned
/// segments (deleted — their contents live on elsewhere), quarantined files
/// are *evidence* of corruption and are preserved for offline forensics.
const QUARANTINE_DIR: &str = "quarantine";

/// Maximum retries of a transiently-failing append or fsync (on top of the
/// initial attempt), with 1/2/4 ms exponential backoff between them.
const MAX_IO_RETRIES: u32 = 3;

/// Consecutive clean write-path operations after which a `Degraded` store
/// recovers to `Healthy` — the transient-error burst that degraded it has
/// demonstrably subsided. `ReadOnly` never auto-recovers (the causes —
/// ENOSPC, possible torn tails, lost chunks — are not transient); a reopen
/// is the only way back.
pub const DEGRADED_RECOVERY_OPS: u64 = 64;

/// Tuning knobs of a [`DurableChunkStore`].
#[derive(Debug, Clone, Copy)]
pub struct DurableConfig {
    /// Seal the active segment and rotate once it grows past this size.
    pub segment_target_bytes: u64,
    /// Byte budget of the read-through chunk cache; 0 disables caching.
    pub cache_capacity_bytes: usize,
    /// `fsync` the active segment after every put (safest, slowest). With
    /// the default `false`, durability is up to the OS page cache until
    /// [`ChunkStore::sync`], [`DurableChunkStore::flush`] or drop — or up
    /// to the commit pipeline's `DurabilityPolicy` when one is driving the
    /// store.
    pub fsync_each_put: bool,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            segment_target_bytes: 64 * 1024 * 1024,
            cache_capacity_bytes: 16 * 1024 * 1024,
            fsync_each_put: false,
        }
    }
}

/// [`StoreStats`] held as atomics so readers never take a lock to bump a
/// counter.
#[derive(Debug, Default)]
struct AtomicStats {
    chunk_count: AtomicU64,
    physical_bytes: AtomicU64,
    logical_bytes: AtomicU64,
    dedup_hits: AtomicU64,
    reads: AtomicU64,
    /// Reachable bytes as of the last mark pass; 0 before the first one.
    live_bytes: AtomicU64,
}

impl AtomicStats {
    fn load(&self) -> StoreStats {
        StoreStats {
            chunk_count: self.chunk_count.load(Ordering::Relaxed),
            physical_bytes: self.physical_bytes.load(Ordering::Relaxed),
            logical_bytes: self.logical_bytes.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            // Derived from the segment files at query time, never stored.
            disk_bytes: 0,
            live_bytes: self.live_bytes.load(Ordering::Relaxed),
        }
    }

    fn store(&self, stats: StoreStats) {
        self.chunk_count.store(stats.chunk_count, Ordering::Relaxed);
        self.physical_bytes
            .store(stats.physical_bytes, Ordering::Relaxed);
        self.logical_bytes
            .store(stats.logical_bytes, Ordering::Relaxed);
        self.dedup_hits.store(stats.dedup_hits, Ordering::Relaxed);
        self.reads.store(stats.reads, Ordering::Relaxed);
        self.live_bytes.store(stats.live_bytes, Ordering::Relaxed);
    }
}

/// Bytes a chunk accounts for in `physical_bytes`, recovered from its
/// record length (`Chunk::storage_size` = payload + kind byte + address).
fn location_storage_size(location: &ChunkLocation) -> u64 {
    location.len as u64 - format::RECORD_OVERHEAD as u64 + 1 + spitz_crypto::hash::HASH_LEN as u64
}

struct DurableInner {
    index: HashMap<Hash, ChunkLocation>,
    /// All open segments in id order; the last one is active. `Arc` so the
    /// lock can be dropped before slow file I/O (reads, fsync) happens.
    segments: Vec<Arc<Segment>>,
    next_segment: u64,
    roots: std::collections::BTreeMap<String, Hash>,
    /// Bytes dropped as torn tail records during the last open.
    torn_bytes_recovered: u64,
    /// Victims of a completed compaction whose files may still exist: the
    /// durable manifest no longer lists them as segments, but the process
    /// may die between that manifest landing and the files being deleted.
    /// The open path deletes them and never adopts them.
    condemned: Vec<u64>,
    /// While a compaction pass runs: the ids of its victim segments.
    /// `try_put` consults this so a dedup hit on a chunk whose only copy
    /// sits in a victim re-appends the chunk to the active segment instead
    /// of reviving a location the sweep may be about to delete.
    compacting: Option<HashSet<u64>>,
    /// Segments a scrub excised whose files have not yet been moved into
    /// the quarantine directory. Mirrors `condemned`: the durable manifest
    /// no longer lists them as segments, and the open path finishes the
    /// move if this process dies first.
    quarantined: Vec<u64>,
}

/// An fsync slower than this is rare enough — and operationally important
/// enough — to land in the telemetry event ring.
const SLOW_FSYNC_NANOS: u64 = 50_000_000;

/// Storage instruments, resolved once at open so the hot paths touch
/// pre-bound `Arc`s instead of the registry maps. Every instrument is
/// inert when the store was opened without telemetry.
struct StoreObs {
    append_nanos: Arc<spitz_obs::Histogram>,
    read_nanos: Arc<spitz_obs::Histogram>,
    fsync_nanos: Arc<spitz_obs::Histogram>,
    cache_hits: Arc<spitz_obs::Counter>,
    cache_misses: Arc<spitz_obs::Counter>,
    compactions: Arc<spitz_obs::Counter>,
    space_amp: Arc<spitz_obs::FloatGauge>,
    /// Current [`HealthState`] as 0/1/2 (healthy/degraded/read-only).
    health: Arc<spitz_obs::Gauge>,
    io_retries: Arc<spitz_obs::Counter>,
    io_retries_exhausted: Arc<spitz_obs::Counter>,
    scrub_passes: Arc<spitz_obs::Counter>,
    scrub_corrupt_segments: Arc<spitz_obs::Counter>,
    scrub_salvaged_chunks: Arc<spitz_obs::Counter>,
    scrub_lost_chunks: Arc<spitz_obs::Counter>,
    telemetry: TelemetryHandle,
}

impl StoreObs {
    fn new(telemetry: TelemetryHandle) -> StoreObs {
        StoreObs {
            append_nanos: telemetry.histogram("storage.append_nanos"),
            read_nanos: telemetry.histogram("storage.read_nanos"),
            fsync_nanos: telemetry.histogram("storage.fsync_nanos"),
            cache_hits: telemetry.counter("storage.cache.hits"),
            cache_misses: telemetry.counter("storage.cache.misses"),
            compactions: telemetry.counter("storage.compactions"),
            space_amp: telemetry.float_gauge("storage.space_amplification"),
            health: telemetry.gauge("storage.health"),
            io_retries: telemetry.counter("storage.io_retries"),
            io_retries_exhausted: telemetry.counter("storage.io_retries_exhausted"),
            scrub_passes: telemetry.counter("storage.scrub.passes"),
            scrub_corrupt_segments: telemetry.counter("storage.scrub.corrupt_segments"),
            scrub_salvaged_chunks: telemetry.counter("storage.scrub.salvaged_chunks"),
            scrub_lost_chunks: telemetry.counter("storage.scrub.lost_chunks"),
            telemetry,
        }
    }
}

/// A crash-recoverable [`ChunkStore`] over append-only segment files.
pub struct DurableChunkStore {
    dir: PathBuf,
    config: DurableConfig,
    obs: StoreObs,
    inner: RwLock<DurableInner>,
    /// The read cache behind its own lock, so hot reads contend only here.
    cache: Mutex<ChunkCache>,
    stats: AtomicStats,
    /// Id of the oldest segment that may hold data not yet on stable
    /// storage. [`ChunkStore::sync`] fsyncs every segment from here up —
    /// never just the active one — so a commit acknowledged right after a
    /// rotation cannot race the (out-of-lock) fsync of the sealed segment:
    /// the mark only advances past a segment once an fsync of it has
    /// completed. Monotone non-decreasing.
    first_unsynced: AtomicU64,
    /// Serializes compaction *and scrub* passes: at most one of either runs
    /// at a time (both rewrite the segment set and share the staging
    /// directory).
    compaction: Mutex<()>,
    /// Serializes manifest rewrites. The state snapshot is taken *inside*
    /// this lock, so a slow rewrite can never clobber the file with an
    /// older view than one that already landed (rotation racing compaction,
    /// two rotations racing each other).
    manifest_lock: Mutex<()>,
    /// Fault-injection seam threaded into every segment this store opens or
    /// creates; [`io::RealIo`] in production.
    io: SegmentIoHandle,
    /// Current [`HealthState`] as 0/1/2. Raised monotonically
    /// (`fetch_max`) by write-path failures; the one sanctioned reverse
    /// transition is Degraded → Healthy after
    /// [`DEGRADED_RECOVERY_OPS`] consecutive clean write-path operations
    /// (see [`DurableChunkStore::note_write_success`]). ReadOnly is final
    /// within a process lifetime; reopening resets.
    health: AtomicU8,
    /// Why the store degraded (empty while healthy) — carried into the
    /// [`StorageError::ReadOnly`] writes fail with.
    health_reason: Mutex<String>,
    /// Consecutive write-path operations that completed without any I/O
    /// failure. Zeroed by every write-path failure; when it reaches
    /// [`DEGRADED_RECOVERY_OPS`] while the store is `Degraded`, health
    /// recovers to `Healthy` (transient-error rates have subsided).
    clean_ops: AtomicU64,
}

/// Outcome of a completed [`DurableChunkStore::scrub`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Sealed segments whose CRCs were verified.
    pub segments_scanned: u64,
    /// Segments found corrupt and moved into the quarantine directory.
    pub quarantined_segments: Vec<u64>,
    /// Indexed chunks rewritten intact out of corrupt segments.
    pub chunks_salvaged: u64,
    /// Indexed chunks whose records were damaged beyond salvage; their
    /// addresses now resolve to [`StorageError::ChunkNotFound`] and the
    /// store is read-only.
    pub chunks_lost: u64,
}

/// Outcome of a completed [`DurableChunkStore::compact_with`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Sealed segments that were rewritten and deleted.
    pub victim_segments: Vec<u64>,
    /// Fresh segments the surviving chunks were rewritten into.
    pub output_segments: Vec<u64>,
    /// Live chunks copied out of the victims.
    pub live_chunks_rewritten: u64,
    /// Unreachable chunks dropped with the victims.
    pub chunks_dropped: u64,
    /// Segment-file bytes written while rewriting live chunks.
    pub bytes_rewritten: u64,
    /// Net segment-file bytes returned to the filesystem (victim files
    /// minus output files).
    pub bytes_reclaimed: u64,
}

/// Crash points the crash-consistency tests inject into a compaction pass.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionFault {
    /// No fault: run to completion.
    None,
    /// Fail after rewriting live chunks but before the manifest swap.
    BeforeSwap,
    /// Fail after the swapped manifest is durable but before the victim
    /// segment files are deleted.
    BeforeDelete,
}

impl DurableChunkStore {
    /// Open (or create) a store in `dir` with the default configuration.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open_with_config(dir, DurableConfig::default())
    }

    /// Open (or create) a store in `dir`, already wrapped in an [`Arc`].
    pub fn shared(dir: impl AsRef<Path>) -> Result<Arc<Self>> {
        Self::open(dir).map(Arc::new)
    }

    /// Open (or create) a store in `dir` with explicit tuning.
    pub fn open_with_config(dir: impl AsRef<Path>, config: DurableConfig) -> Result<Self> {
        Self::open_with_telemetry(dir, config, TelemetryHandle::disabled())
    }

    /// [`Self::open_with_config`], recording into `telemetry`: append/read
    /// latency, cache hit/miss, fsync latency, space amplification, and
    /// rare events (torn-tail recoveries, compaction passes, slow fsyncs).
    pub fn open_with_telemetry(
        dir: impl AsRef<Path>,
        config: DurableConfig,
        telemetry: TelemetryHandle,
    ) -> Result<Self> {
        Self::open_with_io(dir, config, telemetry, real_io())
    }

    /// [`Self::open_with_telemetry`] with an explicit [`io::SegmentIo`]
    /// seam installed under every segment file — the entry point fault
    /// schedules use to exercise torn writes, bit flips, `ENOSPC`,
    /// transient `EIO` and fsync failures against the real recovery code.
    pub fn open_with_io(
        dir: impl AsRef<Path>,
        config: DurableConfig,
        telemetry: TelemetryHandle,
        io: SegmentIoHandle,
    ) -> Result<Self> {
        if config.segment_target_bytes == 0 {
            return Err(StorageError::InvalidConfig(
                "segment_target_bytes must be positive".into(),
            ));
        }
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| StorageError::io("open", &dir, e))?;

        let manifest = Manifest::load(&dir)?.unwrap_or_default();

        // Clean up after a compaction the previous process did not finish.
        // Staged outputs never made it into the manifest, so they hold
        // nothing the surviving segments do not; condemned files are the
        // opposite — the manifest already dropped them, only their deletion
        // was interrupted. Ids that still cannot be deleted stay condemned
        // so a later open retries.
        let staging = dir.join(COMPACT_STAGING_DIR);
        if staging.exists() {
            std::fs::remove_dir_all(&staging).map_err(|e| StorageError::io("open", &staging, e))?;
        }
        let mut condemned = manifest.condemned.clone();
        condemned.retain(|&id| {
            let path = dir.join(segment_file_name(id));
            match std::fs::remove_file(&path) {
                Ok(()) => false,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
                Err(_) => true,
            }
        });
        // Finish an interrupted quarantine the same way: the manifest
        // already dropped these segments, only the move into `quarantine/`
        // was cut short. Ids whose move still fails stay listed for retry.
        let mut quarantined = manifest.quarantined.clone();
        quarantined.retain(|&id| {
            let from = dir.join(segment_file_name(id));
            if !from.exists() {
                return false;
            }
            let quarantine = dir.join(QUARANTINE_DIR);
            if std::fs::create_dir_all(&quarantine).is_err() {
                return true;
            }
            std::fs::rename(&from, quarantine.join(segment_file_name(id))).is_err()
        });

        let segment_ids = discover_segments(&dir, &manifest)?;

        let mut inner = DurableInner {
            index: HashMap::new(),
            segments: Vec::new(),
            next_segment: 0,
            roots: manifest.roots.clone(),
            torn_bytes_recovered: 0,
            condemned,
            compacting: None,
            quarantined,
        };
        let mut stats = manifest.stats;

        // Rebuild the address index by scanning every segment and replay
        // root publications in log order; only the last segment may carry a
        // torn tail (recovery rules 1/2 above).
        stats.chunk_count = 0;
        stats.physical_bytes = 0;
        for (position, &id) in segment_ids.iter().enumerate() {
            let segment = Segment::open_with_io(&dir, id, Arc::clone(&io))?;
            let is_last = position + 1 == segment_ids.len();
            let outcome = segment.scan(is_last)?;
            inner.torn_bytes_recovered += outcome.torn_bytes;
            for (address, location) in outcome.records {
                // Later duplicates of an address are re-appends of identical
                // content; keep the first location.
                if inner.index.try_insert_location(address, location) {
                    stats.chunk_count += 1;
                    stats.physical_bytes += location_storage_size(&location);
                }
            }
            // The log is the truth for roots: every publication since the
            // manifest snapshot is replayed over it (recovery rule 4).
            for (name, hash) in outcome.roots {
                inner.roots.insert(name, hash);
            }
            inner.segments.push(Arc::new(segment));
        }
        if inner.segments.is_empty() {
            inner
                .segments
                .push(Arc::new(Segment::create_with_io(&dir, 0, Arc::clone(&io))?));
        }
        inner.next_segment = inner.segments.last().map(|s| s.id + 1).unwrap_or(1);
        // A stale manifest can under-count logical writes after a crash;
        // every physical byte was a logical write at least once.
        stats.logical_bytes = stats.logical_bytes.max(stats.physical_bytes);

        // Conservative: everything this process has not fsynced itself is
        // treated as possibly dirty, so the first sync() covers every
        // segment once (a no-op fsync of a clean file is cheap).
        let first_unsynced = inner.segments.first().map(|s| s.id).unwrap_or(0);
        let store = DurableChunkStore {
            dir,
            config,
            obs: StoreObs::new(telemetry),
            cache: Mutex::new(ChunkCache::new(config.cache_capacity_bytes)),
            stats: AtomicStats::default(),
            inner: RwLock::new(inner),
            first_unsynced: AtomicU64::new(first_unsynced),
            compaction: Mutex::new(()),
            manifest_lock: Mutex::new(()),
            io,
            health: AtomicU8::new(HealthState::Healthy as u8),
            health_reason: Mutex::new(String::new()),
            clean_ops: AtomicU64::new(0),
        };
        store.stats.store(stats);
        store.obs.health.set(HealthState::Healthy as i64);
        if stats.live_bytes > 0 {
            // A previous process ran a mark pass; carry its measurement
            // into the gauge so the ratio is meaningful from reopen.
            let disk: u64 = store.inner.read().segments.iter().map(|s| s.len()).sum();
            store
                .obs
                .space_amp
                .set(disk as f64 / stats.live_bytes as f64);
        }
        let torn = store.inner.read().torn_bytes_recovered;
        if torn > 0 {
            store.obs.telemetry.event(
                "torn_tail_recovery",
                format!(
                    "dropped {torn} torn tail bytes while opening {:?}",
                    store.dir
                ),
            );
        }
        store
            .manifest_snapshot(&store.inner.read())
            .store(&store.dir)?;
        Ok(store)
    }

    /// The telemetry handle the store records into (inert unless the store
    /// was opened via [`Self::open_with_telemetry`]).
    pub fn telemetry(&self) -> &TelemetryHandle {
        &self.obs.telemetry
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configuration the store was opened with.
    pub fn config(&self) -> DurableConfig {
        self.config
    }

    /// Bytes dropped as torn tail records while opening (crash recovery).
    pub fn torn_bytes_recovered(&self) -> u64 {
        self.inner.read().torn_bytes_recovered
    }

    /// Number of segment files (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.inner.read().segments.len()
    }

    /// `(hits, misses)` of the read-through cache since open.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.lock().hit_stats()
    }

    /// Total number of distinct chunks of a particular kind (diagnostics,
    /// mirrors [`crate::store::InMemoryChunkStore::count_kind`]).
    pub fn count_kind(&self, kind: ChunkKind) -> usize {
        self.inner
            .read()
            .index
            .values()
            .filter(|location| location.kind == kind)
            .count()
    }

    /// Force segment contents and the manifest to stable storage.
    pub fn flush(&self) -> Result<()> {
        self.sync()?;
        self.write_manifest()
    }

    /// Snapshot of every named root pointer (name → hash). The sweep's
    /// mark phase enumerates these to find the GC roots.
    pub fn roots(&self) -> Vec<(String, Hash)> {
        self.inner
            .read()
            .roots
            .iter()
            .map(|(name, hash)| (name.clone(), *hash))
            .collect()
    }

    /// Why the store is degraded or read-only (empty while healthy).
    pub fn health_reason(&self) -> String {
        self.health_reason.lock().clone()
    }

    /// Raise the health state to *at least* `target` (transitions are
    /// monotone: a read-only store never goes back to degraded). Records
    /// the reason and emits a telemetry event on an actual transition.
    fn raise_health(&self, target: HealthState, reason: &str) {
        let previous = self.health.fetch_max(target as u8, Ordering::AcqRel);
        if previous >= target as u8 {
            return;
        }
        *self.health_reason.lock() = reason.to_string();
        self.obs.health.set(target as i64);
        let kind = match target {
            HealthState::ReadOnly => "store_readonly",
            _ => "store_degraded",
        };
        self.obs
            .telemetry
            .event(kind, format!("{reason} ({:?})", self.dir));
    }

    /// Fail fast when the store no longer accepts writes.
    fn ensure_writable(&self) -> Result<()> {
        if self.health.load(Ordering::Acquire) == HealthState::ReadOnly as u8 {
            return Err(StorageError::ReadOnly(self.health_reason()));
        }
        Ok(())
    }

    /// Run a write-path operation, retrying transient I/O failures with
    /// capped exponential backoff (1/2/4 ms, [`MAX_IO_RETRIES`] retries).
    fn retry_transient<T>(&self, mut op: impl FnMut() -> Result<T>) -> Result<T> {
        let mut delay_ms = 1u64;
        for attempt in 0..=MAX_IO_RETRIES {
            match op() {
                Err(StorageError::Io(e)) if e.kind == IoErrorKind::Transient => {
                    if attempt == MAX_IO_RETRIES {
                        self.obs.io_retries_exhausted.inc();
                        return Err(StorageError::Io(e));
                    }
                    self.obs.io_retries.inc();
                    std::thread::sleep(std::time::Duration::from_millis(delay_ms));
                    delay_ms *= 2;
                }
                other => {
                    if other.is_ok() {
                        self.note_write_success();
                    }
                    return other;
                }
            }
        }
        unreachable!("retry loop always returns")
    }

    /// Count a clean write-path operation toward automatic recovery from
    /// `Degraded`. Once [`DEGRADED_RECOVERY_OPS`] consecutive operations
    /// complete without an I/O failure, the store transitions back to
    /// `Healthy` (reason cleared, telemetry event emitted). The CAS only
    /// ever moves Degraded → Healthy: a `ReadOnly` store never recovers in
    /// place, and a concurrent failure racing the recovery wins.
    fn note_write_success(&self) {
        if self.health.load(Ordering::Acquire) != HealthState::Degraded as u8 {
            return;
        }
        let clean = self.clean_ops.fetch_add(1, Ordering::AcqRel) + 1;
        if clean < DEGRADED_RECOVERY_OPS {
            return;
        }
        if self
            .health
            .compare_exchange(
                HealthState::Degraded as u8,
                HealthState::Healthy as u8,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            self.clean_ops.store(0, Ordering::Release);
            *self.health_reason.lock() = String::new();
            self.obs.health.set(HealthState::Healthy as i64);
            self.obs.telemetry.event(
                "store_recovered",
                format!(
                    "degraded store recovered after {DEGRADED_RECOVERY_OPS} clean write \
                     operations ({:?})",
                    self.dir
                ),
            );
        }
    }

    /// Translate a write-path failure that survived the retry loop into a
    /// health transition:
    ///
    /// * `NoSpace` — the device is full; no retry can help. Read-only.
    /// * `Transient` (retries exhausted) — the append itself rolled the
    ///   file back, so the store stays writable but is flagged degraded.
    /// * `Other` — a failed append may have left a torn tail (the rollback
    ///   itself can fail, and an injected torn write models exactly that),
    ///   after which the in-memory length and the file disagree; a failed
    ///   fsync leaves the page-cache state unknowable. Fail stop: read-only,
    ///   reads keep serving, reopening re-establishes the tail invariant.
    fn note_write_failure(&self, err: &StorageError, context: &str) {
        let StorageError::Io(e) = err else { return };
        // Any write-path I/O failure restarts the clean-streak a degraded
        // store needs for automatic recovery.
        self.clean_ops.store(0, Ordering::Release);
        match e.kind {
            IoErrorKind::NoSpace => {
                self.raise_health(
                    HealthState::ReadOnly,
                    &format!("device out of space during {context}"),
                );
            }
            IoErrorKind::Transient => {
                self.raise_health(
                    HealthState::Degraded,
                    &format!("transient I/O retries exhausted during {context}"),
                );
            }
            IoErrorKind::Other => {
                self.raise_health(
                    HealthState::ReadOnly,
                    &format!("{context} failed ({e}); refusing further writes"),
                );
            }
        }
    }

    fn manifest_snapshot(&self, inner: &DurableInner) -> Manifest {
        Manifest {
            segments: inner.segments.iter().map(|s| s.id).collect(),
            next_segment: inner.next_segment,
            stats: self.stats.load(),
            roots: inner.roots.clone(),
            condemned: inner.condemned.clone(),
            quarantined: inner.quarantined.clone(),
        }
    }

    /// Rewrite the manifest from current state, serialized so a rewrite
    /// carrying an older snapshot can never land over a newer one.
    fn write_manifest(&self) -> Result<()> {
        let _serialize = self.manifest_lock.lock();
        let manifest = self.manifest_snapshot(&self.inner.read());
        manifest.store(&self.dir)
    }

    /// Resolve an address to its segment and location without holding the
    /// lock across the disk read.
    fn locate(&self, address: &Hash) -> Result<(Arc<Segment>, ChunkLocation)> {
        let inner = self.inner.read();
        let location = *inner
            .index
            .get(address)
            .ok_or(StorageError::ChunkNotFound(*address))?;
        let position = inner
            .segments
            .binary_search_by_key(&location.segment, |s| s.id)
            .map_err(|_| StorageError::ChunkNotFound(*address))?;
        Ok((Arc::clone(&inner.segments[position]), location))
    }

    /// Mark-sweep compaction: rewrite the chunks `mark` reports as
    /// reachable out of every *sealed* segment into fresh segments, swap
    /// them in atomically, and delete the old files.
    ///
    /// `mark` runs after the pass has fixed its victims and begun diverting
    /// re-appends of victim-resident chunks, so the live set it returns
    /// cannot be invalidated by concurrent writers: chunks written (or
    /// re-written) during the pass land in the active segment, which is
    /// never a victim. The closure must return the address of **every**
    /// chunk that must survive — anything else in a sealed segment is
    /// dropped. An error from `mark` aborts the pass with the store
    /// untouched.
    ///
    /// Readers are never blocked: a reader that already resolved a chunk
    /// into a victim segment keeps reading through its `Arc<Segment>` (the
    /// open descriptor outlives the unlink). Crash safety: victim files are
    /// deleted only after the post-swap manifest — which records them as
    /// [`Manifest::condemned`] — is on stable storage; every earlier crash
    /// point reopens from the previous manifest with the victims intact.
    ///
    /// Returns `Ok(None)` when there is nothing to compact (at most one
    /// segment), otherwise a [`CompactionReport`].
    pub fn compact_with<F>(&self, mark: F) -> Result<Option<CompactionReport>>
    where
        F: FnOnce() -> Result<HashSet<Hash>>,
    {
        self.compact_with_fault(mark, CompactionFault::None)
    }

    /// [`Self::compact_with`] with an injected crash point (test hook).
    #[doc(hidden)]
    pub fn compact_with_fault<F>(
        &self,
        mark: F,
        fault: CompactionFault,
    ) -> Result<Option<CompactionReport>>
    where
        F: FnOnce() -> Result<HashSet<Hash>>,
    {
        // A read-only store is frozen: rewriting the segment set is a
        // write, and sealing the current active segment (whose tail may be
        // desynced by the very failure that flipped the store read-only)
        // could turn a recoverable torn tail into unopenable corruption.
        self.ensure_writable()?;
        let _serialize = self.compaction.lock();

        // Fix the victim set — every sealed segment — and install the
        // revive guard *before* `mark` runs, closing the window where a
        // dedup hit could resurrect a chunk the sweep is about to drop.
        let victims: Vec<Arc<Segment>> = {
            let mut inner = self.inner.write();
            if inner.segments.len() <= 1 {
                return Ok(None);
            }
            let victims = inner.segments[..inner.segments.len() - 1].to_vec();
            inner.compacting = Some(victims.iter().map(|s| s.id).collect());
            victims
        };
        let result = self.compact_victims(&victims, mark, fault);
        if result.is_err() {
            // Leave the store writable: stop diverting re-appends. After a
            // successful swap this is already `None`; on a pre-swap error
            // nothing was swapped and the victims stay live.
            self.inner.write().compacting = None;
        }
        result
    }

    fn compact_victims<F>(
        &self,
        victims: &[Arc<Segment>],
        mark: F,
        fault: CompactionFault,
    ) -> Result<Option<CompactionReport>>
    where
        F: FnOnce() -> Result<HashSet<Hash>>,
    {
        let victim_ids: HashSet<u64> = victims.iter().map(|s| s.id).collect();
        let victim_bytes: u64 = victims.iter().map(|s| s.len()).sum();

        // Mark: compute reachability, then plan which victim records must
        // move. The store-wide live-byte count falls out of the same walk.
        let live = mark()?;
        let (plan, live_bytes) = {
            let inner = self.inner.read();
            let mut plan: Vec<(Hash, ChunkLocation)> = Vec::new();
            let mut live_bytes = 0u64;
            for (address, location) in &inner.index {
                if !live.contains(address) {
                    continue;
                }
                live_bytes += location_storage_size(location);
                if victim_ids.contains(&location.segment) {
                    plan.push((*address, *location));
                }
            }
            // Sequential read order within each victim file.
            plan.sort_unstable_by_key(|(_, location)| (location.segment, location.offset));
            (plan, live_bytes)
        };
        self.stats.live_bytes.store(live_bytes, Ordering::Relaxed);
        if live_bytes > 0 {
            let disk: u64 = self.inner.read().segments.iter().map(|s| s.len()).sum();
            self.obs.space_amp.set(disk as f64 / live_bytes as f64);
        }

        // Sweep, step 1 — rewrite live victim chunks into fsynced output
        // segments staged in a subdirectory: until the swap they are
        // invisible to segment discovery, so the store directory keeps its
        // "only the last segment may be torn" invariant at every crash
        // point. Output ids come from `next_segment` so they are unique,
        // but a rotation can interleave — ids stay globally ordered either
        // way.
        let staging = self.dir.join(COMPACT_STAGING_DIR);
        let _ = std::fs::remove_dir_all(&staging);
        std::fs::create_dir_all(&staging).map_err(|e| StorageError::io("compact", &staging, e))?;
        let mut outputs: Vec<Segment> = Vec::new();
        let mut moved: HashMap<Hash, ChunkLocation> = HashMap::new();
        let mut bytes_rewritten = 0u64;
        for (address, location) in &plan {
            let position = victims
                .binary_search_by_key(&location.segment, |s| s.id)
                .expect("plan entries point into victim segments");
            let chunk = victims[position].read(location)?;
            let needs_new_output = match outputs.last() {
                Some(out) => out.len() >= self.config.segment_target_bytes,
                None => true,
            };
            if needs_new_output {
                let id = {
                    let mut inner = self.inner.write();
                    let id = inner.next_segment;
                    inner.next_segment += 1;
                    id
                };
                outputs.push(Segment::create_with_io(&staging, id, {
                    Arc::clone(&self.io)
                })?);
            }
            let out = outputs.last().expect("an output segment was just ensured");
            let new_location = out.append(address, &chunk)?;
            bytes_rewritten += new_location.len as u64;
            moved.insert(*address, new_location);
        }
        for out in &outputs {
            out.sync()?;
        }
        let output_bytes: u64 = outputs.iter().map(|s| s.len()).sum();
        if fault == CompactionFault::BeforeSwap {
            return Err(StorageError::io_synthetic(
                IoErrorKind::Other,
                "compact",
                "injected compaction fault before manifest swap",
            ));
        }

        // Sweep, step 2 — the swap, under the writer lock. The active
        // segment is sealed and fsynced exactly like a rotation (nothing
        // may be appended above a non-durable segment), the outputs are
        // renamed into the store directory, a fresh active segment with
        // the highest id is created, and the index is repointed. A crash
        // anywhere in here reopens from the *old* manifest: victims are
        // still listed, outputs are adopted as redundant copies that the
        // first-wins scan ignores, and only the highest-numbered segment
        // can carry a torn tail.
        let mut report = CompactionReport {
            victim_segments: victims.iter().map(|s| s.id).collect(),
            output_segments: outputs.iter().map(|s| s.id).collect(),
            live_chunks_rewritten: plan.len() as u64,
            bytes_rewritten,
            bytes_reclaimed: victim_bytes.saturating_sub(output_bytes),
            ..CompactionReport::default()
        };
        let mut dropped: Vec<Hash> = Vec::new();
        let mut dropped_bytes = 0u64;
        {
            let mut inner = self.inner.write();
            let active = Arc::clone(inner.segments.last().expect("active segment exists"));
            active.sync()?;
            let _ = self.first_unsynced.compare_exchange(
                active.id,
                active.id + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            );

            let mut published: Vec<Arc<Segment>> = Vec::new();
            for out in &outputs {
                let from = staging.join(segment_file_name(out.id));
                let to = self.dir.join(segment_file_name(out.id));
                std::fs::rename(&from, &to).map_err(|e| StorageError::io("compact", &to, e))?;
                published.push(Arc::new(Segment::open_with_io(&self.dir, out.id, {
                    Arc::clone(&self.io)
                })?));
            }
            let _ = std::fs::remove_dir_all(&staging);

            let new_active_id = inner.next_segment;
            inner.next_segment += 1;
            let new_active = Arc::new(Segment::create_with_io(&self.dir, new_active_id, {
                Arc::clone(&self.io)
            })?);

            // Repoint surviving entries into the outputs. Entries that
            // left their victim during the pass (revived by `try_put`)
            // already point elsewhere and pass through untouched; entries
            // still in a victim with no moved copy are unreachable.
            inner.index.retain(|address, location| {
                if !victim_ids.contains(&location.segment) {
                    return true;
                }
                match moved.get(address) {
                    Some(new_location) => {
                        *location = *new_location;
                        true
                    }
                    None => {
                        dropped.push(*address);
                        dropped_bytes += location_storage_size(location);
                        false
                    }
                }
            });

            let mut segments: Vec<Arc<Segment>> = inner
                .segments
                .iter()
                .filter(|s| !victim_ids.contains(&s.id))
                .cloned()
                .collect();
            segments.extend(published);
            segments.push(new_active);
            segments.sort_unstable_by_key(|s| s.id);
            inner.segments = segments;
            inner.condemned.extend(victim_ids.iter().copied());
            inner.condemned.sort_unstable();
            inner.condemned.dedup();
            inner.compacting = None;
            self.first_unsynced
                .fetch_max(new_active_id, Ordering::AcqRel);
        }
        report.chunks_dropped = dropped.len() as u64;
        self.stats
            .chunk_count
            .fetch_sub(dropped.len() as u64, Ordering::Relaxed);
        self.stats
            .physical_bytes
            .fetch_sub(dropped_bytes, Ordering::Relaxed);
        {
            // Stale cache entries for swept chunks must go: the store no
            // longer holds them, so the cache must not serve them either.
            let mut cache = self.cache.lock();
            for address in &dropped {
                cache.remove(address);
            }
        }

        // Sweep, step 3 — make the swap durable, then delete the victims.
        // The new manifest no longer lists the victims as segments and
        // records them as condemned; their files may only disappear once
        // that manifest (and the renamed output files' directory entries)
        // are on stable storage.
        std::fs::File::open(&self.dir)
            .and_then(|d| d.sync_all())
            .map_err(|e| StorageError::io("compact", &self.dir, e))?;
        self.write_manifest()?;
        if fault == CompactionFault::BeforeDelete {
            return Err(StorageError::io_synthetic(
                IoErrorKind::Other,
                "compact",
                "injected compaction fault before victim deletion",
            ));
        }
        let mut deleted: Vec<u64> = Vec::new();
        for &id in &report.victim_segments {
            let path = self.dir.join(segment_file_name(id));
            match std::fs::remove_file(&path) {
                Ok(()) => deleted.push(id),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => deleted.push(id),
                // Keep it condemned; the next pass or open retries.
                Err(_) => {}
            }
        }
        {
            let mut inner = self.inner.write();
            inner.condemned.retain(|id| !deleted.contains(id));
        }
        self.write_manifest()?;

        self.obs.compactions.inc();
        let live_bytes = self.stats.live_bytes.load(Ordering::Relaxed);
        if live_bytes > 0 {
            let disk: u64 = self.inner.read().segments.iter().map(|s| s.len()).sum();
            self.obs.space_amp.set(disk as f64 / live_bytes as f64);
        }
        self.obs.telemetry.event(
            "compaction",
            format!(
                "victims={:?} outputs={:?} rewrote {} live chunks, dropped {}, reclaimed {} bytes",
                report.victim_segments,
                report.output_segments,
                report.live_chunks_rewritten,
                report.chunks_dropped,
                report.bytes_reclaimed
            ),
        );
        Ok(Some(report))
    }

    /// Verify the CRC of every record in every *sealed* segment — the
    /// integrity pass the background scrubber runs off the hot path — and
    /// excise any segment found corrupt.
    ///
    /// A corrupt segment is **quarantined**, not abandoned: every indexed
    /// chunk still living in it is re-read record by record (the per-record
    /// CRC decides salvageable vs lost), intact chunks are rewritten into
    /// fresh fsynced segments through the same staged-swap path compaction
    /// uses, and the damaged file is then moved into `quarantine/` for
    /// forensics. The swap follows the condemned-manifest protocol — the
    /// manifest drops the segment and records it as quarantined *before*
    /// the file moves, so a crash at any point either reopens with the
    /// segment intact or finishes the move on open, never both copies.
    ///
    /// Chunks whose records are damaged are dropped from the index (reads
    /// return [`StorageError::ChunkNotFound`] instead of a misleading
    /// `SegmentCorrupt` from a file that no longer exists) and the store
    /// flips to [`HealthState::ReadOnly`]: data was lost, so it stops
    /// accepting writes while verified reads keep serving what survives.
    /// A fully salvaged quarantine only degrades health.
    ///
    /// Serialized with compaction (both rewrite the segment set); readers
    /// are never blocked for longer than one segment's CRC walk.
    pub fn scrub(&self) -> Result<ScrubReport> {
        // Same gate as compaction: quarantine rewrites the segment set and
        // seals the active segment, neither of which a read-only store may
        // do (and a desynced active tail must stay *last* so reopen can
        // truncate it).
        self.ensure_writable()?;
        let _serialize = self.compaction.lock();

        let sealed: Vec<Arc<Segment>> = {
            let inner = self.inner.read();
            match inner.segments.split_last() {
                Some((_active, sealed)) => sealed.to_vec(),
                None => Vec::new(),
            }
        };
        let mut report = ScrubReport {
            segments_scanned: sealed.len() as u64,
            ..ScrubReport::default()
        };
        let mut corrupt: Vec<Arc<Segment>> = Vec::new();
        for segment in &sealed {
            if let Err(err) = segment.scan(false) {
                self.obs.scrub_corrupt_segments.inc();
                self.obs.telemetry.event(
                    "scrub_corruption",
                    format!("segment {} failed verification: {err}", segment.id),
                );
                corrupt.push(Arc::clone(segment));
            }
        }
        self.obs.scrub_passes.inc();
        if corrupt.is_empty() {
            return Ok(report);
        }

        // Divert dedup hits away from the corrupt segments for the length
        // of the salvage, exactly like compaction's revive guard: a put
        // whose only existing copy sits in a segment about to be excised
        // must re-append, not trust a location that may be lost.
        let corrupt_ids: HashSet<u64> = corrupt.iter().map(|s| s.id).collect();
        {
            let mut inner = self.inner.write();
            inner.compacting = Some(corrupt_ids.clone());
        }
        let result = self.salvage(&corrupt, &mut report);
        if result.is_err() {
            self.inner.write().compacting = None;
        }
        result?;

        if report.chunks_lost > 0 {
            self.raise_health(
                HealthState::ReadOnly,
                &format!(
                    "unsalvageable corruption: {} chunk(s) lost from quarantined segment(s) {:?}",
                    report.chunks_lost, report.quarantined_segments
                ),
            );
        } else {
            self.raise_health(
                HealthState::Degraded,
                &format!(
                    "segment(s) {:?} quarantined; all {} live chunk(s) salvaged",
                    report.quarantined_segments, report.chunks_salvaged
                ),
            );
        }
        Ok(report)
    }

    /// The excision half of [`Self::scrub`]: rewrite what survives out of
    /// `corrupt` segments, swap them out of the store, and move their files
    /// into the quarantine directory. Caller holds the compaction mutex and
    /// has installed the revive guard.
    fn salvage(&self, corrupt: &[Arc<Segment>], report: &mut ScrubReport) -> Result<()> {
        let corrupt_ids: HashSet<u64> = corrupt.iter().map(|s| s.id).collect();

        // Every indexed chunk still located in a corrupt segment, in file
        // order. Chunks that already moved (revived by a racing put) point
        // elsewhere and are not the scrub's business.
        let plan: Vec<(Hash, ChunkLocation)> = {
            let inner = self.inner.read();
            let mut plan: Vec<(Hash, ChunkLocation)> = inner
                .index
                .iter()
                .filter(|(_, location)| corrupt_ids.contains(&location.segment))
                .map(|(address, location)| (*address, *location))
                .collect();
            plan.sort_unstable_by_key(|(_, location)| (location.segment, location.offset));
            plan
        };

        // Re-read record by record: the CRC decides what is salvageable.
        // Intact chunks are rewritten into staged output segments (fsynced
        // before the swap, like compaction outputs).
        let staging = self.dir.join(COMPACT_STAGING_DIR);
        let _ = std::fs::remove_dir_all(&staging);
        std::fs::create_dir_all(&staging).map_err(|e| StorageError::io("scrub", &staging, e))?;
        let mut outputs: Vec<Segment> = Vec::new();
        let mut moved: HashMap<Hash, ChunkLocation> = HashMap::new();
        for (address, location) in &plan {
            let position = corrupt
                .binary_search_by_key(&location.segment, |s| s.id)
                .expect("plan entries point into corrupt segments");
            let chunk = match corrupt[position].read(location) {
                Ok(chunk) => chunk,
                Err(_) => continue, // lost; dropped from the index below
            };
            let needs_new_output = match outputs.last() {
                Some(out) => out.len() >= self.config.segment_target_bytes,
                None => true,
            };
            if needs_new_output {
                let id = {
                    let mut inner = self.inner.write();
                    let id = inner.next_segment;
                    inner.next_segment += 1;
                    id
                };
                outputs.push(Segment::create_with_io(&staging, id, {
                    Arc::clone(&self.io)
                })?);
            }
            let out = outputs.last().expect("an output segment was just ensured");
            moved.insert(*address, out.append(address, &chunk)?);
        }
        for out in &outputs {
            out.sync()?;
        }

        // The swap, mirroring compaction: seal + fsync the active segment,
        // rename the outputs in, excise the corrupt segments, fresh active
        // on top so only the highest-numbered segment can ever be torn.
        let mut lost: Vec<Hash> = Vec::new();
        let mut lost_bytes = 0u64;
        {
            let mut inner = self.inner.write();
            let active = Arc::clone(inner.segments.last().expect("active segment exists"));
            active.sync()?;
            let _ = self.first_unsynced.compare_exchange(
                active.id,
                active.id + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            );

            let mut published: Vec<Arc<Segment>> = Vec::new();
            for out in &outputs {
                let from = staging.join(segment_file_name(out.id));
                let to = self.dir.join(segment_file_name(out.id));
                std::fs::rename(&from, &to).map_err(|e| StorageError::io("scrub", &to, e))?;
                published.push(Arc::new(Segment::open_with_io(&self.dir, out.id, {
                    Arc::clone(&self.io)
                })?));
            }
            let _ = std::fs::remove_dir_all(&staging);

            let new_active_id = inner.next_segment;
            inner.next_segment += 1;
            let new_active = Arc::new(Segment::create_with_io(&self.dir, new_active_id, {
                Arc::clone(&self.io)
            })?);

            inner.index.retain(|address, location| {
                if !corrupt_ids.contains(&location.segment) {
                    return true;
                }
                match moved.get(address) {
                    Some(new_location) => {
                        *location = *new_location;
                        true
                    }
                    None => {
                        lost.push(*address);
                        lost_bytes += location_storage_size(location);
                        false
                    }
                }
            });

            let mut segments: Vec<Arc<Segment>> = inner
                .segments
                .iter()
                .filter(|s| !corrupt_ids.contains(&s.id))
                .cloned()
                .collect();
            segments.extend(published);
            segments.push(new_active);
            segments.sort_unstable_by_key(|s| s.id);
            inner.segments = segments;
            inner.quarantined.extend(corrupt_ids.iter().copied());
            inner.quarantined.sort_unstable();
            inner.quarantined.dedup();
            inner.compacting = None;
            self.first_unsynced
                .fetch_max(new_active_id, Ordering::AcqRel);
        }
        self.stats
            .chunk_count
            .fetch_sub(lost.len() as u64, Ordering::Relaxed);
        self.stats
            .physical_bytes
            .fetch_sub(lost_bytes, Ordering::Relaxed);
        {
            // The store no longer holds the lost chunks; the cache must not
            // keep serving them either.
            let mut cache = self.cache.lock();
            for address in &lost {
                cache.remove(address);
            }
        }

        // Make the excision durable, then move the damaged files aside.
        // The manifest lists the segments as quarantined before the rename,
        // so a crash in between has the open path finish the move.
        std::fs::File::open(&self.dir)
            .and_then(|d| d.sync_all())
            .map_err(|e| StorageError::io("scrub", &self.dir, e))?;
        self.write_manifest()?;
        let quarantine = self.dir.join(QUARANTINE_DIR);
        std::fs::create_dir_all(&quarantine)
            .map_err(|e| StorageError::io("scrub", &quarantine, e))?;
        let mut quarantined_now: Vec<u64> = Vec::new();
        for segment in corrupt {
            let to = quarantine.join(segment_file_name(segment.id));
            // On rename failure keep it listed; the next open retries the move.
            if std::fs::rename(segment.path(), &to).is_ok() {
                quarantined_now.push(segment.id);
            }
        }
        {
            let mut inner = self.inner.write();
            inner.quarantined.retain(|id| !quarantined_now.contains(id));
        }
        self.write_manifest()?;

        report.quarantined_segments = {
            let mut ids: Vec<u64> = corrupt_ids.iter().copied().collect();
            ids.sort_unstable();
            ids
        };
        report.chunks_salvaged = moved.len() as u64;
        report.chunks_lost = lost.len() as u64;
        self.obs.scrub_salvaged_chunks.add(moved.len() as u64);
        self.obs.scrub_lost_chunks.add(lost.len() as u64);
        for &id in &report.quarantined_segments {
            self.obs.telemetry.event(
                "segment_quarantined",
                format!(
                    "segment {id} excised to quarantine ({} salvaged, {} lost store-wide)",
                    report.chunks_salvaged, report.chunks_lost
                ),
            );
        }
        Ok(())
    }
}

impl ChunkStore for DurableChunkStore {
    /// Store a chunk, appending it to the active segment; panics on an I/O
    /// failure. Fallible callers should use [`ChunkStore::try_put`].
    fn put(&self, chunk: Chunk) -> Hash {
        self.try_put(chunk)
            .expect("append to active segment failed; use try_put to handle I/O errors")
    }

    /// Store a chunk, surfacing I/O failures (disk full, EIO) as
    /// [`StorageError`] instead of panicking.
    fn try_put(&self, chunk: Chunk) -> Result<Hash> {
        self.ensure_writable()?;
        let _append_span = self.obs.append_nanos.span();
        let address = chunk.address();
        self.stats
            .logical_bytes
            .fetch_add(chunk.storage_size() as u64, Ordering::Relaxed);

        // Whether a rotation happened (its manifest rewrite), and the
        // segment to fsync under `fsync_each_put` — handled after the lock
        // is dropped so the steady-state put path never fsyncs under a
        // lock readers need.
        let mut rotated = false;
        let mut fsync_target: Option<Arc<Segment>> = None;
        {
            let mut inner = self.inner.write();
            let mut revived = false;
            if let Some(existing) = inner.index.get(&address) {
                let doomed = matches!(
                    &inner.compacting,
                    Some(victims) if victims.contains(&existing.segment)
                );
                if !doomed {
                    self.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(address);
                }
                // The only copy sits in a segment an in-flight compaction
                // may delete, and its mark phase can no longer observe
                // this chunk becoming reachable again. Re-append it to the
                // active segment (never a victim) and repoint the index:
                // the swap leaves non-victim locations alone, so the new
                // copy survives however the pass ends. The counters don't
                // move — one referenced copy before, one after (the extra
                // on-disk copy is garbage for the *next* pass).
                revived = true;
            }

            let active = Arc::clone(inner.segments.last().expect("active segment exists"));
            let location = self
                .retry_transient(|| active.append(&address, &chunk))
                .inspect_err(|e| self.note_write_failure(e, "segment append"))?;
            if !revived {
                self.stats.chunk_count.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .physical_bytes
                    .fetch_add(chunk.storage_size() as u64, Ordering::Relaxed);
            }
            inner.index.insert(address, location);

            if active.len() >= self.config.segment_target_bytes {
                // Seal and fsync *before* the successor segment exists —
                // still under the writer lock. This is the one fsync that
                // must stay inside: appends are serialized by this lock, so
                // nothing can land in the new segment (and possibly reach
                // disk via writeback) until the sealed file is durable;
                // otherwise a crash could tear a *non-last* segment, which
                // recovery rightly refuses to open. Rotation is rare (once
                // per `segment_target_bytes`) and cache hits don't take
                // this lock.
                self.retry_transient(|| active.sync())
                    .inspect_err(|e| self.note_write_failure(e, "rotation fsync"))?;
                let _ = self.first_unsynced.compare_exchange(
                    active.id,
                    active.id + 1,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
                let id = inner.next_segment;
                inner.next_segment += 1;
                inner.segments.push(Arc::new(Segment::create_with_io(
                    &self.dir,
                    id,
                    Arc::clone(&self.io),
                )?));
                rotated = true;
            } else if self.config.fsync_each_put {
                fsync_target = Some(active);
            }
        }
        self.cache.lock().insert(address, Arc::new(chunk));

        if rotated {
            self.write_manifest()?;
        }
        if let Some(active) = fsync_target {
            self.retry_transient(|| active.sync())
                .inspect_err(|e| self.note_write_failure(e, "per-put fsync"))?;
        }
        Ok(address)
    }

    fn get(&self, address: &Hash) -> Result<Arc<Chunk>> {
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        if self.config.cache_capacity_bytes > 0 {
            if let Some(chunk) = self.cache.lock().get(address) {
                // Counter only — a clock read would be a large fraction of
                // a cache hit's total cost.
                self.obs.cache_hits.inc();
                return Ok(chunk);
            }
        }
        self.obs.cache_misses.inc();
        let _read_span = self.obs.read_nanos.span();
        let (segment, location) = self.locate(address)?;
        let chunk = Arc::new(segment.read(&location)?);
        self.cache.lock().insert(*address, Arc::clone(&chunk));
        Ok(chunk)
    }

    fn contains(&self, address: &Hash) -> bool {
        self.inner.read().index.contains_key(address)
    }

    fn stats(&self) -> StoreStats {
        let mut stats = self.stats.load();
        // What the filesystem is actually charged: every live segment
        // file, including garbage records a compaction has not swept yet.
        stats.disk_bytes = self.inner.read().segments.iter().map(|s| s.len()).sum();
        stats
    }

    fn audit(&self) -> Vec<Hash> {
        // Snapshot the addresses, then read every chunk without the lock
        // and without polluting the cache (a bulk scan would flush the hot
        // set). Each address is re-resolved at read time — a compaction
        // may move chunks mid-audit, and a location captured here could
        // point into a deleted victim file.
        let addresses: Vec<Hash> = self.inner.read().index.keys().copied().collect();
        let mut failures = Vec::new();
        for address in addresses {
            let ok = self
                .locate(&address)
                .and_then(|(segment, location)| segment.read(&location))
                .map(|chunk| chunk.address() == address)
                .unwrap_or(false);
            if !ok {
                failures.push(address);
            }
        }
        failures
    }

    /// Publish a root pointer; panics on an I/O failure. Fallible callers
    /// should use [`ChunkStore::try_set_root`].
    fn set_root(&self, name: &str, hash: Hash) {
        self.try_set_root(name, hash)
            .expect("root record append failed; use try_set_root to handle I/O errors")
    }

    /// Publish a root pointer by appending a root record to the active
    /// segment. The record trails every chunk it can reference in the same
    /// log, so the data-before-pointer ordering needs no fsync here; when
    /// the publication must reach stable storage is the caller's policy
    /// (see [`ChunkStore::sync`]).
    fn try_set_root(&self, name: &str, hash: Hash) -> Result<()> {
        self.ensure_writable()?;
        let mut inner = self.inner.write();
        let active = Arc::clone(inner.segments.last().expect("active segment exists"));
        self.retry_transient(|| active.append_root(name, &hash))
            .inspect_err(|e| self.note_write_failure(e, "root append"))?;
        inner.roots.insert(name.to_string(), hash);
        Ok(())
    }

    fn root(&self, name: &str) -> Option<Hash> {
        self.inner.read().roots.get(name).copied()
    }

    /// The store's current writability, raised (never lowered — recovery is
    /// a reopen) by write-path failures and scrub findings. See
    /// [`DurableChunkStore::health_reason`] for the human-readable cause.
    fn health(&self) -> HealthState {
        match self.health.load(Ordering::Acquire) {
            0 => HealthState::Healthy,
            1 => HealthState::Degraded,
            _ => HealthState::ReadOnly,
        }
    }

    /// `fsync` every segment that may hold non-durable data — the active
    /// one plus any sealed segment whose rotation fsync has not been
    /// observed to complete. Runs outside every lock readers use.
    fn sync(&self) -> Result<()> {
        let fsync_start = self.obs.fsync_nanos.start();
        let (targets, active_id) = {
            let inner = self.inner.read();
            let from = self.first_unsynced.load(Ordering::Acquire);
            let targets: Vec<Arc<Segment>> = inner
                .segments
                .iter()
                .filter(|s| s.id >= from)
                .map(Arc::clone)
                .collect();
            (targets, inner.segments.last().map(|s| s.id))
        };
        for segment in &targets {
            self.retry_transient(|| segment.sync())
                .inspect_err(|e| self.note_write_failure(e, "group fsync"))?;
        }
        // Everything below the active segment is sealed and now durable;
        // the active segment may keep receiving appends, so the mark stays
        // at it. `fetch_max` keeps the mark monotone under concurrent
        // syncs.
        if let Some(active_id) = active_id {
            self.first_unsynced.fetch_max(active_id, Ordering::AcqRel);
        }
        let nanos = self.obs.fsync_nanos.finish(fsync_start);
        if nanos > SLOW_FSYNC_NANOS {
            self.obs.telemetry.event(
                "slow_fsync",
                format!(
                    "sync of {} segment(s) took {} ms",
                    targets.len(),
                    nanos / 1_000_000
                ),
            );
        }
        Ok(())
    }
}

impl Drop for DurableChunkStore {
    fn drop(&mut self) {
        // Best-effort durability on clean shutdown; crash recovery covers
        // the rest.
        let _ = self.flush();
    }
}

impl std::fmt::Debug for DurableChunkStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableChunkStore")
            .field("dir", &self.dir)
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Union of the manifest's segment list and the segment files actually on
/// disk (adopting rotations the manifest missed), in id order.
fn discover_segments(dir: &Path, manifest: &Manifest) -> Result<Vec<u64>> {
    let mut ids: Vec<u64> = manifest.segments.clone();
    let entries = std::fs::read_dir(dir).map_err(|e| StorageError::io("open", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StorageError::io("open", dir, e))?;
        if let Some(id) = entry.file_name().to_str().and_then(parse_segment_file_name) {
            ids.push(id);
        }
    }
    ids.sort_unstable();
    ids.dedup();
    // Condemned files are superseded by a durable manifest swap — never
    // adopt one, even when its deletion keeps failing. Quarantined files
    // are likewise excised by a durable swap — never adopt one, even when
    // the move into `quarantine/` keeps failing.
    ids.retain(|id| !manifest.condemned.contains(id));
    ids.retain(|id| !manifest.quarantined.contains(id));
    Ok(ids)
}

/// Tiny extension so the open-time scan can count only first occurrences.
trait TryInsertLocation {
    fn try_insert_location(&mut self, address: Hash, location: ChunkLocation) -> bool;
}

impl TryInsertLocation for HashMap<Hash, ChunkLocation> {
    fn try_insert_location(&mut self, address: Hash, location: ChunkLocation) -> bool {
        use std::collections::hash_map::Entry;
        match self.entry(address) {
            Entry::Occupied(_) => false,
            Entry::Vacant(slot) => {
                slot.insert(location);
                true
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A uniquely named temp directory removed on drop (the workspace has
    /// no `tempfile` dependency).
    pub struct TempDir(PathBuf);

    impl TempDir {
        pub fn new(label: &str) -> TempDir {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path =
                std::env::temp_dir().join(format!("spitz-{label}-{}-{n}", std::process::id()));
            std::fs::create_dir_all(&path).expect("create temp dir");
            TempDir(path)
        }

        pub fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::TempDir;

    fn blob(data: &[u8]) -> Chunk {
        Chunk::new(ChunkKind::Blob, data.to_vec())
    }

    fn small_config() -> DurableConfig {
        DurableConfig {
            segment_target_bytes: 4 * 1024,
            cache_capacity_bytes: 0,
            fsync_each_put: false,
        }
    }

    #[test]
    fn degraded_store_recovers_after_clean_ops() {
        /// Fails `count` consecutive appends starting at global op `from`.
        #[derive(Debug)]
        struct TransientBurst {
            from: u64,
            count: u64,
            kind: IoErrorKind,
            ops: AtomicU64,
        }
        impl crate::SegmentIo for TransientBurst {
            fn on_append(&self, _segment: u64, _len: usize) -> crate::WriteOutcome {
                let i = self.ops.fetch_add(1, Ordering::Relaxed);
                if i >= self.from && i < self.from + self.count {
                    crate::WriteOutcome::Fail(self.kind)
                } else {
                    crate::WriteOutcome::Full
                }
            }
        }

        let dir = TempDir::new("durable-degraded-recovery");
        // One burst long enough to exhaust every retry of a single append.
        let io: SegmentIoHandle = Arc::new(TransientBurst {
            from: 1,
            count: (MAX_IO_RETRIES + 1) as u64,
            kind: IoErrorKind::Transient,
            ops: AtomicU64::new(0),
        });
        let store = DurableChunkStore::open_with_io(
            dir.path(),
            small_config(),
            spitz_obs::TelemetryHandle::new(),
            io,
        )
        .unwrap();

        store.put(blob(b"pre-burst"));
        assert_eq!(store.health(), HealthState::Healthy);
        assert!(store.try_put(blob(b"hits the burst")).is_err());
        assert_eq!(store.health(), HealthState::Degraded);
        assert!(store.health_reason().contains("transient"));

        // One clean op short of the threshold: still degraded.
        for i in 0..DEGRADED_RECOVERY_OPS - 1 {
            store.put(blob(&(1000 + i).to_be_bytes()));
        }
        assert_eq!(store.health(), HealthState::Degraded);

        // The threshold-crossing op flips the store back to healthy.
        store.put(blob(b"the recovering op"));
        assert_eq!(store.health(), HealthState::Healthy);
        assert_eq!(store.health_reason(), "");
        // And the store keeps accepting writes afterwards.
        store.put(blob(b"after recovery"));
        assert_eq!(store.health(), HealthState::Healthy);

        // ReadOnly is final: no volume of clean ops recovers it in place.
        let dir = TempDir::new("durable-readonly-no-recovery");
        let io: SegmentIoHandle = Arc::new(TransientBurst {
            from: 1,
            count: 1,
            kind: IoErrorKind::NoSpace,
            ops: AtomicU64::new(0),
        });
        let store = DurableChunkStore::open_with_io(
            dir.path(),
            small_config(),
            spitz_obs::TelemetryHandle::new(),
            io,
        )
        .unwrap();
        store.put(blob(b"pre-enospc"));
        assert!(store.try_put(blob(b"hits enospc")).is_err());
        assert_eq!(store.health(), HealthState::ReadOnly);
        for _ in 0..2 * DEGRADED_RECOVERY_OPS {
            assert!(store.try_put(blob(b"refused")).is_err());
        }
        assert_eq!(store.health(), HealthState::ReadOnly);
    }

    #[test]
    fn put_get_roundtrip_and_dedup() {
        let dir = TempDir::new("durable-roundtrip");
        let store = DurableChunkStore::open(dir.path()).unwrap();
        let addr = store.put(blob(b"hello durable"));
        assert!(store.contains(&addr));
        assert_eq!(store.get(&addr).unwrap().data(), b"hello durable");

        for _ in 0..5 {
            assert_eq!(store.put(blob(b"hello durable")), addr);
        }
        let stats = store.stats();
        assert_eq!(stats.chunk_count, 1);
        assert_eq!(stats.dedup_hits, 5);
        assert!(stats.logical_bytes > stats.physical_bytes);
        assert!(store.audit().is_empty());

        let missing = spitz_crypto::sha256(b"absent");
        assert!(matches!(
            store.get(&missing),
            Err(StorageError::ChunkNotFound(_))
        ));
    }

    #[test]
    fn reopen_preserves_chunks_stats_and_roots() {
        let dir = TempDir::new("durable-reopen");
        let mut addresses = Vec::new();
        let head = spitz_crypto::sha256(b"chain head");
        let stats_before;
        {
            let store = DurableChunkStore::open_with_config(dir.path(), small_config()).unwrap();
            for i in 0..200u32 {
                addresses.push(store.put(blob(&i.to_be_bytes())));
            }
            store.put(blob(&0u32.to_be_bytes())); // one dedup hit
            store.set_root("ledger/head", head);
            stats_before = store.stats();
            assert!(store.segment_count() > 1, "rotation must have happened");
        }

        let store = DurableChunkStore::open_with_config(dir.path(), small_config()).unwrap();
        assert_eq!(store.torn_bytes_recovered(), 0);
        for (i, addr) in addresses.iter().enumerate() {
            let chunk = store.get(addr).unwrap();
            assert_eq!(chunk.data(), (i as u32).to_be_bytes());
        }
        assert_eq!(store.root("ledger/head"), Some(head));
        let stats = store.stats();
        assert_eq!(stats.chunk_count, stats_before.chunk_count);
        assert_eq!(stats.physical_bytes, stats_before.physical_bytes);
        assert_eq!(stats.logical_bytes, stats_before.logical_bytes);
        assert_eq!(stats.dedup_hits, stats_before.dedup_hits);
        assert_eq!(store.count_kind(ChunkKind::Blob), 200);
        assert!(store.audit().is_empty());
    }

    #[test]
    fn root_publications_survive_without_a_manifest_rewrite() {
        let dir = TempDir::new("durable-root-log");
        let older = spitz_crypto::sha256(b"older head");
        let newer = spitz_crypto::sha256(b"newer head");
        {
            let store = DurableChunkStore::open(dir.path()).unwrap();
            store.put(blob(b"payload"));
            store.set_root("head", older);
            store.set_root("head", newer);
            // Simulate a crash: no flush, no manifest rewrite. The root
            // records are already in the segment log (page cache), so a
            // reopen must recover them by replay alone.
            std::mem::forget(store);
        }
        let store = DurableChunkStore::open(dir.path()).unwrap();
        assert_eq!(store.root("head"), Some(newer));
    }

    #[test]
    fn cache_serves_repeated_reads() {
        let dir = TempDir::new("durable-cache");
        let config = DurableConfig {
            cache_capacity_bytes: 1024 * 1024,
            ..small_config()
        };
        let store = DurableChunkStore::open_with_config(dir.path(), config).unwrap();
        let addr = store.put(blob(b"hot chunk"));
        for _ in 0..10 {
            store.get(&addr).unwrap();
        }
        let (hits, misses) = store.cache_stats();
        assert_eq!(misses, 0, "put is write-through so every read hits");
        assert_eq!(hits, 10);
    }

    #[test]
    fn concurrent_puts_deduplicate_on_disk() {
        let dir = TempDir::new("durable-concurrent");
        let store =
            Arc::new(DurableChunkStore::open_with_config(dir.path(), small_config()).unwrap());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    store.put(blob(&i.to_be_bytes()));
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let stats = store.stats();
        assert_eq!(stats.chunk_count, 200);
        assert_eq!(stats.dedup_hits, 3 * 200);
    }

    #[test]
    fn concurrent_readers_and_writer_make_progress() {
        let dir = TempDir::new("durable-read-concurrency");
        let config = DurableConfig {
            cache_capacity_bytes: 64 * 1024,
            ..small_config()
        };
        let store = Arc::new(DurableChunkStore::open_with_config(dir.path(), config).unwrap());
        let addresses: Arc<Vec<Hash>> = Arc::new(
            (0..100u32)
                .map(|i| store.put(blob(&i.to_be_bytes().repeat(8))))
                .collect(),
        );
        let mut handles = Vec::new();
        for reader in 0..4usize {
            let store = Arc::clone(&store);
            let addresses = Arc::clone(&addresses);
            handles.push(std::thread::spawn(move || {
                for round in 0..200usize {
                    let addr = &addresses[(reader * 31 + round) % addresses.len()];
                    assert!(store.get(addr).is_ok());
                }
            }));
        }
        {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 100..200u32 {
                    store.put(blob(&i.to_be_bytes().repeat(8)));
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(store.stats().chunk_count, 200);
        assert!(store.audit().is_empty());
    }

    /// Write `count` distinct chunks, forcing rotations with the small
    /// config, and return their addresses.
    fn populate(store: &DurableChunkStore, count: u32) -> Vec<Hash> {
        (0..count)
            .map(|i| store.put(blob(&i.to_be_bytes().repeat(8))))
            .collect()
    }

    #[test]
    fn compaction_sweeps_unreachable_chunks_and_keeps_live_ones() {
        let dir = TempDir::new("durable-compact");
        let store = DurableChunkStore::open_with_config(dir.path(), small_config()).unwrap();
        let addresses = populate(&store, 200);
        let head = spitz_crypto::sha256(b"head");
        store.set_root("head", head);
        assert!(store.segment_count() > 1, "need sealed segments");
        let before = store.stats();

        // Keep every third chunk. A single pass only sweeps *sealed*
        // segments — garbage in the active segment survives it — so run a
        // second pass (which seals the previous active) to sweep everything.
        let live: HashSet<Hash> = addresses.iter().step_by(3).copied().collect();
        let keep = live.clone();
        let report = store
            .compact_with(move || Ok(keep))
            .unwrap()
            .expect("sealed segments exist");
        assert!(report.chunks_dropped > 0);
        assert!(report.live_chunks_rewritten > 0);
        assert!(!report.victim_segments.is_empty());
        let keep = live.clone();
        store
            .compact_with(move || Ok(keep))
            .unwrap()
            .expect("second pass still has sealed segments");

        let stats = store.stats();
        assert!(stats.chunk_count < before.chunk_count);
        assert!(stats.physical_bytes < before.physical_bytes);
        assert!(stats.live_bytes > 0);
        assert!(stats.disk_bytes > 0);

        // Victim files are gone from disk.
        for id in &report.victim_segments {
            assert!(!dir.path().join(segment_file_name(*id)).exists());
        }
        assert!(!dir.path().join(COMPACT_STAGING_DIR).exists());

        for (i, address) in addresses.iter().enumerate() {
            if live.contains(address) {
                let chunk = store.get(address).unwrap();
                assert_eq!(chunk.data(), (i as u32).to_be_bytes().repeat(8));
            } else {
                assert!(matches!(
                    store.get(address),
                    Err(StorageError::ChunkNotFound(_))
                ));
            }
        }
        assert_eq!(store.root("head"), Some(head));
        assert!(store.audit().is_empty());

        // Reopen: the swapped state is what recovery sees.
        drop(store);
        let store = DurableChunkStore::open_with_config(dir.path(), small_config()).unwrap();
        for (i, address) in addresses.iter().enumerate() {
            if live.contains(address) {
                assert_eq!(
                    store.get(address).unwrap().data(),
                    (i as u32).to_be_bytes().repeat(8)
                );
            } else {
                assert!(!store.contains(address));
            }
        }
        assert_eq!(store.root("head"), Some(head));
        assert!(store.audit().is_empty());
    }

    #[test]
    fn compaction_with_single_segment_is_a_noop() {
        let dir = TempDir::new("durable-compact-noop");
        let store = DurableChunkStore::open(dir.path()).unwrap();
        store.put(blob(b"only"));
        assert_eq!(store.compact_with(|| Ok(HashSet::new())).unwrap(), None);
        assert!(store.contains(&blob(b"only").address()));
    }

    #[test]
    fn mark_error_aborts_the_pass_with_the_store_untouched() {
        let dir = TempDir::new("durable-compact-markerr");
        let store = DurableChunkStore::open_with_config(dir.path(), small_config()).unwrap();
        let addresses = populate(&store, 100);
        assert!(store.segment_count() > 1);
        let before = store.stats();

        let err = store
            .compact_with(|| Err(StorageError::ChunkNotFound(spitz_crypto::sha256(b"x"))))
            .unwrap_err();
        assert!(matches!(err, StorageError::ChunkNotFound(_)));
        assert_eq!(store.stats().chunk_count, before.chunk_count);
        for address in &addresses {
            assert!(store.contains(address));
        }
        // The revive guard was released: plain dedup works again.
        store.put(blob(&0u32.to_be_bytes().repeat(8)));
        assert!(store.stats().dedup_hits > before.dedup_hits);
    }

    #[test]
    fn dedup_during_compaction_revives_the_doomed_chunk() {
        let dir = TempDir::new("durable-compact-revive");
        let store =
            Arc::new(DurableChunkStore::open_with_config(dir.path(), small_config()).unwrap());
        let addresses = populate(&store, 100);
        assert!(store.segment_count() > 1);
        let target = addresses[0];

        // The mark closure plays a concurrent writer: it re-puts a chunk
        // whose only copy sits in a victim, then declares *nothing* live.
        // The re-put must not count as a dedup hit on the doomed copy —
        // the chunk is re-appended to the active segment and survives.
        let writer = Arc::clone(&store);
        let report = store
            .compact_with(move || {
                writer.put(blob(&0u32.to_be_bytes().repeat(8)));
                Ok(HashSet::new())
            })
            .unwrap()
            .expect("sealed segments exist");
        assert!(report.chunks_dropped > 0);
        assert_eq!(report.live_chunks_rewritten, 0);

        assert_eq!(
            store.get(&target).unwrap().data(),
            0u32.to_be_bytes().repeat(8)
        );
        assert!(store.audit().is_empty());
    }

    #[test]
    fn compaction_crash_points_recover_cleanly() {
        for fault in [CompactionFault::BeforeSwap, CompactionFault::BeforeDelete] {
            let dir = TempDir::new("durable-compact-crash");
            let addresses;
            let live: HashSet<Hash>;
            let head = spitz_crypto::sha256(b"crash head");
            {
                let store =
                    DurableChunkStore::open_with_config(dir.path(), small_config()).unwrap();
                addresses = populate(&store, 150);
                store.set_root("head", head);
                assert!(store.segment_count() > 1);
                store.flush().unwrap();

                live = addresses.iter().step_by(2).copied().collect();
                let keep = live.clone();
                let err = store
                    .compact_with_fault(move || Ok(keep), fault)
                    .unwrap_err();
                assert!(err.to_string().contains("injected"), "{fault:?}: {err}");
                // The process dies here: no Drop, no flush.
                std::mem::forget(store);
            }

            let store = DurableChunkStore::open_with_config(dir.path(), small_config()).unwrap();
            assert_eq!(store.root("head"), Some(head), "{fault:?}");
            let mut swept = 0u32;
            for (i, address) in addresses.iter().enumerate() {
                let reachable = live.contains(address);
                match (fault, reachable) {
                    // Before the swap nothing was deleted: everything is
                    // still readable after recovery.
                    (CompactionFault::BeforeSwap, _) | (_, true) => {
                        assert_eq!(
                            store.get(address).unwrap().data(),
                            (i as u32).to_be_bytes().repeat(8),
                            "{fault:?}"
                        );
                    }
                    // After the durable swap, dropped victim chunks are
                    // gone for good even though the victim files outlived
                    // the crash (the open path deletes condemned files);
                    // garbage that sat in the still-active segment is
                    // untouched and must read back intact.
                    (CompactionFault::BeforeDelete, false) => {
                        if store.contains(address) {
                            assert_eq!(
                                store.get(address).unwrap().data(),
                                (i as u32).to_be_bytes().repeat(8),
                                "{fault:?}"
                            );
                        } else {
                            swept += 1;
                        }
                    }
                    (CompactionFault::None, _) => unreachable!(),
                }
            }
            if fault == CompactionFault::BeforeDelete {
                assert!(swept > 0, "the durable swap must have swept garbage");
            }
            assert!(store.audit().is_empty(), "{fault:?}");
            assert!(!dir.path().join(COMPACT_STAGING_DIR).exists());
            // No condemned leftovers: a fresh open deleted them.
            for path in std::fs::read_dir(dir.path()).unwrap() {
                let name = path.unwrap().file_name();
                let name = name.to_str().unwrap();
                if let Some(id) = parse_segment_file_name(name) {
                    assert!(
                        store.inner.read().segments.iter().any(|s| s.id == id),
                        "{fault:?}: stray segment file {name}"
                    );
                }
            }
        }
    }

    #[test]
    fn repeated_compaction_bounds_disk_usage() {
        let dir = TempDir::new("durable-compact-bound");
        let store = DurableChunkStore::open_with_config(dir.path(), small_config()).unwrap();
        // Overwrite churn: each round writes fresh chunks, only the newest
        // round is live. Compacting every round must keep the disk bounded
        // near one round's worth of data.
        let mut round_addresses: Vec<Hash> = Vec::new();
        for round in 0..20u32 {
            round_addresses = (0..40u32)
                .map(|i| {
                    store.put(blob(
                        &[round.to_be_bytes(), i.to_be_bytes()].concat().repeat(8),
                    ))
                })
                .collect();
            let keep: HashSet<Hash> = round_addresses.iter().copied().collect();
            store.compact_with(move || Ok(keep)).unwrap();
        }
        let stats = store.stats();
        assert!(stats.live_bytes > 0);
        assert!(
            stats.disk_bytes <= 2 * stats.live_bytes + 2 * small_config().segment_target_bytes,
            "disk {} vs live {}",
            stats.disk_bytes,
            stats.live_bytes
        );
        for address in &round_addresses {
            assert!(store.get(address).is_ok());
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let dir = TempDir::new("durable-badconfig");
        let config = DurableConfig {
            segment_target_bytes: 0,
            ..DurableConfig::default()
        };
        assert!(matches!(
            DurableChunkStore::open_with_config(dir.path(), config),
            Err(StorageError::InvalidConfig(_))
        ));
    }
}
