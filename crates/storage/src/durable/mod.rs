//! Durable, crash-recoverable chunk storage.
//!
//! [`DurableChunkStore`] implements the same [`ChunkStore`] trait as the
//! in-memory store, but persists every chunk to append-only *segment files*
//! in a store directory, so a database reopened from the same path
//! reproduces its exact records-roots, chain head and digest.
//!
//! # On-disk layout
//!
//! ```text
//! store-dir/
//! ├── MANIFEST                 segment order, stats snapshot, root snapshot
//! ├── seg-0000000000.spitz     sealed segment (append-only, never rewritten)
//! ├── seg-0000000001.spitz     sealed segment
//! └── seg-0000000002.spitz     active segment (appends go here)
//!
//! segment  := magic "SPITZSEG" | version u32 | segment_id u64 | record*
//! record   := payload_len u32  -- big endian
//!           | kind u8          -- ChunkKind tag, or the root-record tag 'R'
//!           | address [32]     -- chunk: SHA-256(kind || payload)
//!                              -- root:  the published root hash
//!           | payload [payload_len]
//!           | crc u32          -- CRC-32 over all of the above
//! ```
//!
//! # Log-embedded root publication
//!
//! Named root pointers (the ledger chain head) are published as **root
//! records appended to the active segment**, not by rewriting the manifest.
//! Because a root record lands in the same append-only file *after* the
//! chunks it references, the data-before-pointer invariant holds by
//! construction: crash recovery only replays a root record if it is intact,
//! and an intact record at offset X proves every record before X in that
//! segment is intact too (sealed segments were fsynced at rotation). The
//! manifest is rewritten only on rotation and clean shutdown, where its root
//! snapshot is a *starting point* that segment replay then brings up to
//! date — so a crash after N un-manifested commits recovers to the last
//! root record that reached the disk.
//!
//! When a commit must actually be on stable storage is a policy question
//! that lives one layer up, in `spitz-ledger`'s `CommitPipeline`
//! (`DurabilityPolicy::{Strict, Grouped, Os}`); this store only promises
//! that [`ChunkStore::sync`] orders everything appended so far before any
//! later root record, and that recovery lands on the newest root whose log
//! prefix survived. The trade-offs, briefly:
//!
//! * **Strict** — one `fsync` per commit batch, after the root record. An
//!   acknowledged commit is never lost; slowest for a single writer.
//! * **Grouped** — commits are acknowledged at *publication* (root record
//!   appended) and fsynced together at least every `max_delay`/`max_writes`.
//!   A crash loses at most that window; recovery is still clean because the
//!   log prefix property above holds at every byte.
//! * **Os** — durability is left to the page cache (fastest; a crash loses
//!   whatever the OS had not written back, recovery behaves as for Grouped).
//!
//! # Recovery rules
//!
//! Opening a store scans every segment in manifest order and rebuilds the
//! in-memory address → (segment, offset) index plus the root-pointer map:
//!
//! 1. A record that is cut short **at the tail of the last segment** — or
//!    whose CRC fails there — is the remnant of an append interrupted by a
//!    crash. It is dropped and the file truncated back to the last intact
//!    record; everything before it survives. A torn *root* record is
//!    dropped the same way, which is exactly what makes grouped commits
//!    safe: the store falls back to the previous durable root.
//! 2. The same damage anywhere else cannot be a torn append (appends only
//!    ever race the tail), so the open fails with
//!    [`StorageError::SegmentCorrupt`] — tampering or media corruption.
//!    One inherent ambiguity (shared with every length-prefixed WAL): a
//!    corrupted *length prefix* whose claimed extent reaches past the end
//!    of the last segment is indistinguishable from a torn append and is
//!    dropped along with everything after it. For ledger data this is
//!    still loud, not silent — the head root pointer stops resolving and
//!    the reopen fails.
//! 3. A record whose CRC passes but whose stored address does not hash to
//!    its contents is caught by [`ChunkStore::audit`] (and by
//!    [`crate::store::VerifyingStore`] at read time).
//! 4. Root pointers start from the manifest snapshot and are then
//!    overwritten by every intact root record, replayed in segment order —
//!    the final state is the newest published root that survived.
//! 5. `chunk_count` and `physical_bytes` are recomputed from the scan and
//!    are always exact. `logical_bytes`, `dedup_hits` and `reads` come from
//!    the manifest snapshot: exact after a clean shutdown, a lower bound
//!    after a crash (`logical_bytes` is clamped to at least
//!    `physical_bytes`).
//! 6. Segment files present on disk but missing from the manifest (a crash
//!    between rotation and the manifest rewrite) are adopted in id order.
//!
//! Writes go to the active segment; when it exceeds
//! [`DurableConfig::segment_target_bytes`] it is sealed and a new segment
//! is started. An optional byte-budgeted [`cache::ChunkCache`] keeps hot
//! chunks (index roots, recent blocks) resident so verified reads stay near
//! in-memory speed.
//!
//! # Concurrency
//!
//! The store is built so the hot read path never touches the writer lock:
//! statistics are atomics, the read cache has its own mutex, and cold reads
//! take the inner lock only briefly (shared) to resolve an address before
//! reading through a per-segment handle. Steady-state `fsync` calls
//! ([`ChunkStore::sync`], `fsync_each_put`) go through dedicated file
//! handles held outside every lock, so they stall neither readers nor the
//! cache. The one exception is the rotation fsync of a segment being
//! sealed: it runs under the writer lock *before* the successor segment is
//! created, because nothing may be appended after a sealed segment until
//! that segment is durable (a crash must only ever tear the *last*
//! segment). Rotation happens once per [`DurableConfig::segment_target_bytes`].

pub mod cache;
pub mod format;
pub mod manifest;
pub mod segment;

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use spitz_crypto::Hash;

use crate::chunk::{Chunk, ChunkKind};
use crate::error::StorageError;
use crate::store::{ChunkStore, StoreStats};
use crate::Result;

use cache::ChunkCache;
use manifest::Manifest;
use segment::{parse_segment_file_name, ChunkLocation, Segment};

/// Tuning knobs of a [`DurableChunkStore`].
#[derive(Debug, Clone, Copy)]
pub struct DurableConfig {
    /// Seal the active segment and rotate once it grows past this size.
    pub segment_target_bytes: u64,
    /// Byte budget of the read-through chunk cache; 0 disables caching.
    pub cache_capacity_bytes: usize,
    /// `fsync` the active segment after every put (safest, slowest). With
    /// the default `false`, durability is up to the OS page cache until
    /// [`ChunkStore::sync`], [`DurableChunkStore::flush`] or drop — or up
    /// to the commit pipeline's `DurabilityPolicy` when one is driving the
    /// store.
    pub fsync_each_put: bool,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            segment_target_bytes: 64 * 1024 * 1024,
            cache_capacity_bytes: 16 * 1024 * 1024,
            fsync_each_put: false,
        }
    }
}

/// [`StoreStats`] held as atomics so readers never take a lock to bump a
/// counter.
#[derive(Debug, Default)]
struct AtomicStats {
    chunk_count: AtomicU64,
    physical_bytes: AtomicU64,
    logical_bytes: AtomicU64,
    dedup_hits: AtomicU64,
    reads: AtomicU64,
}

impl AtomicStats {
    fn load(&self) -> StoreStats {
        StoreStats {
            chunk_count: self.chunk_count.load(Ordering::Relaxed),
            physical_bytes: self.physical_bytes.load(Ordering::Relaxed),
            logical_bytes: self.logical_bytes.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
        }
    }

    fn store(&self, stats: StoreStats) {
        self.chunk_count.store(stats.chunk_count, Ordering::Relaxed);
        self.physical_bytes
            .store(stats.physical_bytes, Ordering::Relaxed);
        self.logical_bytes
            .store(stats.logical_bytes, Ordering::Relaxed);
        self.dedup_hits.store(stats.dedup_hits, Ordering::Relaxed);
        self.reads.store(stats.reads, Ordering::Relaxed);
    }
}

struct DurableInner {
    index: HashMap<Hash, ChunkLocation>,
    /// All open segments in id order; the last one is active. `Arc` so the
    /// lock can be dropped before slow file I/O (reads, fsync) happens.
    segments: Vec<Arc<Segment>>,
    next_segment: u64,
    roots: std::collections::BTreeMap<String, Hash>,
    /// Bytes dropped as torn tail records during the last open.
    torn_bytes_recovered: u64,
}

/// A crash-recoverable [`ChunkStore`] over append-only segment files.
pub struct DurableChunkStore {
    dir: PathBuf,
    config: DurableConfig,
    inner: RwLock<DurableInner>,
    /// The read cache behind its own lock, so hot reads contend only here.
    cache: Mutex<ChunkCache>,
    stats: AtomicStats,
    /// Id of the oldest segment that may hold data not yet on stable
    /// storage. [`ChunkStore::sync`] fsyncs every segment from here up —
    /// never just the active one — so a commit acknowledged right after a
    /// rotation cannot race the (out-of-lock) fsync of the sealed segment:
    /// the mark only advances past a segment once an fsync of it has
    /// completed. Monotone non-decreasing.
    first_unsynced: AtomicU64,
}

impl DurableChunkStore {
    /// Open (or create) a store in `dir` with the default configuration.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open_with_config(dir, DurableConfig::default())
    }

    /// Open (or create) a store in `dir`, already wrapped in an [`Arc`].
    pub fn shared(dir: impl AsRef<Path>) -> Result<Arc<Self>> {
        Self::open(dir).map(Arc::new)
    }

    /// Open (or create) a store in `dir` with explicit tuning.
    pub fn open_with_config(dir: impl AsRef<Path>, config: DurableConfig) -> Result<Self> {
        if config.segment_target_bytes == 0 {
            return Err(StorageError::InvalidConfig(
                "segment_target_bytes must be positive".into(),
            ));
        }
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| StorageError::io(&dir, e))?;

        let manifest = Manifest::load(&dir)?.unwrap_or_default();
        let segment_ids = discover_segments(&dir, &manifest)?;

        let mut inner = DurableInner {
            index: HashMap::new(),
            segments: Vec::new(),
            next_segment: 0,
            roots: manifest.roots.clone(),
            torn_bytes_recovered: 0,
        };
        let mut stats = manifest.stats;

        // Rebuild the address index by scanning every segment and replay
        // root publications in log order; only the last segment may carry a
        // torn tail (recovery rules 1/2 above).
        stats.chunk_count = 0;
        stats.physical_bytes = 0;
        for (position, &id) in segment_ids.iter().enumerate() {
            let segment = Segment::open(&dir, id)?;
            let is_last = position + 1 == segment_ids.len();
            let outcome = segment.scan(is_last)?;
            inner.torn_bytes_recovered += outcome.torn_bytes;
            for (address, location) in outcome.records {
                // Later duplicates of an address are re-appends of identical
                // content; keep the first location.
                if inner.index.try_insert_location(address, location) {
                    let chunk_bytes = location.len as u64 - format::RECORD_OVERHEAD as u64;
                    stats.chunk_count += 1;
                    stats.physical_bytes += chunk_bytes + 1 + spitz_crypto::hash::HASH_LEN as u64;
                }
            }
            // The log is the truth for roots: every publication since the
            // manifest snapshot is replayed over it (recovery rule 4).
            for (name, hash) in outcome.roots {
                inner.roots.insert(name, hash);
            }
            inner.segments.push(Arc::new(segment));
        }
        if inner.segments.is_empty() {
            inner.segments.push(Arc::new(Segment::create(&dir, 0)?));
        }
        inner.next_segment = inner.segments.last().map(|s| s.id + 1).unwrap_or(1);
        // A stale manifest can under-count logical writes after a crash;
        // every physical byte was a logical write at least once.
        stats.logical_bytes = stats.logical_bytes.max(stats.physical_bytes);

        // Conservative: everything this process has not fsynced itself is
        // treated as possibly dirty, so the first sync() covers every
        // segment once (a no-op fsync of a clean file is cheap).
        let first_unsynced = inner.segments.first().map(|s| s.id).unwrap_or(0);
        let store = DurableChunkStore {
            dir,
            config,
            cache: Mutex::new(ChunkCache::new(config.cache_capacity_bytes)),
            stats: AtomicStats::default(),
            inner: RwLock::new(inner),
            first_unsynced: AtomicU64::new(first_unsynced),
        };
        store.stats.store(stats);
        store
            .manifest_snapshot(&store.inner.read())
            .store(&store.dir)?;
        Ok(store)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configuration the store was opened with.
    pub fn config(&self) -> DurableConfig {
        self.config
    }

    /// Bytes dropped as torn tail records while opening (crash recovery).
    pub fn torn_bytes_recovered(&self) -> u64 {
        self.inner.read().torn_bytes_recovered
    }

    /// Number of segment files (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.inner.read().segments.len()
    }

    /// `(hits, misses)` of the read-through cache since open.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.lock().hit_stats()
    }

    /// Total number of distinct chunks of a particular kind (diagnostics,
    /// mirrors [`crate::store::InMemoryChunkStore::count_kind`]).
    pub fn count_kind(&self, kind: ChunkKind) -> usize {
        self.inner
            .read()
            .index
            .values()
            .filter(|location| location.kind == kind)
            .count()
    }

    /// Force segment contents and the manifest to stable storage.
    pub fn flush(&self) -> Result<()> {
        self.sync()?;
        let manifest = self.manifest_snapshot(&self.inner.read());
        manifest.store(&self.dir)
    }

    fn manifest_snapshot(&self, inner: &DurableInner) -> Manifest {
        Manifest {
            segments: inner.segments.iter().map(|s| s.id).collect(),
            next_segment: inner.next_segment,
            stats: self.stats.load(),
            roots: inner.roots.clone(),
        }
    }

    /// Resolve an address to its segment and location without holding the
    /// lock across the disk read.
    fn locate(&self, address: &Hash) -> Result<(Arc<Segment>, ChunkLocation)> {
        let inner = self.inner.read();
        let location = *inner
            .index
            .get(address)
            .ok_or(StorageError::ChunkNotFound(*address))?;
        let position = inner
            .segments
            .binary_search_by_key(&location.segment, |s| s.id)
            .map_err(|_| StorageError::ChunkNotFound(*address))?;
        Ok((Arc::clone(&inner.segments[position]), location))
    }
}

impl ChunkStore for DurableChunkStore {
    /// Store a chunk, appending it to the active segment; panics on an I/O
    /// failure. Fallible callers should use [`ChunkStore::try_put`].
    fn put(&self, chunk: Chunk) -> Hash {
        self.try_put(chunk)
            .expect("append to active segment failed; use try_put to handle I/O errors")
    }

    /// Store a chunk, surfacing I/O failures (disk full, EIO) as
    /// [`StorageError`] instead of panicking.
    fn try_put(&self, chunk: Chunk) -> Result<Hash> {
        let address = chunk.address();
        self.stats
            .logical_bytes
            .fetch_add(chunk.storage_size() as u64, Ordering::Relaxed);

        // Manifest snapshot of a rotation, and the segment to fsync under
        // `fsync_each_put` — handled after the lock is dropped so the
        // steady-state put path never fsyncs under a lock readers need.
        let mut rotated_manifest: Option<Manifest> = None;
        let mut fsync_target: Option<Arc<Segment>> = None;
        {
            let mut inner = self.inner.write();
            if inner.index.contains_key(&address) {
                self.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(address);
            }

            let active = Arc::clone(inner.segments.last().expect("active segment exists"));
            let location = active.append(&address, &chunk)?;
            self.stats.chunk_count.fetch_add(1, Ordering::Relaxed);
            self.stats
                .physical_bytes
                .fetch_add(chunk.storage_size() as u64, Ordering::Relaxed);
            inner.index.insert(address, location);

            if active.len() >= self.config.segment_target_bytes {
                // Seal and fsync *before* the successor segment exists —
                // still under the writer lock. This is the one fsync that
                // must stay inside: appends are serialized by this lock, so
                // nothing can land in the new segment (and possibly reach
                // disk via writeback) until the sealed file is durable;
                // otherwise a crash could tear a *non-last* segment, which
                // recovery rightly refuses to open. Rotation is rare (once
                // per `segment_target_bytes`) and cache hits don't take
                // this lock.
                active.sync()?;
                let _ = self.first_unsynced.compare_exchange(
                    active.id,
                    active.id + 1,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
                let id = inner.next_segment;
                inner.next_segment += 1;
                inner
                    .segments
                    .push(Arc::new(Segment::create(&self.dir, id)?));
                rotated_manifest = Some(self.manifest_snapshot(&inner));
            } else if self.config.fsync_each_put {
                fsync_target = Some(active);
            }
        }
        self.cache.lock().insert(address, Arc::new(chunk));

        if let Some(manifest) = rotated_manifest {
            manifest.store(&self.dir)?;
        }
        if let Some(active) = fsync_target {
            active.sync()?;
        }
        Ok(address)
    }

    fn get(&self, address: &Hash) -> Result<Arc<Chunk>> {
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        if self.config.cache_capacity_bytes > 0 {
            if let Some(chunk) = self.cache.lock().get(address) {
                return Ok(chunk);
            }
        }
        let (segment, location) = self.locate(address)?;
        let chunk = Arc::new(segment.read(&location)?);
        self.cache.lock().insert(*address, Arc::clone(&chunk));
        Ok(chunk)
    }

    fn contains(&self, address: &Hash) -> bool {
        self.inner.read().index.contains_key(address)
    }

    fn stats(&self) -> StoreStats {
        self.stats.load()
    }

    fn audit(&self) -> Vec<Hash> {
        // Snapshot the index, then read every chunk without the lock and
        // without polluting the cache (a bulk scan would flush the hot set).
        let entries: Vec<(Hash, ChunkLocation)> = self
            .inner
            .read()
            .index
            .iter()
            .map(|(a, l)| (*a, *l))
            .collect();
        let mut failures = Vec::new();
        for (address, location) in entries {
            let ok = self
                .locate(&address)
                .and_then(|(segment, _)| segment.read(&location))
                .map(|chunk| chunk.address() == address)
                .unwrap_or(false);
            if !ok {
                failures.push(address);
            }
        }
        failures
    }

    /// Publish a root pointer; panics on an I/O failure. Fallible callers
    /// should use [`ChunkStore::try_set_root`].
    fn set_root(&self, name: &str, hash: Hash) {
        self.try_set_root(name, hash)
            .expect("root record append failed; use try_set_root to handle I/O errors")
    }

    /// Publish a root pointer by appending a root record to the active
    /// segment. The record trails every chunk it can reference in the same
    /// log, so the data-before-pointer ordering needs no fsync here; when
    /// the publication must reach stable storage is the caller's policy
    /// (see [`ChunkStore::sync`]).
    fn try_set_root(&self, name: &str, hash: Hash) -> Result<()> {
        let mut inner = self.inner.write();
        let active = inner.segments.last().expect("active segment exists");
        active.append_root(name, &hash)?;
        inner.roots.insert(name.to_string(), hash);
        Ok(())
    }

    fn root(&self, name: &str) -> Option<Hash> {
        self.inner.read().roots.get(name).copied()
    }

    /// `fsync` every segment that may hold non-durable data — the active
    /// one plus any sealed segment whose rotation fsync has not been
    /// observed to complete. Runs outside every lock readers use.
    fn sync(&self) -> Result<()> {
        let (targets, active_id) = {
            let inner = self.inner.read();
            let from = self.first_unsynced.load(Ordering::Acquire);
            let targets: Vec<Arc<Segment>> = inner
                .segments
                .iter()
                .filter(|s| s.id >= from)
                .map(Arc::clone)
                .collect();
            (targets, inner.segments.last().map(|s| s.id))
        };
        for segment in &targets {
            segment.sync()?;
        }
        // Everything below the active segment is sealed and now durable;
        // the active segment may keep receiving appends, so the mark stays
        // at it. `fetch_max` keeps the mark monotone under concurrent
        // syncs.
        if let Some(active_id) = active_id {
            self.first_unsynced.fetch_max(active_id, Ordering::AcqRel);
        }
        Ok(())
    }
}

impl Drop for DurableChunkStore {
    fn drop(&mut self) {
        // Best-effort durability on clean shutdown; crash recovery covers
        // the rest.
        let _ = self.flush();
    }
}

impl std::fmt::Debug for DurableChunkStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableChunkStore")
            .field("dir", &self.dir)
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Union of the manifest's segment list and the segment files actually on
/// disk (adopting rotations the manifest missed), in id order.
fn discover_segments(dir: &Path, manifest: &Manifest) -> Result<Vec<u64>> {
    let mut ids: Vec<u64> = manifest.segments.clone();
    let entries = std::fs::read_dir(dir).map_err(|e| StorageError::io(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StorageError::io(dir, e))?;
        if let Some(id) = entry.file_name().to_str().and_then(parse_segment_file_name) {
            ids.push(id);
        }
    }
    ids.sort_unstable();
    ids.dedup();
    Ok(ids)
}

/// Tiny extension so the open-time scan can count only first occurrences.
trait TryInsertLocation {
    fn try_insert_location(&mut self, address: Hash, location: ChunkLocation) -> bool;
}

impl TryInsertLocation for HashMap<Hash, ChunkLocation> {
    fn try_insert_location(&mut self, address: Hash, location: ChunkLocation) -> bool {
        use std::collections::hash_map::Entry;
        match self.entry(address) {
            Entry::Occupied(_) => false,
            Entry::Vacant(slot) => {
                slot.insert(location);
                true
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A uniquely named temp directory removed on drop (the workspace has
    /// no `tempfile` dependency).
    pub struct TempDir(PathBuf);

    impl TempDir {
        pub fn new(label: &str) -> TempDir {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path =
                std::env::temp_dir().join(format!("spitz-{label}-{}-{n}", std::process::id()));
            std::fs::create_dir_all(&path).expect("create temp dir");
            TempDir(path)
        }

        pub fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::TempDir;

    fn blob(data: &[u8]) -> Chunk {
        Chunk::new(ChunkKind::Blob, data.to_vec())
    }

    fn small_config() -> DurableConfig {
        DurableConfig {
            segment_target_bytes: 4 * 1024,
            cache_capacity_bytes: 0,
            fsync_each_put: false,
        }
    }

    #[test]
    fn put_get_roundtrip_and_dedup() {
        let dir = TempDir::new("durable-roundtrip");
        let store = DurableChunkStore::open(dir.path()).unwrap();
        let addr = store.put(blob(b"hello durable"));
        assert!(store.contains(&addr));
        assert_eq!(store.get(&addr).unwrap().data(), b"hello durable");

        for _ in 0..5 {
            assert_eq!(store.put(blob(b"hello durable")), addr);
        }
        let stats = store.stats();
        assert_eq!(stats.chunk_count, 1);
        assert_eq!(stats.dedup_hits, 5);
        assert!(stats.logical_bytes > stats.physical_bytes);
        assert!(store.audit().is_empty());

        let missing = spitz_crypto::sha256(b"absent");
        assert!(matches!(
            store.get(&missing),
            Err(StorageError::ChunkNotFound(_))
        ));
    }

    #[test]
    fn reopen_preserves_chunks_stats_and_roots() {
        let dir = TempDir::new("durable-reopen");
        let mut addresses = Vec::new();
        let head = spitz_crypto::sha256(b"chain head");
        let stats_before;
        {
            let store = DurableChunkStore::open_with_config(dir.path(), small_config()).unwrap();
            for i in 0..200u32 {
                addresses.push(store.put(blob(&i.to_be_bytes())));
            }
            store.put(blob(&0u32.to_be_bytes())); // one dedup hit
            store.set_root("ledger/head", head);
            stats_before = store.stats();
            assert!(store.segment_count() > 1, "rotation must have happened");
        }

        let store = DurableChunkStore::open_with_config(dir.path(), small_config()).unwrap();
        assert_eq!(store.torn_bytes_recovered(), 0);
        for (i, addr) in addresses.iter().enumerate() {
            let chunk = store.get(addr).unwrap();
            assert_eq!(chunk.data(), (i as u32).to_be_bytes());
        }
        assert_eq!(store.root("ledger/head"), Some(head));
        let stats = store.stats();
        assert_eq!(stats.chunk_count, stats_before.chunk_count);
        assert_eq!(stats.physical_bytes, stats_before.physical_bytes);
        assert_eq!(stats.logical_bytes, stats_before.logical_bytes);
        assert_eq!(stats.dedup_hits, stats_before.dedup_hits);
        assert_eq!(store.count_kind(ChunkKind::Blob), 200);
        assert!(store.audit().is_empty());
    }

    #[test]
    fn root_publications_survive_without_a_manifest_rewrite() {
        let dir = TempDir::new("durable-root-log");
        let older = spitz_crypto::sha256(b"older head");
        let newer = spitz_crypto::sha256(b"newer head");
        {
            let store = DurableChunkStore::open(dir.path()).unwrap();
            store.put(blob(b"payload"));
            store.set_root("head", older);
            store.set_root("head", newer);
            // Simulate a crash: no flush, no manifest rewrite. The root
            // records are already in the segment log (page cache), so a
            // reopen must recover them by replay alone.
            std::mem::forget(store);
        }
        let store = DurableChunkStore::open(dir.path()).unwrap();
        assert_eq!(store.root("head"), Some(newer));
    }

    #[test]
    fn cache_serves_repeated_reads() {
        let dir = TempDir::new("durable-cache");
        let config = DurableConfig {
            cache_capacity_bytes: 1024 * 1024,
            ..small_config()
        };
        let store = DurableChunkStore::open_with_config(dir.path(), config).unwrap();
        let addr = store.put(blob(b"hot chunk"));
        for _ in 0..10 {
            store.get(&addr).unwrap();
        }
        let (hits, misses) = store.cache_stats();
        assert_eq!(misses, 0, "put is write-through so every read hits");
        assert_eq!(hits, 10);
    }

    #[test]
    fn concurrent_puts_deduplicate_on_disk() {
        let dir = TempDir::new("durable-concurrent");
        let store =
            Arc::new(DurableChunkStore::open_with_config(dir.path(), small_config()).unwrap());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    store.put(blob(&i.to_be_bytes()));
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let stats = store.stats();
        assert_eq!(stats.chunk_count, 200);
        assert_eq!(stats.dedup_hits, 3 * 200);
    }

    #[test]
    fn concurrent_readers_and_writer_make_progress() {
        let dir = TempDir::new("durable-read-concurrency");
        let config = DurableConfig {
            cache_capacity_bytes: 64 * 1024,
            ..small_config()
        };
        let store = Arc::new(DurableChunkStore::open_with_config(dir.path(), config).unwrap());
        let addresses: Arc<Vec<Hash>> = Arc::new(
            (0..100u32)
                .map(|i| store.put(blob(&i.to_be_bytes().repeat(8))))
                .collect(),
        );
        let mut handles = Vec::new();
        for reader in 0..4usize {
            let store = Arc::clone(&store);
            let addresses = Arc::clone(&addresses);
            handles.push(std::thread::spawn(move || {
                for round in 0..200usize {
                    let addr = &addresses[(reader * 31 + round) % addresses.len()];
                    assert!(store.get(addr).is_ok());
                }
            }));
        }
        {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 100..200u32 {
                    store.put(blob(&i.to_be_bytes().repeat(8)));
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(store.stats().chunk_count, 200);
        assert!(store.audit().is_empty());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let dir = TempDir::new("durable-badconfig");
        let config = DurableConfig {
            segment_target_bytes: 0,
            ..DurableConfig::default()
        };
        assert!(matches!(
            DurableChunkStore::open_with_config(dir.path(), config),
            Err(StorageError::InvalidConfig(_))
        ));
    }
}
