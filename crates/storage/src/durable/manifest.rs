//! The manifest: the one small mutable file of a durable store.
//!
//! Everything else in the store directory is append-only segment data; the
//! manifest records what cannot be derived from a segment scan alone:
//!
//! * the segment order (which also names the active segment — the last one),
//! * the cumulative [`StoreStats`] counters that are not reconstructible
//!   from surviving chunks (`logical_bytes`, `dedup_hits`, `reads`),
//! * the named root pointers (ledger chain head etc.).
//!
//! The manifest is plain text, one `key value...` pair per line, and is
//! replaced atomically (write to a temporary file, `rename` over the old
//! one) so a crash never leaves a half-written manifest behind. After a
//! crash the manifest may be *stale* — counters miss the writes since the
//! last rewrite — so the open path treats the segment scan as authoritative
//! for `chunk_count`/`physical_bytes` and clamps `logical_bytes` from below.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use spitz_crypto::Hash;

use crate::error::StorageError;
use crate::store::StoreStats;
use crate::Result;

/// File name of the manifest inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// First line of every manifest.
const MANIFEST_HEADER: &str = "spitz-durable-manifest v1";

/// Parsed manifest contents.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Segment ids in creation order; the last entry is the active segment.
    pub segments: Vec<u64>,
    /// Id the next rotated segment will get.
    pub next_segment: u64,
    /// Stats snapshot at the time of the last manifest rewrite.
    pub stats: StoreStats,
    /// Named root pointers (sorted map so rewrites are deterministic).
    pub roots: BTreeMap<String, Hash>,
    /// Segment ids that a compaction has superseded: their live chunks were
    /// rewritten elsewhere and this manifest no longer references them, but
    /// their files may still exist if the process died before deleting them.
    /// The open path deletes these files and never adopts them as segments.
    pub condemned: Vec<u64>,
    /// Segment ids that a scrub pass found corrupt and excised: salvageable
    /// live chunks were rewritten into fresh segments and this manifest no
    /// longer references them, but the damaged files may still be in the
    /// store directory if the process died before moving them into the
    /// `quarantine/` subdirectory. The open path finishes the move (the
    /// evidence is preserved, unlike condemned segments, which are deleted)
    /// and never adopts them as segments.
    pub quarantined: Vec<u64>,
}

impl Manifest {
    /// Serialize to the text form.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(MANIFEST_HEADER);
        out.push('\n');
        let ids: Vec<String> = self.segments.iter().map(|id| id.to_string()).collect();
        out.push_str(&format!("segments {}\n", ids.join(" ")));
        out.push_str(&format!("next-segment {}\n", self.next_segment));
        out.push_str(&format!(
            "stats chunks={} physical={} logical={} dedup={} reads={} live={}\n",
            self.stats.chunk_count,
            self.stats.physical_bytes,
            self.stats.logical_bytes,
            self.stats.dedup_hits,
            self.stats.reads,
            self.stats.live_bytes,
        ));
        if !self.condemned.is_empty() {
            let ids: Vec<String> = self.condemned.iter().map(|id| id.to_string()).collect();
            out.push_str(&format!("condemned {}\n", ids.join(" ")));
        }
        if !self.quarantined.is_empty() {
            let ids: Vec<String> = self.quarantined.iter().map(|id| id.to_string()).collect();
            out.push_str(&format!("quarantined {}\n", ids.join(" ")));
        }
        for (name, hash) in &self.roots {
            out.push_str(&format!("root {name} {}\n", hash.to_hex()));
        }
        out
    }

    /// Parse the text form.
    pub fn decode(text: &str) -> Result<Manifest> {
        let corrupt = |msg: &str| StorageError::ManifestCorrupt(msg.to_string());
        let mut lines = text.lines();
        if lines.next() != Some(MANIFEST_HEADER) {
            return Err(corrupt("missing header"));
        }
        let mut manifest = Manifest::default();
        for line in lines {
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("segments") => {
                    manifest.segments = parts
                        .map(|id| id.parse().map_err(|_| corrupt("bad segment id")))
                        .collect::<Result<_>>()?;
                }
                Some("next-segment") => {
                    manifest.next_segment = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| corrupt("bad next-segment"))?;
                }
                Some("stats") => {
                    for field in parts {
                        let (key, value) = field
                            .split_once('=')
                            .ok_or_else(|| corrupt("stats field is not key=value"))?;
                        let value: u64 = value.parse().map_err(|_| corrupt("bad stats value"))?;
                        match key {
                            "chunks" => manifest.stats.chunk_count = value,
                            "physical" => manifest.stats.physical_bytes = value,
                            "logical" => manifest.stats.logical_bytes = value,
                            "dedup" => manifest.stats.dedup_hits = value,
                            "reads" => manifest.stats.reads = value,
                            // Absent in pre-compaction manifests; defaults
                            // to zero (= "no mark pass has run").
                            "live" => manifest.stats.live_bytes = value,
                            _ => return Err(corrupt("unknown stats field")),
                        }
                    }
                }
                Some("condemned") => {
                    manifest.condemned = parts
                        .map(|id| id.parse().map_err(|_| corrupt("bad condemned id")))
                        .collect::<Result<_>>()?;
                }
                // Absent in pre-scrub manifests; defaults to empty.
                Some("quarantined") => {
                    manifest.quarantined = parts
                        .map(|id| id.parse().map_err(|_| corrupt("bad quarantined id")))
                        .collect::<Result<_>>()?;
                }
                Some("root") => {
                    let name = parts.next().ok_or_else(|| corrupt("root without name"))?;
                    let hex = parts.next().ok_or_else(|| corrupt("root without hash"))?;
                    let hash = Hash::from_hex(hex).map_err(|_| corrupt("root hash is not hex"))?;
                    manifest.roots.insert(name.to_string(), hash);
                }
                Some(other) => return Err(corrupt(&format!("unknown manifest line {other:?}"))),
                None => {}
            }
        }
        Ok(manifest)
    }

    /// Load the manifest from a store directory, `None` if absent.
    pub fn load(dir: &Path) -> Result<Option<Manifest>> {
        let path = dir.join(MANIFEST_FILE);
        match fs::read_to_string(&path) {
            Ok(text) => Manifest::decode(&text).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StorageError::io("manifest-load", &path, e)),
        }
    }

    /// Atomically and *durably* replace the manifest in `dir`: write a
    /// temporary file, fsync it, rename it over [`MANIFEST_FILE`], and fsync
    /// the directory so the rename itself survives a crash. Compaction
    /// deletes superseded segments only after this returns, so the rename
    /// must actually be on stable storage, not just in the page cache.
    pub fn store(&self, dir: &Path) -> Result<()> {
        let tmp: PathBuf = dir.join(format!("{MANIFEST_FILE}.tmp"));
        {
            let mut file =
                fs::File::create(&tmp).map_err(|e| StorageError::io("manifest-store", &tmp, e))?;
            use std::io::Write as _;
            file.write_all(self.encode().as_bytes())
                .map_err(|e| StorageError::io("manifest-store", &tmp, e))?;
            file.sync_all()
                .map_err(|e| StorageError::io("manifest-store", &tmp, e))?;
        }
        let path = dir.join(MANIFEST_FILE);
        fs::rename(&tmp, &path).map_err(|e| StorageError::io("manifest-store", &path, e))?;
        if let Ok(dir_handle) = fs::File::open(dir) {
            dir_handle
                .sync_all()
                .map_err(|e| StorageError::io("manifest-store", dir, e))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::testutil::TempDir;
    use spitz_crypto::sha256;

    fn sample() -> Manifest {
        Manifest {
            segments: vec![0, 1, 5],
            next_segment: 6,
            stats: StoreStats {
                chunk_count: 12,
                physical_bytes: 3400,
                logical_bytes: 9000,
                dedup_hits: 88,
                reads: 512,
                // disk_bytes is derived from the segment files at runtime
                // and never persisted; live_bytes is.
                disk_bytes: 0,
                live_bytes: 2100,
            },
            roots: [
                ("ledger/head".to_string(), sha256(b"head")),
                ("other".to_string(), sha256(b"other")),
            ]
            .into_iter()
            .collect(),
            condemned: vec![2, 3],
            quarantined: vec![4],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let manifest = sample();
        assert_eq!(Manifest::decode(&manifest.encode()).unwrap(), manifest);
        assert_eq!(Manifest::decode(&Manifest::default().encode()).unwrap(), {
            Manifest::default()
        });
    }

    #[test]
    fn load_store_roundtrip_and_missing_file() {
        let dir = TempDir::new("manifest-roundtrip");
        assert_eq!(Manifest::load(dir.path()).unwrap(), None);
        let manifest = sample();
        manifest.store(dir.path()).unwrap();
        assert_eq!(Manifest::load(dir.path()).unwrap(), Some(manifest.clone()));
        // Rewrites replace atomically.
        let mut updated = manifest;
        updated.stats.reads += 1;
        updated.store(dir.path()).unwrap();
        assert_eq!(Manifest::load(dir.path()).unwrap(), Some(updated));
    }

    #[test]
    fn pre_compaction_manifests_still_decode() {
        // A manifest written before the compaction fields existed: no
        // `live=` key, no `condemned` line. It must decode with both
        // defaulting to "nothing known".
        let text = "spitz-durable-manifest v1\n\
                    segments 0 1\n\
                    next-segment 2\n\
                    stats chunks=3 physical=100 logical=100 dedup=0 reads=7\n\
                    root ledger/head 0000000000000000000000000000000000000000000000000000000000000000\n";
        let manifest = Manifest::decode(text).unwrap();
        assert_eq!(manifest.stats.live_bytes, 0);
        assert!(manifest.condemned.is_empty());
        assert!(manifest.quarantined.is_empty());
        assert_eq!(manifest.segments, vec![0, 1]);
    }

    #[test]
    fn garbage_manifests_are_rejected() {
        for text in [
            "",
            "wrong header\n",
            "spitz-durable-manifest v1\nsegments x\n",
            "spitz-durable-manifest v1\nstats chunks=abc\n",
            "spitz-durable-manifest v1\nstats bogus\n",
            "spitz-durable-manifest v1\nroot name nothex\n",
            "spitz-durable-manifest v1\nnonsense 1\n",
            "spitz-durable-manifest v1\ncondemned x\n",
            "spitz-durable-manifest v1\nquarantined x\n",
        ] {
            assert!(
                matches!(
                    Manifest::decode(text),
                    Err(StorageError::ManifestCorrupt(_))
                ),
                "accepted {text:?}"
            );
        }
    }
}
