//! The manifest: the one small mutable file of a durable store.
//!
//! Everything else in the store directory is append-only segment data; the
//! manifest records what cannot be derived from a segment scan alone:
//!
//! * the segment order (which also names the active segment — the last one),
//! * the cumulative [`StoreStats`] counters that are not reconstructible
//!   from surviving chunks (`logical_bytes`, `dedup_hits`, `reads`),
//! * the named root pointers (ledger chain head etc.).
//!
//! The manifest is plain text, one `key value...` pair per line, and is
//! replaced atomically (write to a temporary file, `rename` over the old
//! one) so a crash never leaves a half-written manifest behind. After a
//! crash the manifest may be *stale* — counters miss the writes since the
//! last rewrite — so the open path treats the segment scan as authoritative
//! for `chunk_count`/`physical_bytes` and clamps `logical_bytes` from below.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use spitz_crypto::Hash;

use crate::error::StorageError;
use crate::store::StoreStats;
use crate::Result;

/// File name of the manifest inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// First line of every manifest.
const MANIFEST_HEADER: &str = "spitz-durable-manifest v1";

/// Parsed manifest contents.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Segment ids in creation order; the last entry is the active segment.
    pub segments: Vec<u64>,
    /// Id the next rotated segment will get.
    pub next_segment: u64,
    /// Stats snapshot at the time of the last manifest rewrite.
    pub stats: StoreStats,
    /// Named root pointers (sorted map so rewrites are deterministic).
    pub roots: BTreeMap<String, Hash>,
}

impl Manifest {
    /// Serialize to the text form.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(MANIFEST_HEADER);
        out.push('\n');
        let ids: Vec<String> = self.segments.iter().map(|id| id.to_string()).collect();
        out.push_str(&format!("segments {}\n", ids.join(" ")));
        out.push_str(&format!("next-segment {}\n", self.next_segment));
        out.push_str(&format!(
            "stats chunks={} physical={} logical={} dedup={} reads={}\n",
            self.stats.chunk_count,
            self.stats.physical_bytes,
            self.stats.logical_bytes,
            self.stats.dedup_hits,
            self.stats.reads,
        ));
        for (name, hash) in &self.roots {
            out.push_str(&format!("root {name} {}\n", hash.to_hex()));
        }
        out
    }

    /// Parse the text form.
    pub fn decode(text: &str) -> Result<Manifest> {
        let corrupt = |msg: &str| StorageError::ManifestCorrupt(msg.to_string());
        let mut lines = text.lines();
        if lines.next() != Some(MANIFEST_HEADER) {
            return Err(corrupt("missing header"));
        }
        let mut manifest = Manifest::default();
        for line in lines {
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("segments") => {
                    manifest.segments = parts
                        .map(|id| id.parse().map_err(|_| corrupt("bad segment id")))
                        .collect::<Result<_>>()?;
                }
                Some("next-segment") => {
                    manifest.next_segment = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| corrupt("bad next-segment"))?;
                }
                Some("stats") => {
                    for field in parts {
                        let (key, value) = field
                            .split_once('=')
                            .ok_or_else(|| corrupt("stats field is not key=value"))?;
                        let value: u64 = value.parse().map_err(|_| corrupt("bad stats value"))?;
                        match key {
                            "chunks" => manifest.stats.chunk_count = value,
                            "physical" => manifest.stats.physical_bytes = value,
                            "logical" => manifest.stats.logical_bytes = value,
                            "dedup" => manifest.stats.dedup_hits = value,
                            "reads" => manifest.stats.reads = value,
                            _ => return Err(corrupt("unknown stats field")),
                        }
                    }
                }
                Some("root") => {
                    let name = parts.next().ok_or_else(|| corrupt("root without name"))?;
                    let hex = parts.next().ok_or_else(|| corrupt("root without hash"))?;
                    let hash = Hash::from_hex(hex).map_err(|_| corrupt("root hash is not hex"))?;
                    manifest.roots.insert(name.to_string(), hash);
                }
                Some(other) => return Err(corrupt(&format!("unknown manifest line {other:?}"))),
                None => {}
            }
        }
        Ok(manifest)
    }

    /// Load the manifest from a store directory, `None` if absent.
    pub fn load(dir: &Path) -> Result<Option<Manifest>> {
        let path = dir.join(MANIFEST_FILE);
        match fs::read_to_string(&path) {
            Ok(text) => Manifest::decode(&text).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StorageError::io(&path, e)),
        }
    }

    /// Atomically replace the manifest in `dir`: write a temporary file and
    /// rename it over [`MANIFEST_FILE`].
    pub fn store(&self, dir: &Path) -> Result<()> {
        let tmp: PathBuf = dir.join(format!("{MANIFEST_FILE}.tmp"));
        fs::write(&tmp, self.encode()).map_err(|e| StorageError::io(&tmp, e))?;
        let path = dir.join(MANIFEST_FILE);
        fs::rename(&tmp, &path).map_err(|e| StorageError::io(&path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::testutil::TempDir;
    use spitz_crypto::sha256;

    fn sample() -> Manifest {
        Manifest {
            segments: vec![0, 1, 5],
            next_segment: 6,
            stats: StoreStats {
                chunk_count: 12,
                physical_bytes: 3400,
                logical_bytes: 9000,
                dedup_hits: 88,
                reads: 512,
            },
            roots: [
                ("ledger/head".to_string(), sha256(b"head")),
                ("other".to_string(), sha256(b"other")),
            ]
            .into_iter()
            .collect(),
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let manifest = sample();
        assert_eq!(Manifest::decode(&manifest.encode()).unwrap(), manifest);
        assert_eq!(Manifest::decode(&Manifest::default().encode()).unwrap(), {
            Manifest::default()
        });
    }

    #[test]
    fn load_store_roundtrip_and_missing_file() {
        let dir = TempDir::new("manifest-roundtrip");
        assert_eq!(Manifest::load(dir.path()).unwrap(), None);
        let manifest = sample();
        manifest.store(dir.path()).unwrap();
        assert_eq!(Manifest::load(dir.path()).unwrap(), Some(manifest.clone()));
        // Rewrites replace atomically.
        let mut updated = manifest;
        updated.stats.reads += 1;
        updated.store(dir.path()).unwrap();
        assert_eq!(Manifest::load(dir.path()).unwrap(), Some(updated));
    }

    #[test]
    fn garbage_manifests_are_rejected() {
        for text in [
            "",
            "wrong header\n",
            "spitz-durable-manifest v1\nsegments x\n",
            "spitz-durable-manifest v1\nstats chunks=abc\n",
            "spitz-durable-manifest v1\nstats bogus\n",
            "spitz-durable-manifest v1\nroot name nothex\n",
            "spitz-durable-manifest v1\nnonsense 1\n",
        ] {
            assert!(
                matches!(
                    Manifest::decode(text),
                    Err(StorageError::ManifestCorrupt(_))
                ),
                "accepted {text:?}"
            );
        }
    }
}
