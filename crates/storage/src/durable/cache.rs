//! A bounded chunk cache so hot reads of a durable store stay near
//! in-memory speed.
//!
//! The cache is byte-budgeted (chunks vary from a few bytes to tens of
//! kilobytes, so an entry count would be meaningless) and uses second-chance
//! ("clock") eviction: a FIFO queue where entries touched since they were
//! enqueued get one more trip around before being dropped. That captures
//! most of LRU's benefit for this workload — index nodes near the root are
//! re-read constantly and stay resident — without per-access list surgery.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use spitz_crypto::Hash;

use crate::chunk::Chunk;

#[derive(Debug)]
struct CacheEntry {
    chunk: Arc<Chunk>,
    /// Set on every hit; gives the entry a second trip through the queue.
    referenced: bool,
}

/// Byte-budgeted chunk cache with second-chance eviction.
#[derive(Debug)]
pub struct ChunkCache {
    capacity_bytes: usize,
    used_bytes: usize,
    entries: HashMap<Hash, CacheEntry>,
    queue: VecDeque<Hash>,
    hits: u64,
    misses: u64,
}

impl ChunkCache {
    /// Create a cache holding at most `capacity_bytes` of chunk payloads.
    /// A capacity of 0 disables caching entirely.
    pub fn new(capacity_bytes: usize) -> Self {
        ChunkCache {
            capacity_bytes,
            used_bytes: 0,
            entries: HashMap::new(),
            queue: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a chunk, marking it recently used.
    pub fn get(&mut self, address: &Hash) -> Option<Arc<Chunk>> {
        match self.entries.get_mut(address) {
            Some(entry) => {
                entry.referenced = true;
                self.hits += 1;
                Some(Arc::clone(&entry.chunk))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a chunk, evicting cold entries to stay within budget. Chunks
    /// larger than the whole budget are not cached.
    pub fn insert(&mut self, address: Hash, chunk: Arc<Chunk>) {
        let size = chunk.storage_size();
        if size > self.capacity_bytes || self.entries.contains_key(&address) {
            return;
        }
        while self.used_bytes + size > self.capacity_bytes {
            let Some(victim) = self.queue.pop_front() else {
                break;
            };
            let Some(entry) = self.entries.get_mut(&victim) else {
                continue;
            };
            if entry.referenced {
                entry.referenced = false;
                self.queue.push_back(victim);
            } else {
                let evicted = self.entries.remove(&victim).expect("entry exists");
                self.used_bytes -= evicted.chunk.storage_size();
            }
        }
        self.used_bytes += size;
        self.queue.push_back(address);
        self.entries.insert(
            address,
            CacheEntry {
                chunk,
                referenced: false,
            },
        );
    }

    /// Drop one chunk from the cache, if resident. Compaction uses this to
    /// invalidate swept (unreachable) chunks so a stale cache entry can
    /// never serve a chunk the store no longer holds. The queue may keep a
    /// stale hash; the eviction loop already skips hashes with no entry.
    pub fn remove(&mut self, address: &Hash) {
        if let Some(entry) = self.entries.remove(address) {
            self.used_bytes -= entry.chunk.storage_size();
        }
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of resident chunks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` counters since creation.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::ChunkKind;

    fn chunk(i: u32, size: usize) -> (Hash, Arc<Chunk>) {
        let mut data = vec![0u8; size];
        data[..4].copy_from_slice(&i.to_be_bytes());
        let chunk = Chunk::new(ChunkKind::Blob, data);
        (chunk.address(), Arc::new(chunk))
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ChunkCache::new(0);
        let (addr, c) = chunk(1, 10);
        cache.insert(addr, c);
        assert!(cache.is_empty());
        assert!(cache.get(&addr).is_none());
    }

    #[test]
    fn stays_within_byte_budget() {
        let mut cache = ChunkCache::new(1000);
        for i in 0..100 {
            let (addr, c) = chunk(i, 67); // storage_size = 67 + 33 = 100
            cache.insert(addr, c);
        }
        assert!(cache.used_bytes() <= 1000);
        assert_eq!(cache.len(), 10);
    }

    #[test]
    fn hot_entries_survive_eviction_pressure() {
        let mut cache = ChunkCache::new(1000);
        let (hot_addr, hot) = chunk(0, 67);
        cache.insert(hot_addr, hot);
        for i in 1..50 {
            let (addr, c) = chunk(i, 67);
            cache.insert(addr, c);
            // Touch the hot chunk between insertions so it keeps its
            // second chance.
            assert!(cache.get(&hot_addr).is_some(), "evicted after insert {i}");
        }
        let (hits, misses) = cache.hit_stats();
        assert_eq!(hits, 49);
        assert_eq!(misses, 0);
    }

    #[test]
    fn remove_frees_budget_and_tolerates_stale_queue_hashes() {
        let mut cache = ChunkCache::new(1000);
        let (addr_a, a) = chunk(1, 67);
        let (addr_b, b) = chunk(2, 67);
        cache.insert(addr_a, a);
        cache.insert(addr_b, b);
        assert_eq!(cache.len(), 2);

        cache.remove(&addr_a);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.used_bytes(), 100);
        // Removing twice (or a hash never cached) is a no-op.
        cache.remove(&addr_a);
        assert_eq!(cache.used_bytes(), 100);

        // The queue still holds addr_a; eviction pressure must skip the
        // stale hash without panicking and still make room.
        for i in 3..30 {
            let (addr, c) = chunk(i, 67);
            cache.insert(addr, c);
        }
        assert!(cache.used_bytes() <= 1000);
        assert!(cache.get(&addr_a).is_none());
    }

    #[test]
    fn oversized_chunks_are_not_cached() {
        let mut cache = ChunkCache::new(100);
        let (addr, big) = chunk(1, 500);
        cache.insert(addr, big);
        assert!(cache.is_empty());
        let (small_addr, small) = chunk(2, 20);
        cache.insert(small_addr, small);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&small_addr).is_some());
    }
}
