//! Version management: Git-like, append-only lineage over immutable roots.
//!
//! ForkBase exposes a branchable version model. Spitz only needs the linear,
//! append-only part of it (snapshots of an ever-growing database), so the
//! [`VersionManager`] here records, per logical key, a chain of
//! [`Commit`] objects. Each commit points at a content-addressed root (for
//! example a [`crate::object::VBlob`] root or an index root), at its parent
//! commit, and at a monotonically increasing version number.
//!
//! Commits are themselves stored as chunks, so the entire version history is
//! tamper evident: changing any historical root changes the commit hash and
//! every descendant commit hash.

use std::collections::HashMap;

use parking_lot::RwLock;
use spitz_crypto::Hash;

use crate::chunk::{Chunk, ChunkKind};
use crate::error::StorageError;
use crate::store::ChunkStore;
use crate::Result;

/// A single immutable commit in a key's version chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Commit {
    /// The logical key this commit belongs to.
    pub key: String,
    /// Monotonically increasing version number, starting at 1.
    pub version: u64,
    /// Content address of the value/root captured by this commit.
    pub root: Hash,
    /// Address of the parent commit chunk (`Hash::ZERO` for the first
    /// version).
    pub parent: Hash,
    /// Free-form commit message (e.g. "ICD-10 recoding of patient profile").
    pub message: String,
}

impl Commit {
    /// Serialize the commit for storage as a chunk.
    fn encode(&self) -> Vec<u8> {
        let key_bytes = self.key.as_bytes();
        let msg_bytes = self.message.as_bytes();
        let mut out = Vec::with_capacity(8 + 64 + 8 + key_bytes.len() + msg_bytes.len());
        out.extend_from_slice(&self.version.to_be_bytes());
        out.extend_from_slice(self.root.as_bytes());
        out.extend_from_slice(self.parent.as_bytes());
        out.extend_from_slice(&(key_bytes.len() as u32).to_be_bytes());
        out.extend_from_slice(key_bytes);
        out.extend_from_slice(&(msg_bytes.len() as u32).to_be_bytes());
        out.extend_from_slice(msg_bytes);
        out
    }

    /// Decode a commit from its chunk payload.
    fn decode(data: &[u8], address: Hash) -> Result<Commit> {
        let corrupt = || StorageError::CorruptChunk(address);
        if data.len() < 8 + 64 + 4 {
            return Err(corrupt());
        }
        let version = u64::from_be_bytes(data[0..8].try_into().map_err(|_| corrupt())?);
        let mut root = [0u8; 32];
        root.copy_from_slice(&data[8..40]);
        let mut parent = [0u8; 32];
        parent.copy_from_slice(&data[40..72]);
        let key_len = u32::from_be_bytes(data[72..76].try_into().map_err(|_| corrupt())?) as usize;
        let key_end = 76 + key_len;
        if data.len() < key_end + 4 {
            return Err(corrupt());
        }
        let key = String::from_utf8(data[76..key_end].to_vec()).map_err(|_| corrupt())?;
        let msg_len = u32::from_be_bytes(
            data[key_end..key_end + 4]
                .try_into()
                .map_err(|_| corrupt())?,
        ) as usize;
        let msg_end = key_end + 4 + msg_len;
        if data.len() != msg_end {
            return Err(corrupt());
        }
        let message =
            String::from_utf8(data[key_end + 4..msg_end].to_vec()).map_err(|_| corrupt())?;
        Ok(Commit {
            key,
            version,
            root: Hash::from_bytes(root),
            parent: Hash::from_bytes(parent),
            message,
        })
    }
}

/// Append-only version manager over a chunk store.
pub struct VersionManager<S> {
    store: S,
    /// key → (latest version number, latest commit address).
    heads: RwLock<HashMap<String, (u64, Hash)>>,
}

impl<S: ChunkStore> VersionManager<S> {
    /// Create a version manager writing into `store`.
    pub fn new(store: S) -> Self {
        VersionManager {
            store,
            heads: RwLock::new(HashMap::new()),
        }
    }

    /// Access the underlying store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Record a new version of `key` whose content root is `root`.
    /// Returns the commit describing the new head.
    pub fn commit(&self, key: &str, root: Hash, message: &str) -> Commit {
        let mut heads = self.heads.write();
        let (prev_version, parent) = heads.get(key).copied().unwrap_or((0, Hash::ZERO));
        let commit = Commit {
            key: key.to_string(),
            version: prev_version + 1,
            root,
            parent,
            message: message.to_string(),
        };
        let address = self
            .store
            .put(Chunk::new(ChunkKind::Commit, commit.encode()));
        heads.insert(key.to_string(), (commit.version, address));
        commit
    }

    /// The latest version number of `key`, if it has ever been committed.
    pub fn latest_version(&self, key: &str) -> Option<u64> {
        self.heads.read().get(key).map(|(v, _)| *v)
    }

    /// The head commit of `key`.
    pub fn head(&self, key: &str) -> Result<Commit> {
        let address = {
            let heads = self.heads.read();
            heads
                .get(key)
                .map(|(_, addr)| *addr)
                .ok_or_else(|| StorageError::KeyNotFound(key.to_string()))?
        };
        self.load_commit(&address)
    }

    /// Fetch a specific version of `key` by walking the parent chain from the
    /// head. Version numbers start at 1.
    pub fn get_version(&self, key: &str, version: u64) -> Result<Commit> {
        let head = self.head(key)?;
        if version == 0 || version > head.version {
            return Err(StorageError::VersionNotFound {
                key: key.to_string(),
                version,
            });
        }
        let mut current = head;
        while current.version > version {
            current = self.load_commit(&current.parent)?;
        }
        Ok(current)
    }

    /// Full history of `key`, newest first.
    pub fn history(&self, key: &str) -> Result<Vec<Commit>> {
        let mut out = Vec::new();
        let mut current = self.head(key)?;
        loop {
            let parent = current.parent;
            let is_root = current.version == 1;
            out.push(current);
            if is_root {
                break;
            }
            current = self.load_commit(&parent)?;
        }
        Ok(out)
    }

    /// All keys that have at least one version.
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.heads.read().keys().cloned().collect();
        keys.sort();
        keys
    }

    fn load_commit(&self, address: &Hash) -> Result<Commit> {
        let chunk = self.store.get_kind(address, ChunkKind::Commit)?;
        Commit::decode(chunk.data(), *address)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::InMemoryChunkStore;
    use spitz_crypto::sha256;

    fn manager() -> VersionManager<InMemoryChunkStore> {
        VersionManager::new(InMemoryChunkStore::new())
    }

    #[test]
    fn commit_and_head() {
        let vm = manager();
        let c1 = vm.commit("patient-1", sha256(b"v1"), "initial record");
        assert_eq!(c1.version, 1);
        assert_eq!(c1.parent, Hash::ZERO);
        let head = vm.head("patient-1").unwrap();
        assert_eq!(head, c1);
    }

    #[test]
    fn versions_increment_and_link() {
        let vm = manager();
        vm.commit("k", sha256(b"v1"), "first");
        vm.commit("k", sha256(b"v2"), "second");
        let c3 = vm.commit("k", sha256(b"v3"), "third");
        assert_eq!(c3.version, 3);
        assert_eq!(vm.latest_version("k"), Some(3));

        let v2 = vm.get_version("k", 2).unwrap();
        assert_eq!(v2.root, sha256(b"v2"));
        let v1 = vm.get_version("k", 1).unwrap();
        assert_eq!(v1.root, sha256(b"v1"));
        assert_eq!(v1.parent, Hash::ZERO);
    }

    #[test]
    fn history_is_newest_first_and_complete() {
        let vm = manager();
        for i in 1..=5u64 {
            vm.commit("k", sha256(&i.to_be_bytes()), &format!("v{i}"));
        }
        let history = vm.history("k").unwrap();
        assert_eq!(history.len(), 5);
        assert_eq!(
            history.iter().map(|c| c.version).collect::<Vec<_>>(),
            vec![5, 4, 3, 2, 1]
        );
        assert_eq!(history[4].message, "v1");
    }

    #[test]
    fn missing_key_and_version_errors() {
        let vm = manager();
        assert!(matches!(vm.head("nope"), Err(StorageError::KeyNotFound(_))));
        vm.commit("k", sha256(b"v1"), "");
        assert!(matches!(
            vm.get_version("k", 0),
            Err(StorageError::VersionNotFound { .. })
        ));
        assert!(matches!(
            vm.get_version("k", 2),
            Err(StorageError::VersionNotFound { .. })
        ));
        assert_eq!(vm.latest_version("nope"), None);
    }

    #[test]
    fn keys_are_tracked_independently() {
        let vm = manager();
        vm.commit("a", sha256(b"1"), "");
        vm.commit("b", sha256(b"2"), "");
        vm.commit("a", sha256(b"3"), "");
        assert_eq!(vm.keys(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(vm.latest_version("a"), Some(2));
        assert_eq!(vm.latest_version("b"), Some(1));
    }

    #[test]
    fn commit_roundtrips_through_storage() {
        let vm = manager();
        let c = vm.commit("key-with-unicode-ключ", sha256(b"root"), "message ✓");
        let head = vm.head("key-with-unicode-ключ").unwrap();
        assert_eq!(head, c);
        assert_eq!(head.message, "message ✓");
    }

    #[test]
    fn identical_commits_for_different_keys_do_not_collide() {
        let vm = manager();
        vm.commit("a", sha256(b"same"), "same");
        vm.commit("b", sha256(b"same"), "same");
        assert_eq!(vm.head("a").unwrap().key, "a");
        assert_eq!(vm.head("b").unwrap().key, "b");
    }
}
