//! Merkle-DAG traversal utilities.
//!
//! Objects in the storage layer reference each other by content address:
//! meta nodes reference blob chunks, commits reference roots and parent
//! commits, ledger blocks reference index nodes. This module provides
//! generic reachability and size accounting over that DAG, used by the
//! Figure 1 storage experiment (how many bytes are reachable from the latest
//! N versions) and by audits.

use std::collections::{HashSet, VecDeque};

use spitz_crypto::Hash;

use crate::chunk::ChunkKind;
use crate::store::ChunkStore;
use crate::Result;

/// Outgoing references of a chunk, decoded per chunk kind.
///
/// Only the chunk kinds with a known reference layout are traversed; the
/// remaining kinds are treated as leaves.
pub fn references<S: ChunkStore + ?Sized>(store: &S, address: &Hash) -> Result<Vec<Hash>> {
    let chunk = store.get(address)?;
    let data = chunk.data();
    let refs = match chunk.kind() {
        // Meta node: u64 len, u32 count, then (hash, u32 size) entries.
        ChunkKind::Meta => {
            let mut refs = Vec::new();
            if data.len() >= 12 {
                let count = u32::from_be_bytes(data[8..12].try_into().unwrap_or_default()) as usize;
                let mut offset = 12;
                for _ in 0..count {
                    if offset + 32 > data.len() {
                        break;
                    }
                    let mut h = [0u8; 32];
                    h.copy_from_slice(&data[offset..offset + 32]);
                    refs.push(Hash::from_bytes(h));
                    offset += 36;
                }
            }
            refs
        }
        // Commit: u64 version, root hash, parent hash, ...
        ChunkKind::Commit => {
            let mut refs = Vec::new();
            if data.len() >= 72 {
                let mut root = [0u8; 32];
                root.copy_from_slice(&data[8..40]);
                refs.push(Hash::from_bytes(root));
                let mut parent = [0u8; 32];
                parent.copy_from_slice(&data[40..72]);
                let parent = Hash::from_bytes(parent);
                if !parent.is_zero() {
                    refs.push(parent);
                }
            }
            refs
        }
        // Blob / index-node / block / cell payloads are opaque here.
        _ => Vec::new(),
    };
    Ok(refs)
}

/// Statistics about the sub-DAG reachable from a set of roots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReachableStats {
    /// Number of distinct chunks reachable.
    pub chunk_count: u64,
    /// Total [`crate::chunk::Chunk::storage_size`] of reachable chunks.
    pub bytes: u64,
}

/// Breadth-first traversal of the DAG from `roots`, returning the reachable
/// set statistics. Unknown (missing) chunks abort with an error, because a
/// missing chunk in an immutable store indicates corruption.
pub fn reachable<S: ChunkStore + ?Sized>(store: &S, roots: &[Hash]) -> Result<ReachableStats> {
    let mut visited: HashSet<Hash> = HashSet::new();
    let mut queue: VecDeque<Hash> = roots.iter().copied().filter(|h| !h.is_zero()).collect();
    let mut stats = ReachableStats::default();

    while let Some(address) = queue.pop_front() {
        if !visited.insert(address) {
            continue;
        }
        let chunk = store.get(&address)?;
        stats.chunk_count += 1;
        stats.bytes += chunk.storage_size() as u64;
        for reference in references(store, &address)? {
            if !visited.contains(&reference) {
                queue.push_back(reference);
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunker::ChunkerConfig;
    use crate::object::VBlob;
    use crate::store::InMemoryChunkStore;
    use crate::version::VersionManager;

    #[test]
    fn blob_reachability_covers_all_chunks() {
        let store = InMemoryChunkStore::new();
        // Pseudo-random data so chunks are distinct and dedup does not merge
        // them; reachability must then see every chunk plus the meta node.
        let data: Vec<u8> = (0..50_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let blob = VBlob::write(&store, &data, &ChunkerConfig::default()).unwrap();
        let distinct: std::collections::HashSet<_> =
            blob.chunk_entries().iter().map(|(h, _)| *h).collect();
        let stats = reachable(&store, &[blob.root()]).unwrap();
        assert_eq!(stats.chunk_count as usize, distinct.len() + 1);
        assert!(stats.bytes >= data.len() as u64);
    }

    #[test]
    fn shared_chunks_are_counted_once() {
        let store = InMemoryChunkStore::new();
        let data = vec![7u8; 20_000];
        let b1 = VBlob::write(&store, &data, &ChunkerConfig::default()).unwrap();
        let b2 = VBlob::write(&store, &data, &ChunkerConfig::default()).unwrap();
        let single = reachable(&store, &[b1.root()]).unwrap();
        let both = reachable(&store, &[b1.root(), b2.root()]).unwrap();
        assert_eq!(single, both);
    }

    #[test]
    fn commit_chain_is_reachable() {
        let store = InMemoryChunkStore::new();
        let blob_roots: Vec<Hash> = (0..3u8)
            .map(|i| {
                VBlob::write(&store, &vec![i; 1000], &ChunkerConfig::default())
                    .unwrap()
                    .root()
            })
            .collect();
        let vm = VersionManager::new(&store);
        for root in &blob_roots {
            vm.commit("k", *root, "v");
        }
        let history = vm.history("k").unwrap();
        assert_eq!(history.len(), 3);
        // The commit chunks themselves are not exposed by address here, but
        // each historical root must be present in the store.
        for commit in &history {
            assert!(store.contains(&commit.root));
            let stats = reachable(&store, &[commit.root]).unwrap();
            assert!(stats.chunk_count >= 2);
        }
    }

    #[test]
    fn zero_roots_are_ignored() {
        let store = InMemoryChunkStore::new();
        let stats = reachable(&store, &[Hash::ZERO]).unwrap();
        assert_eq!(stats, ReachableStats::default());
    }

    #[test]
    fn missing_chunk_is_an_error() {
        let store = InMemoryChunkStore::new();
        let err = reachable(&store, &[spitz_crypto::sha256(b"missing")]);
        assert!(err.is_err());
    }
}
