//! ForkBase-like immutable storage substrate for the Spitz verifiable
//! database.
//!
//! The Spitz paper builds its storage layer on ForkBase: an immutable,
//! content-addressed, deduplicating, multi-version storage engine with a
//! Merkle-DAG data model. This crate reproduces the properties the paper
//! relies on:
//!
//! * **Content addressing** — every [`chunk::Chunk`] is identified by the
//!   SHA-256 hash of its payload, so identical data is physically stored once
//!   ([`store::ChunkStore`]).
//! * **Content-defined chunking** — large values are split by a rolling-hash
//!   [`chunker::Chunker`], so a small edit to a 16 KB page only produces a
//!   couple of new chunks and every untouched chunk is deduplicated. This is
//!   the mechanism behind Figure 1 of the paper.
//! * **Versioning** — the [`version::VersionManager`] records, per logical
//!   key, an append-only chain of [`version::Commit`]s, giving Git-like
//!   lineage over immutable snapshots.
//! * **Merkle DAG** — [`object::VBlob`] and [`object::VMap`] are built from
//!   chunks whose hashes chain up to a single root hash, so any node of the
//!   structure is tamper evident.
//! * **Durability** — [`durable::DurableChunkStore`] persists chunks in
//!   append-only segment files with per-record CRCs, crash recovery of a
//!   torn tail, and named root pointers, behind the same [`ChunkStore`]
//!   trait.
//!
//! # Example
//!
//! ```
//! use spitz_storage::{ChunkStore, InMemoryChunkStore, VBlob, ChunkerConfig};
//!
//! let store = InMemoryChunkStore::new();
//! let page = vec![7u8; 16 * 1024];
//! let blob = VBlob::write(&store, &page, &ChunkerConfig::default()).unwrap();
//! assert_eq!(VBlob::read(&store, &blob.root()).unwrap(), page);
//!
//! // Writing the same page again stores no new physical bytes.
//! let before = store.stats().physical_bytes;
//! VBlob::write(&store, &page, &ChunkerConfig::default()).unwrap();
//! assert_eq!(store.stats().physical_bytes, before);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunk;
pub mod chunker;
pub mod dag;
pub mod durable;
pub mod error;
pub mod mpt_commit;
pub mod object;
pub mod store;
pub mod version;

pub use chunk::{Chunk, ChunkKind};
pub use chunker::{Chunker, ChunkerConfig};
pub use durable::io::{real_io, FsyncOutcome, RealIo, SegmentIo, SegmentIoHandle, WriteOutcome};
pub use durable::{
    CompactionFault, CompactionReport, DurableChunkStore, DurableConfig, ScrubReport,
};
pub use error::{IoError, IoErrorKind, StorageError};
pub use mpt_commit::{
    mpt_branch_commitment, mpt_commitment, mpt_extension_commitment, mpt_leaf_commitment,
    mpt_value_hash,
};
pub use object::{VBlob, VMap};
pub use store::{ChunkStore, HealthState, InMemoryChunkStore, StoreStats};
pub use version::{Commit, VersionManager};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
