//! Content-addressed chunks — the unit of physical storage.
//!
//! Everything the storage layer persists is a [`Chunk`]: an immutable byte
//! payload tagged with a [`ChunkKind`]. A chunk's address is the SHA-256 hash
//! of its kind byte followed by its payload, so two chunks with identical
//! payloads but different kinds have different addresses, and identical
//! chunks are automatically deduplicated by the store.

use bytes::Bytes;
use spitz_crypto::{Hash, Sha256};

/// The role a chunk plays in the Merkle DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ChunkKind {
    /// Raw user data produced by the content-defined chunker.
    Blob,
    /// A meta node listing the chunk hashes (and sizes) that make up a larger
    /// blob object.
    Meta,
    /// A serialized index node (POS-Tree / MPT / MBT / B+-tree page).
    IndexNode,
    /// A commit object in the version manager: points at a root hash and at
    /// parent commits.
    Commit,
    /// A ledger block.
    Block,
    /// A serialized database cell.
    Cell,
    /// A Merkle-Patricia-Trie node addressed by its *sparse-branch
    /// commitment* rather than the plain payload hash: branch children are
    /// hashed as a 4-level sparse Merkle subtree (see
    /// [`crate::mpt_commit`]), so a proof step over a radix-16 branch
    /// reveals ~4 sibling hashes instead of 15.
    MptNode,
}

impl ChunkKind {
    /// Stable one-byte tag mixed into the content address.
    pub fn tag(self) -> u8 {
        match self {
            ChunkKind::Blob => 0,
            ChunkKind::Meta => 1,
            ChunkKind::IndexNode => 2,
            ChunkKind::Commit => 3,
            ChunkKind::Block => 4,
            ChunkKind::Cell => 5,
            ChunkKind::MptNode => 6,
        }
    }

    /// Parse a tag byte back into a kind.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(ChunkKind::Blob),
            1 => Some(ChunkKind::Meta),
            2 => Some(ChunkKind::IndexNode),
            3 => Some(ChunkKind::Commit),
            4 => Some(ChunkKind::Block),
            5 => Some(ChunkKind::Cell),
            6 => Some(ChunkKind::MptNode),
            _ => None,
        }
    }

    /// Human-readable name, used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            ChunkKind::Blob => "blob",
            ChunkKind::Meta => "meta",
            ChunkKind::IndexNode => "index-node",
            ChunkKind::Commit => "commit",
            ChunkKind::Block => "block",
            ChunkKind::Cell => "cell",
            ChunkKind::MptNode => "mpt-node",
        }
    }
}

/// An immutable, content-addressed unit of storage.
#[derive(Debug, Clone)]
pub struct Chunk {
    kind: ChunkKind,
    data: Bytes,
    /// Lazily computed (or caller-seeded) content address. MPT-node
    /// addresses fold a sparse-Merkle subtree per branch, so computing an
    /// address is not free; caching it makes repeated `address()` calls
    /// (put → dedup → stats) cost one computation, and lets write paths
    /// that already know the commitment skip it entirely.
    address: std::sync::OnceLock<Hash>,
}

impl PartialEq for Chunk {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind && self.data == other.data
    }
}

impl Eq for Chunk {}

impl Chunk {
    /// Create a chunk from a kind and payload bytes.
    pub fn new(kind: ChunkKind, data: impl Into<Bytes>) -> Self {
        Chunk {
            kind,
            data: data.into(),
            address: std::sync::OnceLock::new(),
        }
    }

    /// Create a chunk whose content address the caller has already
    /// computed (e.g. an MPT branch commitment maintained incrementally).
    /// The address MUST equal what [`Chunk::address`] would compute —
    /// debug builds assert it; a wrong address in release would break
    /// content addressing.
    pub fn with_address(kind: ChunkKind, data: impl Into<Bytes>, address: Hash) -> Self {
        let chunk = Chunk {
            kind,
            data: data.into(),
            address: std::sync::OnceLock::new(),
        };
        debug_assert_eq!(
            address,
            chunk.compute_address(),
            "Chunk::with_address seeded with a wrong address"
        );
        let _ = chunk.address.set(address);
        chunk
    }

    /// The chunk's role in the DAG.
    pub fn kind(&self) -> ChunkKind {
        self.kind
    }

    /// The chunk payload.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The content address: `SHA-256(kind_tag || payload)` — except for
    /// [`ChunkKind::MptNode`] chunks, whose address *is* the node's
    /// sparse-branch commitment (see [`crate::mpt_commit::mpt_commitment`]).
    /// Addressing MPT nodes by commitment is what lets proofs reveal ~4
    /// sibling hashes per branch step instead of all 15 children while the
    /// store stays purely content-addressed: the child pointers stored in a
    /// node payload are the children's chunk addresses, i.e. their
    /// commitments. A payload that does not decode as an MPT node falls
    /// back to the plain tagged hash.
    pub fn address(&self) -> Hash {
        *self.address.get_or_init(|| self.compute_address())
    }

    fn compute_address(&self) -> Hash {
        if self.kind == ChunkKind::MptNode {
            if let Some(commitment) = crate::mpt_commit::mpt_commitment(&self.data) {
                return commitment;
            }
        }
        let mut hasher = Sha256::new();
        hasher.update(&[self.kind.tag()]);
        hasher.update(&self.data);
        hasher.finalize()
    }

    /// Bytes occupied by this chunk when accounting for physical storage
    /// (payload plus the one-byte kind tag plus the 32-byte address entry).
    pub fn storage_size(&self) -> usize {
        self.data.len() + 1 + spitz_crypto::hash::HASH_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_depends_on_kind_and_data() {
        let a = Chunk::new(ChunkKind::Blob, &b"payload"[..]);
        let b = Chunk::new(ChunkKind::Meta, &b"payload"[..]);
        let c = Chunk::new(ChunkKind::Blob, &b"other"[..]);
        assert_ne!(a.address(), b.address());
        assert_ne!(a.address(), c.address());
        assert_eq!(
            a.address(),
            Chunk::new(ChunkKind::Blob, &b"payload"[..]).address()
        );
    }

    #[test]
    fn kind_tag_roundtrip() {
        for kind in [
            ChunkKind::Blob,
            ChunkKind::Meta,
            ChunkKind::IndexNode,
            ChunkKind::Commit,
            ChunkKind::Block,
            ChunkKind::Cell,
            ChunkKind::MptNode,
        ] {
            assert_eq!(ChunkKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(ChunkKind::from_tag(250), None);
    }

    #[test]
    fn storage_size_includes_overhead() {
        let c = Chunk::new(ChunkKind::Blob, vec![0u8; 100]);
        assert_eq!(c.storage_size(), 100 + 1 + 32);
        assert_eq!(c.len(), 100);
        assert!(!c.is_empty());
    }
}
