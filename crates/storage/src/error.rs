//! Error type for the storage substrate.

use std::fmt;

use spitz_crypto::Hash;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A chunk referenced by hash was not present in the store.
    ChunkNotFound(Hash),
    /// A chunk was found but had an unexpected kind (e.g. a blob chunk where
    /// a meta node was expected). Carries `(expected, found)` kind names.
    WrongChunkKind {
        /// The kind the caller expected.
        expected: &'static str,
        /// The kind actually stored under the hash.
        found: &'static str,
    },
    /// A chunk's payload failed to decode (corrupt or truncated encoding).
    CorruptChunk(Hash),
    /// The content hash of a chunk did not match the address it was fetched
    /// under — the store (or an attacker) tampered with the data.
    IntegrityViolation {
        /// The address the chunk was requested under.
        expected: Hash,
        /// The hash of the bytes actually returned.
        actual: Hash,
    },
    /// A named branch/key was not found in the version manager.
    KeyNotFound(String),
    /// A requested version number does not exist for the key.
    VersionNotFound {
        /// The logical key.
        key: String,
        /// The requested version number.
        version: u64,
    },
    /// Invalid configuration (e.g. chunker min size larger than max size).
    InvalidConfig(String),
    /// An operating-system I/O failure in a durable store (message includes
    /// the failing path and the OS error).
    Io(String),
    /// A durable segment file failed validation: a record in the *middle* of
    /// a segment has a bad CRC or an undecodable header. (A damaged record at
    /// the very tail of the last segment is treated as a torn write and
    /// dropped instead.)
    SegmentCorrupt {
        /// Segment id containing the bad record.
        segment: u64,
        /// Byte offset of the bad record within the segment file.
        offset: u64,
        /// What failed to validate.
        reason: String,
    },
    /// The manifest file of a durable store could not be parsed.
    ManifestCorrupt(String),
    /// The component (e.g. a commit pipeline) has shut down and accepts no
    /// further operations.
    Closed,
}

impl StorageError {
    /// Wrap an OS error together with the path it occurred on.
    pub fn io(path: &std::path::Path, err: std::io::Error) -> Self {
        StorageError::Io(format!("{}: {err}", path.display()))
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ChunkNotFound(h) => write!(f, "chunk {h} not found"),
            StorageError::WrongChunkKind { expected, found } => {
                write!(f, "expected {expected} chunk, found {found}")
            }
            StorageError::CorruptChunk(h) => write!(f, "chunk {h} is corrupt"),
            StorageError::IntegrityViolation { expected, actual } => write!(
                f,
                "integrity violation: requested {expected}, content hashes to {actual}"
            ),
            StorageError::KeyNotFound(k) => write!(f, "key {k:?} not found"),
            StorageError::VersionNotFound { key, version } => {
                write!(f, "version {version} of key {key:?} not found")
            }
            StorageError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            StorageError::Io(msg) => write!(f, "i/o error: {msg}"),
            StorageError::SegmentCorrupt {
                segment,
                offset,
                reason,
            } => write!(f, "segment {segment} corrupt at offset {offset}: {reason}"),
            StorageError::ManifestCorrupt(msg) => write!(f, "manifest corrupt: {msg}"),
            StorageError::Closed => write!(f, "component is closed"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;
    use spitz_crypto::sha256;

    #[test]
    fn display_messages_are_informative() {
        let h = sha256(b"x");
        assert!(StorageError::ChunkNotFound(h)
            .to_string()
            .contains("not found"));
        assert!(StorageError::CorruptChunk(h)
            .to_string()
            .contains("corrupt"));
        let e = StorageError::VersionNotFound {
            key: "acct".into(),
            version: 3,
        };
        assert!(e.to_string().contains("version 3"));
        assert!(e.to_string().contains("acct"));
    }
}
