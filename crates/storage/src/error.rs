//! Error type for the storage substrate.

use std::fmt;

use spitz_crypto::Hash;

/// Coarse classification of an OS-level I/O failure, so retry and
/// degraded-mode logic can match on the *kind* of failure instead of
/// substring-sniffing an error message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoErrorKind {
    /// The device (or quota) is out of space — `ENOSPC`/`EDQUOT`. Retrying
    /// cannot help; the correct response is to stop accepting writes.
    NoSpace,
    /// A transient condition (`EINTR`, timeouts, busy resources) that a
    /// bounded retry with backoff may clear.
    Transient,
    /// Any other failure: hard `EIO`, permissions, bad descriptors,
    /// injected faults. Treated as fail-stop for the affected operation.
    Other,
}

impl IoErrorKind {
    /// Classify a raw OS error.
    pub fn classify(err: &std::io::Error) -> IoErrorKind {
        use std::io::ErrorKind as K;
        match err.kind() {
            K::StorageFull | K::QuotaExceeded => IoErrorKind::NoSpace,
            K::Interrupted | K::TimedOut | K::WouldBlock | K::ResourceBusy => {
                IoErrorKind::Transient
            }
            _ => match err.raw_os_error() {
                // ENOSPC on platforms where the mapped kind is opaque.
                Some(28) => IoErrorKind::NoSpace,
                _ => IoErrorKind::Other,
            },
        }
    }
}

impl fmt::Display for IoErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoErrorKind::NoSpace => write!(f, "no-space"),
            IoErrorKind::Transient => write!(f, "transient"),
            IoErrorKind::Other => write!(f, "other"),
        }
    }
}

/// Structured payload of [`StorageError::Io`]: what failed, where, and
/// whether it is worth retrying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoError {
    /// Failure classification (drives retry / read-only decisions).
    pub kind: IoErrorKind,
    /// The storage operation that failed (`"append"`, `"fsync"`, ...).
    pub op: &'static str,
    /// The file or directory involved; empty for synthetic errors that are
    /// not tied to a path (aborted commits, injected faults).
    pub path: String,
    /// The underlying OS error message (or the injected fault description).
    pub message: String,
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "i/o error [{}] during {}: {}", self.kind, self.op, {
                &self.message
            })
        } else {
            write!(
                f,
                "i/o error [{}] during {} on {}: {}",
                self.kind, self.op, self.path, self.message
            )
        }
    }
}

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A chunk referenced by hash was not present in the store.
    ChunkNotFound(Hash),
    /// A chunk was found but had an unexpected kind (e.g. a blob chunk where
    /// a meta node was expected). Carries `(expected, found)` kind names.
    WrongChunkKind {
        /// The kind the caller expected.
        expected: &'static str,
        /// The kind actually stored under the hash.
        found: &'static str,
    },
    /// A chunk's payload failed to decode (corrupt or truncated encoding).
    CorruptChunk(Hash),
    /// The content hash of a chunk did not match the address it was fetched
    /// under — the store (or an attacker) tampered with the data.
    IntegrityViolation {
        /// The address the chunk was requested under.
        expected: Hash,
        /// The hash of the bytes actually returned.
        actual: Hash,
    },
    /// A named branch/key was not found in the version manager.
    KeyNotFound(String),
    /// A requested version number does not exist for the key.
    VersionNotFound {
        /// The logical key.
        key: String,
        /// The requested version number.
        version: u64,
    },
    /// Invalid configuration (e.g. chunker min size larger than max size).
    InvalidConfig(String),
    /// An operating-system I/O failure in a durable store, with the failing
    /// operation, path and a retryability classification.
    Io(IoError),
    /// The store has entered read-only degraded mode (out of space, or
    /// corruption that salvage could not fully repair): reads keep serving,
    /// writes fail fast with this error. Carries the reason the store
    /// degraded.
    ReadOnly(String),
    /// A durable segment file failed validation: a record in the *middle* of
    /// a segment has a bad CRC or an undecodable header. (A damaged record at
    /// the very tail of the last segment is treated as a torn write and
    /// dropped instead.)
    SegmentCorrupt {
        /// Segment id containing the bad record.
        segment: u64,
        /// Byte offset of the bad record within the segment file.
        offset: u64,
        /// What failed to validate.
        reason: String,
    },
    /// The manifest file of a durable store could not be parsed.
    ManifestCorrupt(String),
    /// The component (e.g. a commit pipeline) has shut down and accepts no
    /// further operations.
    Closed,
}

impl StorageError {
    /// Wrap an OS error together with the operation and path it occurred on.
    pub fn io(op: &'static str, path: &std::path::Path, err: std::io::Error) -> Self {
        StorageError::Io(IoError {
            kind: IoErrorKind::classify(&err),
            op,
            path: path.display().to_string(),
            message: err.to_string(),
        })
    }

    /// Construct a synthetic I/O error that is not backed by a real OS error
    /// (fault injection, aborted group commits).
    pub fn io_synthetic(kind: IoErrorKind, op: &'static str, message: impl Into<String>) -> Self {
        StorageError::Io(IoError {
            kind,
            op,
            path: String::new(),
            message: message.into(),
        })
    }

    /// The I/O failure classification, if this is an [`StorageError::Io`].
    pub fn io_kind(&self) -> Option<IoErrorKind> {
        match self {
            StorageError::Io(e) => Some(e.kind),
            _ => None,
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ChunkNotFound(h) => write!(f, "chunk {h} not found"),
            StorageError::WrongChunkKind { expected, found } => {
                write!(f, "expected {expected} chunk, found {found}")
            }
            StorageError::CorruptChunk(h) => write!(f, "chunk {h} is corrupt"),
            StorageError::IntegrityViolation { expected, actual } => write!(
                f,
                "integrity violation: requested {expected}, content hashes to {actual}"
            ),
            StorageError::KeyNotFound(k) => write!(f, "key {k:?} not found"),
            StorageError::VersionNotFound { key, version } => {
                write!(f, "version {version} of key {key:?} not found")
            }
            StorageError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            StorageError::Io(e) => write!(f, "{e}"),
            StorageError::ReadOnly(reason) => {
                write!(f, "store is read-only: {reason}")
            }
            StorageError::SegmentCorrupt {
                segment,
                offset,
                reason,
            } => write!(f, "segment {segment} corrupt at offset {offset}: {reason}"),
            StorageError::ManifestCorrupt(msg) => write!(f, "manifest corrupt: {msg}"),
            StorageError::Closed => write!(f, "component is closed"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;
    use spitz_crypto::sha256;

    #[test]
    fn display_messages_are_informative() {
        let h = sha256(b"x");
        assert!(StorageError::ChunkNotFound(h)
            .to_string()
            .contains("not found"));
        assert!(StorageError::CorruptChunk(h)
            .to_string()
            .contains("corrupt"));
        let e = StorageError::VersionNotFound {
            key: "acct".into(),
            version: 3,
        };
        assert!(e.to_string().contains("version 3"));
        assert!(e.to_string().contains("acct"));
    }

    #[test]
    fn io_errors_carry_op_path_and_kind() {
        let os = std::io::Error::from_raw_os_error(28); // ENOSPC
        let err = StorageError::io("append", std::path::Path::new("/tmp/seg"), os);
        assert_eq!(err.io_kind(), Some(IoErrorKind::NoSpace));
        let msg = err.to_string();
        assert!(msg.contains("append"), "{msg}");
        assert!(msg.contains("/tmp/seg"), "{msg}");
        assert!(msg.contains("no-space"), "{msg}");

        let synth = StorageError::io_synthetic(IoErrorKind::Transient, "fsync", "injected");
        assert_eq!(synth.io_kind(), Some(IoErrorKind::Transient));
        assert!(synth.to_string().contains("injected"));
        assert_eq!(StorageError::Closed.io_kind(), None);
    }

    #[test]
    fn classification_covers_the_retry_relevant_kinds() {
        use std::io::{Error, ErrorKind};
        assert_eq!(
            IoErrorKind::classify(&Error::new(ErrorKind::StorageFull, "full")),
            IoErrorKind::NoSpace
        );
        assert_eq!(
            IoErrorKind::classify(&Error::from_raw_os_error(28)),
            IoErrorKind::NoSpace
        );
        assert_eq!(
            IoErrorKind::classify(&Error::new(ErrorKind::Interrupted, "eintr")),
            IoErrorKind::Transient
        );
        assert_eq!(
            IoErrorKind::classify(&Error::new(ErrorKind::PermissionDenied, "no")),
            IoErrorKind::Other
        );
    }

    #[test]
    fn read_only_error_names_the_reason() {
        let err = StorageError::ReadOnly("device out of space".into());
        assert!(err.to_string().contains("read-only"));
        assert!(err.to_string().contains("out of space"));
    }
}
