//! Sparse-branch commitments for Merkle-Patricia-Trie nodes.
//!
//! [`ChunkKind::MptNode`](crate::ChunkKind::MptNode) chunks are addressed by
//! the commitment computed here instead of the plain `SHA-256(tag ‖ payload)`
//! hash. The change is invisible to the store — an address is an address —
//! but it rebuilds what a proof of one branch descent has to reveal:
//!
//! * Under payload hashing, verifying one step through a radix-16 branch
//!   requires the full node payload, i.e. all (up to 15) sibling child
//!   hashes.
//! * Under the sparse-branch commitment, the 16 child slots are hashed as a
//!   4-level sparse Merkle subtree ([`spitz_crypto::smt16_root`]), so a
//!   proof step carries only the ~4 subtree siblings along the descended
//!   slot's path — roughly a 4× reduction for full branches.
//!
//! Because the child pointers *stored in* a node payload are the children's
//! chunk addresses — which for MPT nodes are their commitments — the
//! commitment of a node is computable from its payload alone, and the whole
//! trie (traversal, checkout, GC reachability, deduplication) keeps working
//! unchanged on top of the content-addressed store.
//!
//! Every preimage is domain-separated with a distinct leading byte (`'L'`,
//! `'E'`, `'B'`, `'V'`, and `'N'` for subtree interiors) so leaf, extension,
//! branch, value and interior hashes can never be confused with one another
//! or with any tagged chunk address (chunk tags are small integers).

use spitz_crypto::{smt16_root, Hash, Sha256};

/// Domain prefix of a leaf commitment.
pub const MPT_LEAF_DOMAIN: u8 = b'L';
/// Domain prefix of an extension commitment.
pub const MPT_EXT_DOMAIN: u8 = b'E';
/// Domain prefix of a branch commitment.
pub const MPT_BRANCH_DOMAIN: u8 = b'B';
/// Domain prefix of a stored value's hash.
pub const MPT_VALUE_DOMAIN: u8 = b'V';

/// Hash of a stored value: `H('V' ‖ value)`.
pub fn mpt_value_hash(value: &[u8]) -> Hash {
    let mut hasher = Sha256::new();
    hasher.update(&[MPT_VALUE_DOMAIN]);
    hasher.update(value);
    hasher.finalize()
}

/// Commitment of a leaf node: `H('L' ‖ len(path) ‖ path ‖ value_hash)`.
/// The path is the leaf's remaining nibble run (one nibble per byte).
pub fn mpt_leaf_commitment(path: &[u8], value_hash: &Hash) -> Hash {
    let mut hasher = Sha256::new();
    hasher.update(&[MPT_LEAF_DOMAIN]);
    hasher.update(&(path.len() as u32).to_be_bytes());
    hasher.update(path);
    hasher.update(value_hash.as_bytes());
    hasher.finalize()
}

/// Commitment of an extension node:
/// `H('E' ‖ len(path) ‖ path ‖ child_commitment)`.
pub fn mpt_extension_commitment(path: &[u8], child: &Hash) -> Hash {
    let mut hasher = Sha256::new();
    hasher.update(&[MPT_EXT_DOMAIN]);
    hasher.update(&(path.len() as u32).to_be_bytes());
    hasher.update(path);
    hasher.update(child.as_bytes());
    hasher.finalize()
}

/// Commitment of a branch node:
/// `H('B' ‖ bitmap ‖ smt16_root ‖ value_part)`, where `bitmap` is the
/// big-endian child-occupancy bitmap, `smt16_root` is the sparse-subtree
/// root over the 16 child slots and `value_part` is [`mpt_value_hash`] of
/// the branch's own value, or [`Hash::ZERO`] when the branch stores none.
///
/// Binding the bitmap (not just the subtree root) makes compact proofs
/// non-malleable: a proof's bitmap bits for *pruned* regions would
/// otherwise be free bits, since a pruned region's subtree root is supplied
/// wholesale rather than recomputed.
pub fn mpt_branch_commitment(bitmap: u16, subtree_root: &Hash, value_part: &Hash) -> Hash {
    let mut hasher = Sha256::new();
    hasher.update(&[MPT_BRANCH_DOMAIN]);
    hasher.update(&bitmap.to_be_bytes());
    hasher.update(subtree_root.as_bytes());
    hasher.update(value_part.as_bytes());
    hasher.finalize()
}

/// Compute the sparse-branch commitment of an encoded MPT node payload.
///
/// Parses the index crate's node encoding — leaf
/// (`0 ‖ path ‖ value`), extension (`1 ‖ path ‖ child`), branch
/// (`2 ‖ bitmap ‖ children ‖ value?`), with length-prefixed byte strings —
/// and returns `None` when the payload is not a well-formed node, in which
/// case [`Chunk::address`](crate::Chunk::address) falls back to the plain
/// tagged hash.
pub fn mpt_commitment(payload: &[u8]) -> Option<Hash> {
    let (tag, mut rest) = payload.split_first()?;
    match tag {
        0 => {
            let path = read_bytes(&mut rest)?;
            let value = read_bytes(&mut rest)?;
            rest.is_empty()
                .then(|| mpt_leaf_commitment(path, &mpt_value_hash(value)))
        }
        1 => {
            let path = read_bytes(&mut rest)?;
            let child = read_hash(&mut rest)?;
            rest.is_empty()
                .then(|| mpt_extension_commitment(path, &child))
        }
        2 => {
            if rest.len() < 2 {
                return None;
            }
            let bitmap = u16::from_be_bytes([rest[0], rest[1]]);
            rest = &rest[2..];
            let mut slots = [Hash::ZERO; 16];
            for (i, slot) in slots.iter_mut().enumerate() {
                if bitmap & (1 << i) != 0 {
                    *slot = read_hash(&mut rest)?;
                }
            }
            let value_part = match rest.split_first()? {
                (0, tail) => tail.is_empty().then_some(Hash::ZERO)?,
                (1, mut tail) => {
                    let value = read_bytes(&mut tail)?;
                    if !tail.is_empty() {
                        return None;
                    }
                    mpt_value_hash(value)
                }
                _ => return None,
            };
            Some(mpt_branch_commitment(
                bitmap,
                &smt16_root(&slots),
                &value_part,
            ))
        }
        _ => None,
    }
}

/// Read a `u32`-length-prefixed byte string off the front of `rest`.
fn read_bytes<'a>(rest: &mut &'a [u8]) -> Option<&'a [u8]> {
    if rest.len() < 4 {
        return None;
    }
    let len = u32::from_be_bytes(rest[..4].try_into().ok()?) as usize;
    if rest.len() < 4 + len {
        return None;
    }
    let (bytes, tail) = rest[4..].split_at(len);
    *rest = tail;
    Some(bytes)
}

/// Read a 32-byte hash off the front of `rest`.
fn read_hash(rest: &mut &[u8]) -> Option<Hash> {
    if rest.len() < spitz_crypto::hash::HASH_LEN {
        return None;
    }
    let (raw, tail) = rest.split_at(spitz_crypto::hash::HASH_LEN);
    *rest = tail;
    let mut bytes = [0u8; spitz_crypto::hash::HASH_LEN];
    bytes.copy_from_slice(raw);
    Some(Hash::from_bytes(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spitz_crypto::{sha256, smt16_empty, SMT16_LEVELS};

    fn put_bytes(out: &mut Vec<u8>, data: &[u8]) {
        out.extend_from_slice(&(data.len() as u32).to_be_bytes());
        out.extend_from_slice(data);
    }

    #[test]
    fn leaf_commitment_binds_path_and_value() {
        let mut payload = vec![0u8];
        put_bytes(&mut payload, &[1, 2, 3]);
        put_bytes(&mut payload, b"value");
        let commitment = mpt_commitment(&payload).unwrap();
        assert_eq!(
            commitment,
            mpt_leaf_commitment(&[1, 2, 3], &mpt_value_hash(b"value"))
        );

        let mut other = vec![0u8];
        put_bytes(&mut other, &[1, 2, 3]);
        put_bytes(&mut other, b"other");
        assert_ne!(commitment, mpt_commitment(&other).unwrap());
    }

    #[test]
    fn extension_commitment_binds_child() {
        let child = sha256(b"child");
        let mut payload = vec![1u8];
        put_bytes(&mut payload, &[7]);
        payload.extend_from_slice(child.as_bytes());
        assert_eq!(
            mpt_commitment(&payload).unwrap(),
            mpt_extension_commitment(&[7], &child)
        );
    }

    #[test]
    fn branch_commitment_uses_sparse_subtree() {
        // Branch with children at nibbles 2 and 9 and no value.
        let c2 = sha256(b"c2");
        let c9 = sha256(b"c9");
        let bitmap: u16 = (1 << 2) | (1 << 9);
        let mut payload = vec![2u8];
        payload.extend_from_slice(&bitmap.to_be_bytes());
        payload.extend_from_slice(c2.as_bytes());
        payload.extend_from_slice(c9.as_bytes());
        payload.push(0);

        let mut slots = [Hash::ZERO; 16];
        slots[2] = c2;
        slots[9] = c9;
        assert_eq!(
            mpt_commitment(&payload).unwrap(),
            mpt_branch_commitment(bitmap, &spitz_crypto::smt16_root(&slots), &Hash::ZERO)
        );
        assert_ne!(smt16_empty(SMT16_LEVELS), spitz_crypto::smt16_root(&slots));
    }

    #[test]
    fn malformed_payloads_fall_back() {
        assert!(mpt_commitment(&[]).is_none());
        assert!(mpt_commitment(&[9, 1, 2]).is_none());
        assert!(mpt_commitment(&[0, 0, 0]).is_none()); // truncated length
        let mut trailing = vec![0u8];
        put_bytes(&mut trailing, b"p");
        put_bytes(&mut trailing, b"v");
        trailing.push(0xFF);
        assert!(mpt_commitment(&trailing).is_none());
    }
}
