//! Served front-end for the Spitz verifiable database.
//!
//! Everything the embedded engine proves, served over a socket without
//! weakening the trust story: the server ships the same proof bytes an
//! in-process caller gets, and the [`LightClient`] applies the same
//! acceptance rule as the in-process
//! [`Verifier`](spitz_core::proof::Verifier) — pin a cross-shard digest,
//! refuse any read that does not verify against it, refuse any digest
//! that rewinds it.
//!
//! * [`protocol`] — the versioned, length-prefixed binary frame layout,
//!   opcodes, and typed error codes. Decoding is allocation-capped and
//!   total: arbitrary bytes produce typed errors, never panics.
//! * [`server`] — the threaded TCP front-end over a
//!   [`ShardedDb`](spitz_core::sharded::ShardedDb): pipelined out-of-order
//!   execution, bounded queues with typed `Busy` backpressure, idle
//!   timeouts, digest long-polling, admin/telemetry endpoints, and
//!   graceful drain.
//! * [`client`] — the pipelining wire client and the proof-checking light
//!   client.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{ClientError, CompactTotals, HealthReport, LightClient, ScrubTotals, SpitzClient};
pub use protocol::{ErrorCode, ProtocolError, MAX_FRAME_LEN, PROTOCOL_VERSION};
pub use server::{ServerConfig, SpitzServer};
