//! The Spitz wire protocol: versioned, length-prefixed binary frames.
//!
//! Every message on the socket is one frame:
//!
//! ```text
//! u32 BE  body length (not counting these 4 bytes)
//! u8      protocol version (currently 1)
//! u8      opcode
//! u64 BE  request id (echoed verbatim in the response)
//! ...     opcode-specific payload
//! ```
//!
//! Requests and responses share the layout; a response's opcode is the
//! request's opcode with the high bit set ([`RESPONSE_BIT`]), and a typed
//! failure arrives as [`op::ERROR`] carrying an [`ErrorCode`] byte plus a
//! human-readable message. Request ids are chosen by the client and the
//! server may complete pipelined requests **out of order**, so clients
//! match responses by id, never by arrival order.
//!
//! Decoding never trusts a declared length further than the bytes actually
//! in hand: the frame header is capped at [`MAX_FRAME_LEN`] *before* the
//! body is allocated, and every count-prefixed vector inside a payload is
//! bounded by the remaining payload bytes before reservation. Malformed
//! input yields a typed [`ProtocolError`], never a panic and never an
//! attacker-sized allocation.

use spitz_index::codec::{self, Reader};

/// The one protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard cap on a frame body. Anything larger is rejected from the header
/// alone — the body is never read or allocated.
pub const MAX_FRAME_LEN: usize = 4 * 1024 * 1024;

/// Frame bodies carry at least a version, an opcode, and a request id.
pub const MIN_BODY_LEN: usize = 1 + 1 + 8;

/// A response's opcode is its request's opcode with this bit set.
pub const RESPONSE_BIT: u8 = 0x80;

/// Request opcodes (and [`op::ERROR`], the one response-only opcode).
pub mod op {
    /// Handshake: client sends an arbitrary name, server answers with its
    /// protocol version and shard count.
    pub const HELLO: u8 = 0x01;
    /// Liveness probe; the payload is echoed back.
    pub const PING: u8 = 0x02;
    /// Unverified point read.
    pub const GET: u8 = 0x10;
    /// Single-key write; responds with the shard's new [`Digest`](spitz_ledger::Digest).
    pub const PUT: u8 = 0x11;
    /// Atomic cross-shard batch write (2PC under the hood).
    pub const PUT_BATCH: u8 = 0x12;
    /// Proof-carrying point read.
    pub const GET_VERIFIED: u8 = 0x13;
    /// Proof-carrying range read.
    pub const RANGE_VERIFIED: u8 = 0x14;
    /// The current cross-shard digest (a consistent cut).
    pub const DIGEST: u8 = 0x15;
    /// Long-poll: respond with the first digest whose epoch reaches the
    /// requested minimum.
    pub const SUBSCRIBE_DIGEST: u8 = 0x16;
    /// Proof-carrying batched point read: many keys, one consistent cut,
    /// one [`ShardedMultiProof`](spitz_core::ShardedMultiProof).
    pub const BATCH_VERIFIED_GET: u8 = 0x17;
    /// Per-shard health states and reasons.
    pub const HEALTH: u8 = 0x20;
    /// Admin: run a scrub pass over every durable shard.
    pub const SCRUB: u8 = 0x21;
    /// Admin: run a compaction pass over every durable shard.
    pub const COMPACT: u8 = 0x22;
    /// The server's telemetry snapshot, rendered as JSON.
    pub const TELEMETRY: u8 = 0x23;
    /// Response-only: a typed failure ([`ErrorCode`](super::ErrorCode) +
    /// message).
    pub const ERROR: u8 = 0xFF;
}

/// Typed failure codes carried by [`op::ERROR`] responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame itself was malformed (bad length, short body). Fatal:
    /// the server closes the connection after sending this.
    BadFrame = 1,
    /// The version byte is not [`PROTOCOL_VERSION`]. Fatal.
    UnsupportedVersion = 2,
    /// The opcode is not one this server understands.
    UnknownOpcode = 3,
    /// The frame was well-formed but its payload was not.
    BadPayload = 4,
    /// The connection's request queue is full; retry after draining
    /// in-flight requests.
    Busy = 5,
    /// The store is read-only; writes fail fast, reads keep serving.
    ReadOnly = 6,
    /// A transaction conflict the client should retry.
    Conflict = 7,
    /// An internal server failure.
    Internal = 8,
    /// The declared frame length exceeds [`MAX_FRAME_LEN`]. Fatal.
    TooLarge = 9,
    /// The server is draining for shutdown.
    ShuttingDown = 10,
    /// Server-side verification failed — evidence of tampering.
    Verification = 11,
}

impl ErrorCode {
    /// Decode a wire byte.
    pub fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::UnsupportedVersion,
            3 => ErrorCode::UnknownOpcode,
            4 => ErrorCode::BadPayload,
            5 => ErrorCode::Busy,
            6 => ErrorCode::ReadOnly,
            7 => ErrorCode::Conflict,
            8 => ErrorCode::Internal,
            9 => ErrorCode::TooLarge,
            10 => ErrorCode::ShuttingDown,
            11 => ErrorCode::Verification,
            _ => return None,
        })
    }

    /// True when the server must close the connection after sending this
    /// error: the stream can no longer be framed reliably.
    pub fn is_fatal(self) -> bool {
        matches!(
            self,
            ErrorCode::BadFrame | ErrorCode::UnsupportedVersion | ErrorCode::TooLarge
        )
    }
}

/// A decoded frame header + payload, borrowed from the receive buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame<'a> {
    /// Protocol version byte (already validated to [`PROTOCOL_VERSION`]).
    pub version: u8,
    /// The opcode.
    pub opcode: u8,
    /// Client-chosen request id, echoed in the response.
    pub request_id: u64,
    /// Opcode-specific payload bytes.
    pub payload: &'a [u8],
}

/// Why a frame failed to parse. The variants map onto the wire
/// [`ErrorCode`]s a server sends back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Body shorter than [`MIN_BODY_LEN`].
    BadFrame,
    /// Declared body length past [`MAX_FRAME_LEN`].
    TooLarge(usize),
    /// Version byte mismatch.
    UnsupportedVersion(u8),
}

impl ProtocolError {
    /// The wire error code a server answers this parse failure with.
    pub fn code(&self) -> ErrorCode {
        match self {
            ProtocolError::BadFrame => ErrorCode::BadFrame,
            ProtocolError::TooLarge(_) => ErrorCode::TooLarge,
            ProtocolError::UnsupportedVersion(_) => ErrorCode::UnsupportedVersion,
        }
    }

    /// Human-readable message for the error frame.
    pub fn message(&self) -> String {
        match self {
            ProtocolError::BadFrame => "frame body shorter than header".to_string(),
            ProtocolError::TooLarge(n) => {
                format!("declared frame length {n} exceeds cap {MAX_FRAME_LEN}")
            }
            ProtocolError::UnsupportedVersion(v) => {
                format!("protocol version {v} unsupported (want {PROTOCOL_VERSION})")
            }
        }
    }
}

/// Validate a declared body length from a frame header **before** reading
/// or allocating the body.
pub fn check_body_len(len: usize) -> Result<(), ProtocolError> {
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::TooLarge(len));
    }
    if len < MIN_BODY_LEN {
        return Err(ProtocolError::BadFrame);
    }
    Ok(())
}

/// Parse a complete frame body (the bytes after the length prefix).
pub fn parse_body(body: &[u8]) -> Result<Frame<'_>, ProtocolError> {
    if body.len() < MIN_BODY_LEN {
        return Err(ProtocolError::BadFrame);
    }
    let version = body[0];
    if version != PROTOCOL_VERSION {
        return Err(ProtocolError::UnsupportedVersion(version));
    }
    let opcode = body[1];
    let request_id = u64::from_be_bytes(body[2..10].try_into().expect("8 bytes"));
    Ok(Frame {
        version,
        opcode,
        request_id,
        payload: &body[10..],
    })
}

/// Encode a complete frame (length prefix included) ready for the socket.
pub fn encode_frame(opcode: u8, request_id: u64, payload: &[u8]) -> Vec<u8> {
    let body_len = MIN_BODY_LEN + payload.len();
    let mut out = Vec::with_capacity(4 + body_len);
    codec::put_u32(&mut out, body_len as u32);
    out.push(PROTOCOL_VERSION);
    out.push(opcode);
    codec::put_u64(&mut out, request_id);
    out.extend_from_slice(payload);
    out
}

/// Encode an [`op::ERROR`] frame.
pub fn encode_error(request_id: u64, code: ErrorCode, message: &str) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 + message.len());
    payload.push(code as u8);
    payload.extend_from_slice(message.as_bytes());
    encode_frame(op::ERROR, request_id, &payload)
}

/// Decode an [`op::ERROR`] payload into `(code, message)`.
pub fn decode_error(payload: &[u8]) -> Option<(ErrorCode, String)> {
    let (&code, rest) = payload.split_first()?;
    Some((
        ErrorCode::from_u8(code)?,
        String::from_utf8_lossy(rest).into_owned(),
    ))
}

/// Encode a `(key, value)` list the way [`op::PUT_BATCH`] and the
/// [`op::RANGE_VERIFIED`] response carry entries: `u32` count, then
/// length-prefixed key and value per entry.
pub fn encode_entries(entries: &[(Vec<u8>, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::new();
    codec::put_u32(&mut out, entries.len() as u32);
    for (k, v) in entries {
        codec::put_bytes(&mut out, k);
        codec::put_bytes(&mut out, v);
    }
    out
}

/// Decode an entry list from `r`, bounding the up-front reservation by the
/// bytes actually present (each entry needs at least its two length
/// prefixes, 8 bytes).
pub fn decode_entries(r: &mut Reader<'_>) -> Option<Vec<(Vec<u8>, Vec<u8>)>> {
    let count = r.u32()? as usize;
    if count > r.remaining() / 8 {
        return None;
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let k = r.bytes()?.to_vec();
        let v = r.bytes()?.to_vec();
        entries.push((k, v));
    }
    Some(entries)
}

/// Encode a key list the way the [`op::BATCH_VERIFIED_GET`] request
/// carries its keys: `u32` count, then one length-prefixed key each.
pub fn encode_keys(keys: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    codec::put_u32(&mut out, keys.len() as u32);
    for key in keys {
        codec::put_bytes(&mut out, key);
    }
    out
}

/// Decode a key list from `r`, bounding the up-front reservation by the
/// bytes actually present (each key needs at least its length prefix).
pub fn decode_keys(r: &mut Reader<'_>) -> Option<Vec<Vec<u8>>> {
    let count = r.u32()? as usize;
    if count > r.remaining() / 4 {
        return None;
    }
    let mut keys = Vec::with_capacity(count);
    for _ in 0..count {
        keys.push(r.bytes()?.to_vec());
    }
    Some(keys)
}

/// Encode an optional-value list the way the [`op::BATCH_VERIFIED_GET`]
/// response carries its per-key results: `u32` count, then per key a
/// presence byte (0/1) followed by the length-prefixed value when present.
pub fn encode_optional_values(values: &[Option<Vec<u8>>]) -> Vec<u8> {
    let mut out = Vec::new();
    codec::put_u32(&mut out, values.len() as u32);
    for value in values {
        match value {
            Some(v) => {
                out.push(1);
                codec::put_bytes(&mut out, v);
            }
            None => out.push(0),
        }
    }
    out
}

/// Decode an optional-value list from `r`, bounding the up-front
/// reservation by the bytes actually present (each entry needs at least its
/// presence byte).
pub fn decode_optional_values(r: &mut Reader<'_>) -> Option<Vec<Option<Vec<u8>>>> {
    let count = r.u32()? as usize;
    if count > r.remaining() {
        return None;
    }
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(match r.u8()? {
            0 => None,
            1 => Some(r.bytes()?.to_vec()),
            _ => return None,
        });
    }
    Some(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let frame = encode_frame(op::GET, 7, b"some/key");
        let declared = u32::from_be_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(declared, frame.len() - 4);
        check_body_len(declared).unwrap();
        let parsed = parse_body(&frame[4..]).unwrap();
        assert_eq!(parsed.version, PROTOCOL_VERSION);
        assert_eq!(parsed.opcode, op::GET);
        assert_eq!(parsed.request_id, 7);
        assert_eq!(parsed.payload, b"some/key");
    }

    #[test]
    fn header_caps_reject_before_allocation() {
        assert_eq!(
            check_body_len(MAX_FRAME_LEN + 1),
            Err(ProtocolError::TooLarge(MAX_FRAME_LEN + 1))
        );
        assert_eq!(
            check_body_len(MIN_BODY_LEN - 1),
            Err(ProtocolError::BadFrame)
        );
        check_body_len(MIN_BODY_LEN).unwrap();
        check_body_len(MAX_FRAME_LEN).unwrap();
    }

    #[test]
    fn version_and_short_bodies_are_typed_errors() {
        assert_eq!(parse_body(&[]), Err(ProtocolError::BadFrame));
        assert_eq!(parse_body(&[1, 2, 3]), Err(ProtocolError::BadFrame));
        let mut body = encode_frame(op::PING, 1, b"")[4..].to_vec();
        body[0] = 9;
        assert_eq!(parse_body(&body), Err(ProtocolError::UnsupportedVersion(9)));
        assert!(ProtocolError::UnsupportedVersion(9).code().is_fatal());
        assert!(!ErrorCode::Busy.is_fatal());
    }

    #[test]
    fn error_frames_roundtrip() {
        let frame = encode_error(42, ErrorCode::ReadOnly, "store is read-only");
        let parsed = parse_body(&frame[4..]).unwrap();
        assert_eq!(parsed.opcode, op::ERROR);
        assert_eq!(parsed.request_id, 42);
        let (code, message) = decode_error(parsed.payload).unwrap();
        assert_eq!(code, ErrorCode::ReadOnly);
        assert_eq!(message, "store is read-only");
        assert_eq!(decode_error(&[]), None);
        assert_eq!(decode_error(&[200, b'x']), None);
    }

    #[test]
    fn key_and_optional_value_lists_roundtrip_and_bound_allocation() {
        let keys = vec![b"a".to_vec(), b"long-key".to_vec(), Vec::new()];
        let encoded = encode_keys(&keys);
        let mut r = Reader::new(&encoded);
        assert_eq!(decode_keys(&mut r).unwrap(), keys);
        assert!(r.is_exhausted());

        let values = vec![Some(b"v1".to_vec()), None, Some(Vec::new())];
        let encoded = encode_optional_values(&values);
        let mut r = Reader::new(&encoded);
        assert_eq!(decode_optional_values(&mut r).unwrap(), values);
        assert!(r.is_exhausted());

        // Hostile counts fail fast without reserving.
        let mut lie = Vec::new();
        codec::put_u32(&mut lie, u32::MAX);
        assert_eq!(decode_keys(&mut Reader::new(&lie)), None);
        assert_eq!(decode_optional_values(&mut Reader::new(&lie)), None);
        // A bad presence byte is rejected.
        let mut bad = Vec::new();
        codec::put_u32(&mut bad, 1);
        bad.push(7);
        assert_eq!(decode_optional_values(&mut Reader::new(&bad)), None);
    }

    #[test]
    fn entry_lists_bound_allocation_by_remaining_bytes() {
        let entries = vec![
            (b"a".to_vec(), b"1".to_vec()),
            (b"bb".to_vec(), b"22".to_vec()),
        ];
        let encoded = encode_entries(&entries);
        let mut r = Reader::new(&encoded);
        assert_eq!(decode_entries(&mut r).unwrap(), entries);
        assert!(r.is_exhausted());

        // A huge declared count with no bytes behind it must fail fast,
        // not reserve.
        let mut lie = Vec::new();
        codec::put_u32(&mut lie, u32::MAX);
        let mut r = Reader::new(&lie);
        assert_eq!(decode_entries(&mut r), None);
    }
}
