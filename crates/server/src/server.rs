//! The threaded TCP front-end over a [`ShardedDb`].
//!
//! One acceptor thread hands each connection to a dedicated reader thread;
//! every connection owns a bounded work queue drained by a small pool of
//! worker threads, so pipelined requests on one socket complete **out of
//! order** while responses are serialized through a shared writer lock.
//! A full queue answers immediately with a typed
//! [`ErrorCode::Busy`] frame — the
//! server never silently stalls a client to shed load.
//!
//! Degradation mirrors the embedded engine: when the backing store flips
//! read-only, reads (verified ones included) keep serving and writes fail
//! fast with [`ErrorCode::ReadOnly`].
//! Shutdown is a drain: the acceptor stops, readers stop pulling frames at
//! their next poll tick, queued requests finish, pending digest
//! subscriptions are failed with `ShuttingDown`, and every thread is
//! joined before [`SpitzServer::shutdown`] returns.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use spitz_core::db::SpitzDb;
use spitz_core::proof::{ShardMultiGroup, ShardedMultiProof, ShardedProof};
use spitz_core::sharded::ShardedDb;
use spitz_core::DbError;
use spitz_crypto::Hash;
use spitz_index::codec::{self, Reader};
use spitz_index::{
    node_chunk_kind, prove_from_nodes, prove_multi_from_nodes, BranchMemo, SiriKind,
};
use spitz_ledger::{JournalProof, LedgerMultiProof, LedgerProof};
use spitz_obs::{Counter, Gauge, Histogram, TelemetryHandle};
use spitz_storage::HealthState;

use crate::protocol::{
    self, encode_error, encode_frame, op, ErrorCode, MAX_FRAME_LEN, MIN_BODY_LEN, PROTOCOL_VERSION,
    RESPONSE_BIT,
};

/// Tuning for a [`SpitzServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Connections past this limit are answered with a `Busy` error frame
    /// and closed without being served.
    pub max_connections: usize,
    /// Per-connection bound on queued (accepted but not yet executing)
    /// requests; a full queue answers `Busy` per request.
    pub queue_depth: usize,
    /// Worker threads per connection. More than one is what makes
    /// pipelined completion genuinely out of order.
    pub workers_per_connection: usize,
    /// Socket read poll tick: how often a blocked reader re-checks the
    /// shutdown flag and the idle clock.
    pub read_timeout: Duration,
    /// A connection with no bytes received for this long is closed.
    pub idle_timeout: Duration,
    /// Per-server frame cap; clamped to the protocol-wide
    /// [`MAX_FRAME_LEN`].
    pub max_frame_len: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_connections: 64,
            queue_depth: 32,
            workers_per_connection: 2,
            read_timeout: Duration::from_millis(25),
            idle_timeout: Duration::from_secs(30),
            max_frame_len: MAX_FRAME_LEN,
        }
    }
}

impl ServerConfig {
    /// Cap concurrent connections.
    pub fn with_max_connections(mut self, n: usize) -> Self {
        self.max_connections = n;
        self
    }

    /// Cap the per-connection request queue.
    pub fn with_queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = n;
        self
    }

    /// Set the per-connection worker pool size.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers_per_connection = n;
        self
    }

    /// Set the idle-connection timeout.
    pub fn with_idle_timeout(mut self, d: Duration) -> Self {
        self.idle_timeout = d;
        self
    }

    /// Lower the frame cap below the protocol-wide maximum.
    pub fn with_max_frame_len(mut self, n: usize) -> Self {
        self.max_frame_len = n;
        self
    }

    fn effective_frame_cap(&self) -> usize {
        self.max_frame_len.min(MAX_FRAME_LEN)
    }
}

/// Server-side instruments, registered in the database's shared telemetry
/// registry so one snapshot covers storage, engine, and front-end.
struct ServerObs {
    connections: Arc<Gauge>,
    connections_total: Arc<Counter>,
    connections_rejected: Arc<Counter>,
    requests: Arc<Counter>,
    request_nanos: Arc<Histogram>,
    busy_rejections: Arc<Counter>,
    protocol_errors: Arc<Counter>,
    bytes_read: Arc<Counter>,
    bytes_written: Arc<Counter>,
    subscriptions_served: Arc<Counter>,
}

impl ServerObs {
    fn new(handle: &TelemetryHandle) -> ServerObs {
        ServerObs {
            connections: handle.gauge("server.connections"),
            connections_total: handle.counter("server.connections_total"),
            connections_rejected: handle.counter("server.connections_rejected"),
            requests: handle.counter("server.requests"),
            request_nanos: handle.histogram("server.request_nanos"),
            busy_rejections: handle.counter("server.busy_rejections"),
            protocol_errors: handle.counter("server.protocol_errors"),
            bytes_read: handle.counter("server.bytes_read"),
            bytes_written: handle.counter("server.bytes_written"),
            subscriptions_served: handle.counter("server.subscriptions_served"),
        }
    }
}

/// Bound on cached node payloads within one epoch; past it the cache
/// serves hits but stops admitting new nodes until the next invalidation.
const PROOF_CACHE_MAX_NODES: usize = 1 << 16;

/// Per-shard proof metadata learned from a full engine read at the cached
/// root. The journal proof is a pure function of the shard's digest, so
/// once harvested it can be spliced into every cache-served proof for that
/// (root, shard) pair without changing a byte of the output.
#[derive(Clone)]
struct ShardAux {
    journal_proof: Option<JournalProof>,
}

/// Root-scoped cache metadata: which cross-shard root the cache is valid
/// for, plus the per-shard [`ShardAux`] harvested at that root.
struct CacheMeta {
    root: Hash,
    aux: Vec<Option<ShardAux>>,
}

/// Server-side proof-node cache.
///
/// Verified reads rebuild their proofs from individual index-node payloads
/// (via [`prove_from_nodes`] — the same code path the engine itself uses,
/// so cache-served proofs are **byte-identical** to in-process proofs for
/// the same root). Node payloads are content-addressed — the map key *is*
/// the node's commitment — so a cached entry can never go stale in the
/// correctness sense; the cache is nonetheless invalidated wholesale
/// whenever the cross-shard root advances, which bounds memory and keeps
/// the working set aligned with the live epoch.
struct ProofCache {
    nodes: Mutex<HashMap<Hash, Arc<Vec<u8>>>>,
    meta: Mutex<CacheMeta>,
    /// Memoized MPT branch subtree folds (see [`spitz_index::BranchMemo`]):
    /// rebuilding a proof from cached node payloads still refolds every
    /// branch's sparse subtree without it. Content-addressed like `nodes`,
    /// and cleared together with them on epoch advance.
    branch_memo: BranchMemo,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    invalidations: Arc<Counter>,
}

impl ProofCache {
    fn new(handle: &TelemetryHandle, shard_count: usize) -> ProofCache {
        ProofCache {
            nodes: Mutex::new(HashMap::new()),
            meta: Mutex::new(CacheMeta {
                root: Hash::ZERO,
                aux: vec![None; shard_count],
            }),
            branch_memo: BranchMemo::new(),
            hits: handle.counter("server.proof_cache.hits"),
            misses: handle.counter("server.proof_cache.misses"),
            invalidations: handle.counter("server.proof_cache.invalidations"),
        }
    }

    /// Advance the cache to the consistent cut's root, clearing everything
    /// when the epoch moved since the last request.
    fn sync_root(&self, root: Hash, shard_count: usize) {
        let mut meta = lock(&self.meta);
        if meta.root != root {
            if meta.root != Hash::ZERO {
                self.invalidations.inc();
            }
            meta.root = root;
            meta.aux = vec![None; shard_count];
            lock(&self.nodes).clear();
            self.branch_memo.clear();
        }
    }

    /// The harvested aux for `shard`, provided the cache still sits at
    /// `root`. `None` sends the caller down the full engine read (which
    /// harvests).
    fn aux(&self, root: Hash, shard: usize) -> Option<ShardAux> {
        let meta = lock(&self.meta);
        if meta.root == root {
            meta.aux.get(shard).cloned().flatten()
        } else {
            None
        }
    }

    /// Record the journal proof a full engine read produced for `shard`,
    /// if the cache still sits at the root that read was served at.
    fn harvest(&self, root: Hash, shard: usize, journal_proof: &Option<JournalProof>) {
        let mut meta = lock(&self.meta);
        if meta.root == root {
            if let Some(slot @ None) = meta.aux.get_mut(shard) {
                *slot = Some(ShardAux {
                    journal_proof: journal_proof.clone(),
                });
            }
        }
    }
}

/// A read-through node fetcher over the cache for one shard: hits come
/// from the map, misses fall through to the shard's chunk store (checked
/// against the node kind the SIRI structure stores) and are admitted.
fn cache_fetch<'a>(
    cache: &'a ProofCache,
    shard_db: &'a Arc<SpitzDb>,
    kind: SiriKind,
) -> impl Fn(&Hash) -> Option<Vec<u8>> + 'a {
    let chunk_kind = node_chunk_kind(kind);
    move |hash: &Hash| {
        if let Some(payload) = lock(&cache.nodes).get(hash).cloned() {
            cache.hits.inc();
            return Some(payload.as_ref().clone());
        }
        let chunk = shard_db.store().get_kind(hash, chunk_kind).ok()?;
        cache.misses.inc();
        let payload = chunk.data().to_vec();
        let mut nodes = lock(&cache.nodes);
        if nodes.len() < PROOF_CACHE_MAX_NODES {
            nodes.insert(*hash, Arc::new(payload.clone()));
        }
        Some(payload)
    }
}

/// A digest subscription parked until the cross-shard epoch matures.
struct Subscription {
    writer: Arc<Mutex<TcpStream>>,
    request_id: u64,
    min_epoch: u64,
}

/// Parked [`op::SUBSCRIBE_DIGEST`] requests, swept by the watcher thread.
struct SubRegistry {
    inner: Mutex<Vec<Subscription>>,
    cond: Condvar,
}

impl SubRegistry {
    fn new() -> SubRegistry {
        SubRegistry {
            inner: Mutex::new(Vec::new()),
            cond: Condvar::new(),
        }
    }

    fn register(&self, sub: Subscription) {
        lock(&self.inner).push(sub);
        // Wake the watcher so it re-checks the epoch immediately: a write
        // may have landed between the worker's digest check and this
        // registration, and the sweep-under-lock closes that window.
        self.cond.notify_all();
    }

    fn notify(&self) {
        self.cond.notify_all();
    }
}

/// One accepted, parsed request waiting for a worker.
struct WorkItem {
    opcode: u8,
    request_id: u64,
    payload: Vec<u8>,
}

/// Bounded per-connection request queue. `push` never blocks — a full
/// queue is the caller's signal to answer `Busy`.
struct WorkQueue {
    inner: Mutex<(VecDeque<WorkItem>, bool)>,
    cond: Condvar,
    depth: usize,
}

impl WorkQueue {
    fn new(depth: usize) -> WorkQueue {
        WorkQueue {
            inner: Mutex::new((VecDeque::new(), false)),
            cond: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// False when the queue is at capacity (the item is dropped).
    fn push(&self, item: WorkItem) -> bool {
        let mut guard = lock(&self.inner);
        if guard.1 || guard.0.len() >= self.depth {
            return false;
        }
        guard.0.push_back(item);
        drop(guard);
        self.cond.notify_one();
        true
    }

    /// Close the queue: blocked `pop`s drain what is left, then see `None`.
    fn close(&self) {
        lock(&self.inner).1 = true;
        self.cond.notify_all();
    }

    /// Blocking pop; `None` once the queue is closed *and* empty.
    fn pop(&self) -> Option<WorkItem> {
        let mut guard = lock(&self.inner);
        loop {
            if let Some(item) = guard.0.pop_front() {
                return Some(item);
            }
            if guard.1 {
                return None;
            }
            guard = self
                .cond
                .wait(guard)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// State shared by the acceptor, every connection, and the watcher.
struct Shared {
    db: Arc<ShardedDb>,
    config: ServerConfig,
    shutdown: AtomicBool,
    active: AtomicUsize,
    obs: ServerObs,
    subs: SubRegistry,
    proof_cache: ProofCache,
}

/// Lock a std mutex, shrugging off poisoning: a panicking worker must not
/// take the whole connection (or the telemetry path) down with it.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Write one frame under the connection's writer lock. False when the
/// peer is gone; the reader will notice on its side and wind down.
fn send_frame(writer: &Arc<Mutex<TcpStream>>, shared: &Shared, frame: &[u8]) -> bool {
    let mut stream = lock(writer);
    match stream.write_all(frame) {
        Ok(()) => {
            shared.obs.bytes_written.add(frame.len() as u64);
            true
        }
        Err(_) => false,
    }
}

/// A served Spitz database: a listening socket plus the threads behind it.
/// Dropping the server shuts it down gracefully (see
/// [`SpitzServer::shutdown`]).
pub struct SpitzServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl SpitzServer {
    /// Serve `db` on an OS-assigned loopback port.
    pub fn start(db: Arc<ShardedDb>, config: ServerConfig) -> io::Result<SpitzServer> {
        SpitzServer::bind("127.0.0.1:0", db, config)
    }

    /// Serve `db` on `addr`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        db: Arc<ShardedDb>,
        config: ServerConfig,
    ) -> io::Result<SpitzServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let obs = ServerObs::new(db.telemetry_handle());
        let proof_cache = ProofCache::new(db.telemetry_handle(), db.shard_count());
        let shared = Arc::new(Shared {
            db,
            config,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            obs,
            subs: SubRegistry::new(),
            proof_cache,
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            thread::Builder::new()
                .name("spitz-accept".into())
                .spawn(move || accept_loop(listener, shared, conns))?
        };
        let watcher = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("spitz-sub-watcher".into())
                .spawn(move || watcher_loop(shared))?
        };
        Ok(SpitzServer {
            addr: local,
            shared,
            accept: Some(accept),
            watcher: Some(watcher),
            conns,
        })
    }

    /// The bound address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served database (for in-process inspection in tests).
    pub fn db(&self) -> &Arc<ShardedDb> {
        &self.shared.db
    }

    /// Graceful drain: stop accepting, let queued requests finish, fail
    /// parked subscriptions with `ShuttingDown`, join every thread.
    /// Idempotent; also run by `Drop`.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // The acceptor blocks in accept(); a throwaway connection wakes it
        // to observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        self.shared.subs.notify();
        if let Some(handle) = self.watcher.take() {
            let _ = handle.join();
        }
        let handles: Vec<JoinHandle<()>> = lock(&self.conns).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for SpitzServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, conns: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        if shared.active.load(Ordering::Acquire) >= shared.config.max_connections {
            shared.obs.connections_rejected.inc();
            let _ = stream.write_all(&encode_error(
                0,
                ErrorCode::Busy,
                "connection limit reached",
            ));
            continue;
        }
        shared.obs.connections_total.inc();
        let now_active = shared.active.fetch_add(1, Ordering::AcqRel) + 1;
        shared.obs.connections.set(now_active as i64);
        let conn_shared = Arc::clone(&shared);
        let spawned = thread::Builder::new()
            .name("spitz-conn".into())
            .spawn(move || serve_connection(stream, conn_shared));
        match spawned {
            Ok(handle) => lock(&conns).push(handle),
            Err(_) => {
                let left = shared.active.fetch_sub(1, Ordering::AcqRel) - 1;
                shared.obs.connections.set(left as i64);
            }
        }
    }
}

/// Outcome of trying to fill a buffer from the socket.
enum Fill {
    /// Buffer complete.
    Full,
    /// Peer closed (EOF, reset, or unrecoverable read error).
    Gone,
    /// The idle clock expired with the buffer incomplete.
    Idle,
    /// The server is draining; stop reading.
    Shutdown,
}

/// Read exactly `buf.len()` bytes, polling at the configured read tick so
/// shutdown and idleness are noticed while blocked.
fn fill(stream: &mut TcpStream, buf: &mut [u8], shared: &Shared, last: &mut Instant) -> Fill {
    let mut pos = 0;
    while pos < buf.len() {
        match stream.read(&mut buf[pos..]) {
            Ok(0) => return Fill::Gone,
            Ok(n) => {
                pos += n;
                *last = Instant::now();
                shared.obs.bytes_read.add(n as u64);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Ordering::Acquire) {
                    return Fill::Shutdown;
                }
                if last.elapsed() >= shared.config.idle_timeout {
                    return Fill::Idle;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Fill::Gone,
        }
    }
    Fill::Full
}

fn serve_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    if let Ok(write_half) = stream.try_clone() {
        let writer = Arc::new(Mutex::new(write_half));
        let queue = Arc::new(WorkQueue::new(shared.config.queue_depth));
        let workers: Vec<JoinHandle<()>> = (0..shared.config.workers_per_connection.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let writer = Arc::clone(&writer);
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name("spitz-worker".into())
                    .spawn(move || worker_loop(queue, shared, writer))
                    .expect("spawn connection worker")
            })
            .collect();
        reader_loop(stream, &shared, &writer, &queue);
        // Drain: close the queue, let the workers finish what was
        // accepted, then release the sockets.
        queue.close();
        for worker in workers {
            let _ = worker.join();
        }
    }
    let left = shared.active.fetch_sub(1, Ordering::AcqRel) - 1;
    shared.obs.connections.set(left as i64);
}

fn reader_loop(
    mut stream: TcpStream,
    shared: &Shared,
    writer: &Arc<Mutex<TcpStream>>,
    queue: &Arc<WorkQueue>,
) {
    let cap = shared.config.effective_frame_cap();
    let mut last = Instant::now();
    loop {
        let mut len_prefix = [0u8; 4];
        match fill(&mut stream, &mut len_prefix, shared, &mut last) {
            Fill::Full => {}
            Fill::Gone | Fill::Idle | Fill::Shutdown => return,
        }
        let len = u32::from_be_bytes(len_prefix) as usize;
        // Validate the declared length before allocating a single body
        // byte; an oversized or runt header is fatal to the connection
        // because the stream can no longer be framed.
        let header_error = if len > cap {
            Some(protocol::ProtocolError::TooLarge(len))
        } else if len < MIN_BODY_LEN {
            Some(protocol::ProtocolError::BadFrame)
        } else {
            None
        };
        if let Some(e) = header_error {
            shared.obs.protocol_errors.inc();
            send_frame(writer, shared, &encode_error(0, e.code(), &e.message()));
            return;
        }
        let mut body = vec![0u8; len];
        match fill(&mut stream, &mut body, shared, &mut last) {
            Fill::Full => {}
            Fill::Gone | Fill::Idle | Fill::Shutdown => return,
        }
        let frame = match protocol::parse_body(&body) {
            Ok(frame) => frame,
            Err(e) => {
                shared.obs.protocol_errors.inc();
                send_frame(writer, shared, &encode_error(0, e.code(), &e.message()));
                if e.code().is_fatal() {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) {
            send_frame(
                writer,
                shared,
                &encode_error(
                    frame.request_id,
                    ErrorCode::ShuttingDown,
                    "server is draining",
                ),
            );
            return;
        }
        let item = WorkItem {
            opcode: frame.opcode,
            request_id: frame.request_id,
            payload: frame.payload.to_vec(),
        };
        let request_id = item.request_id;
        if !queue.push(item) {
            shared.obs.busy_rejections.inc();
            send_frame(
                writer,
                shared,
                &encode_error(request_id, ErrorCode::Busy, "request queue full"),
            );
        }
    }
}

fn worker_loop(queue: Arc<WorkQueue>, shared: Arc<Shared>, writer: Arc<Mutex<TcpStream>>) {
    while let Some(item) = queue.pop() {
        shared.obs.requests.inc();
        let timer = shared.obs.request_nanos.start();
        if let Some(frame) = handle_request(&shared, &writer, &item) {
            send_frame(&writer, &shared, &frame);
        }
        shared.obs.request_nanos.finish(timer);
    }
}

fn health_byte(state: HealthState) -> u8 {
    match state {
        HealthState::Healthy => 0,
        HealthState::Degraded => 1,
        HealthState::ReadOnly => 2,
    }
}

/// Map an engine error onto a typed wire error.
fn db_error_frame(request_id: u64, e: &DbError) -> Vec<u8> {
    let (code, message) = match e {
        DbError::ReadOnly(m) => (ErrorCode::ReadOnly, m.clone()),
        DbError::TxnConflict(m) => (ErrorCode::Conflict, m.clone()),
        DbError::VerificationFailed(m) => (ErrorCode::Verification, m.clone()),
        DbError::BadRequest(m) => (ErrorCode::BadPayload, m.clone()),
        other => (ErrorCode::Internal, other.to_string()),
    };
    encode_error(request_id, code, &message)
}

/// Serve a verified point read through the proof-node cache.
///
/// Takes one consistent cut, then rebuilds the proof from cached node
/// payloads — byte-identical to what `ShardedDb::get_verified` would
/// return at the same cut, because [`prove_from_nodes`] *is* the engine's
/// proof builder. Falls back to the full engine read (harvesting the
/// shard's journal proof for subsequent hits) whenever the cache has no
/// aux for the shard yet or a node on the path cannot be resolved.
fn cached_get_verified(
    shared: &Shared,
    key: &[u8],
) -> Result<(Option<Vec<u8>>, ShardedProof), DbError> {
    let db = &shared.db;
    let cache = &shared.proof_cache;
    let cut = db.digest();
    cache.sync_root(cut.root, db.shard_count());
    let shard = db.route(key);
    let digest = cut.shards[shard];
    let Some(aux) = cache.aux(cut.root, shard) else {
        let (value, proof) = db.get_verified(key)?;
        if proof.root == cut.root {
            cache.harvest(cut.root, shard, &proof.ledger_proof.journal_proof);
        }
        return Ok((value, proof));
    };
    let fetch = cache_fetch(cache, db.shard(shard), digest.index_kind);
    let Some((value, index_proof)) = prove_from_nodes(
        digest.index_kind,
        digest.index_root,
        key,
        &fetch,
        Some(&cache.branch_memo),
    ) else {
        return db.get_verified(key);
    };
    let membership = cut
        .membership_proof(shard)
        .expect("shard index is in range");
    Ok((
        value,
        ShardedProof {
            shard,
            shard_count: db.shard_count(),
            ledger_proof: LedgerProof {
                index_proof,
                digest,
                journal_proof: aux.journal_proof,
            },
            membership,
            root: cut.root,
        },
    ))
}

/// Serve a batched verified read through the proof-node cache: one
/// consistent cut, one [`ShardedMultiProof`] whose per-shard groups are
/// rebuilt via [`prove_multi_from_nodes`] — byte-identical to
/// `ShardedDb::get_multi_verified` at the same cut. Any shard the cache
/// cannot serve sends the whole batch down the full engine read, which
/// harvests every involved shard's aux for next time.
#[allow(clippy::type_complexity)]
fn cached_get_multi_verified(
    shared: &Shared,
    keys: &[Vec<u8>],
) -> Result<(Vec<Option<Vec<u8>>>, ShardedMultiProof), DbError> {
    let db = &shared.db;
    let cache = &shared.proof_cache;
    let cut = db.digest();
    cache.sync_root(cut.root, db.shard_count());
    let shard_count = db.shard_count();
    let full_read = || -> Result<(Vec<Option<Vec<u8>>>, ShardedMultiProof), DbError> {
        let (values, proof) = db.get_multi_verified(keys)?;
        if proof.root == cut.root {
            for group in &proof.groups {
                cache.harvest(cut.root, group.shard, &group.ledger_proof.journal_proof);
            }
        }
        Ok((values, proof))
    };
    let mut parts: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
    for (i, key) in keys.iter().enumerate() {
        parts[db.route(key)].push(i);
    }
    let mut values: Vec<Option<Vec<u8>>> = vec![None; keys.len()];
    let mut groups = Vec::new();
    for (shard, positions) in parts.iter().enumerate() {
        if positions.is_empty() {
            continue;
        }
        let Some(aux) = cache.aux(cut.root, shard) else {
            return full_read();
        };
        let digest = cut.shards[shard];
        let shard_keys: Vec<Vec<u8>> = positions.iter().map(|&i| keys[i].clone()).collect();
        let fetch = cache_fetch(cache, db.shard(shard), digest.index_kind);
        let Some((shard_values, index_proof)) = prove_multi_from_nodes(
            digest.index_kind,
            digest.index_root,
            &shard_keys,
            &fetch,
            Some(&cache.branch_memo),
        ) else {
            return full_read();
        };
        for (&position, value) in positions.iter().zip(shard_values) {
            values[position] = value;
        }
        groups.push(ShardMultiGroup {
            shard,
            ledger_proof: LedgerMultiProof {
                index_proof,
                digest,
                journal_proof: aux.journal_proof,
            },
            membership: cut
                .membership_proof(shard)
                .expect("shard index is in range"),
        });
    }
    Ok((
        values,
        ShardedMultiProof {
            shard_count,
            root: cut.root,
            groups,
        },
    ))
}

/// Execute one request. `None` means the response is deferred (a parked
/// digest subscription); otherwise the returned frame is the response.
fn handle_request(
    shared: &Shared,
    writer: &Arc<Mutex<TcpStream>>,
    item: &WorkItem,
) -> Option<Vec<u8>> {
    let ok = |payload: Vec<u8>| {
        Some(encode_frame(
            item.opcode | RESPONSE_BIT,
            item.request_id,
            &payload,
        ))
    };
    let bad = |message: &str| {
        Some(encode_error(
            item.request_id,
            ErrorCode::BadPayload,
            message,
        ))
    };
    let db = &shared.db;
    match item.opcode {
        op::HELLO => {
            let mut payload = vec![PROTOCOL_VERSION];
            codec::put_u32(&mut payload, db.shard_count() as u32);
            ok(payload)
        }
        op::PING => ok(item.payload.clone()),
        op::GET => match db.get(&item.payload) {
            Ok(value) => {
                let mut payload = vec![u8::from(value.is_some())];
                payload.extend_from_slice(value.as_deref().unwrap_or_default());
                ok(payload)
            }
            Err(e) => Some(db_error_frame(item.request_id, &e)),
        },
        op::PUT => {
            let mut r = Reader::new(&item.payload);
            let Some(key) = r.bytes() else {
                return bad("put wants length-prefixed key then value");
            };
            let key = key.to_vec();
            let value = r.rest().to_vec();
            match db.put(&key, &value) {
                Ok(digest) => {
                    let reply = ok(digest.encode());
                    shared.subs.notify();
                    reply
                }
                Err(e) => Some(db_error_frame(item.request_id, &e)),
            }
        }
        op::PUT_BATCH => {
            let mut r = Reader::new(&item.payload);
            let Some(writes) = protocol::decode_entries(&mut r) else {
                return bad("put_batch wants a length-prefixed entry list");
            };
            if !r.is_exhausted() {
                return bad("trailing bytes after entry list");
            }
            if writes.is_empty() {
                return bad("empty batch");
            }
            match db.put_batch(writes) {
                Ok(digest) => {
                    let reply = ok(digest.encode());
                    shared.subs.notify();
                    reply
                }
                Err(e) => Some(db_error_frame(item.request_id, &e)),
            }
        }
        op::GET_VERIFIED => match cached_get_verified(shared, &item.payload) {
            Ok((value, proof)) => {
                let mut payload = vec![u8::from(value.is_some())];
                codec::put_bytes(&mut payload, value.as_deref().unwrap_or_default());
                payload.extend_from_slice(&proof.encode());
                ok(payload)
            }
            Err(e) => Some(db_error_frame(item.request_id, &e)),
        },
        op::BATCH_VERIFIED_GET => {
            let mut r = Reader::new(&item.payload);
            let Some(keys) = protocol::decode_keys(&mut r) else {
                return bad("batch get wants a length-prefixed key list");
            };
            if !r.is_exhausted() {
                return bad("trailing bytes after key list");
            }
            if keys.is_empty() {
                return bad("empty batch");
            }
            match cached_get_multi_verified(shared, &keys) {
                Ok((values, proof)) => {
                    let mut payload = protocol::encode_optional_values(&values);
                    payload.extend_from_slice(&proof.encode());
                    ok(payload)
                }
                Err(e) => Some(db_error_frame(item.request_id, &e)),
            }
        }
        op::RANGE_VERIFIED => {
            let mut r = Reader::new(&item.payload);
            let Some(start) = r.bytes() else {
                return bad("range wants length-prefixed start then end");
            };
            let start = start.to_vec();
            let end = r.rest().to_vec();
            match db.range_verified(&start, &end) {
                Ok((entries, proof)) => {
                    let mut payload = protocol::encode_entries(&entries);
                    payload.extend_from_slice(&proof.encode());
                    ok(payload)
                }
                Err(e) => Some(db_error_frame(item.request_id, &e)),
            }
        }
        op::DIGEST => ok(db.digest().encode()),
        op::SUBSCRIBE_DIGEST => {
            let mut r = Reader::new(&item.payload);
            let Some(min_epoch) = r.u64() else {
                return bad("subscribe wants a u64 minimum epoch");
            };
            if !r.is_exhausted() {
                return bad("trailing bytes after minimum epoch");
            }
            let digest = db.digest();
            if digest.epoch >= min_epoch {
                shared.obs.subscriptions_served.inc();
                return ok(digest.encode());
            }
            shared.subs.register(Subscription {
                writer: Arc::clone(writer),
                request_id: item.request_id,
                min_epoch,
            });
            None
        }
        op::HEALTH => {
            let mut payload = vec![health_byte(db.health())];
            codec::put_u32(&mut payload, db.shard_count() as u32);
            for shard in 0..db.shard_count() {
                payload.push(health_byte(db.shard_health(shard)));
                let reason = db.shard_health_reason(shard).unwrap_or_default();
                codec::put_bytes(&mut payload, reason.as_bytes());
            }
            ok(payload)
        }
        op::SCRUB => {
            let mut scanned = 0u64;
            let mut quarantined = 0u64;
            let mut salvaged = 0u64;
            let mut lost = 0u64;
            for shard in 0..db.shard_count() {
                match db.shard(shard).scrub() {
                    Ok(Some(report)) => {
                        scanned += report.segments_scanned;
                        quarantined += report.quarantined_segments.len() as u64;
                        salvaged += report.chunks_salvaged;
                        lost += report.chunks_lost;
                    }
                    Ok(None) => {}
                    Err(e) => return Some(db_error_frame(item.request_id, &e)),
                }
            }
            let mut payload = Vec::with_capacity(32);
            codec::put_u64(&mut payload, scanned);
            codec::put_u64(&mut payload, quarantined);
            codec::put_u64(&mut payload, salvaged);
            codec::put_u64(&mut payload, lost);
            ok(payload)
        }
        op::COMPACT => match db.compact() {
            Ok(reports) => {
                let mut victims = 0u64;
                let mut rewritten = 0u64;
                let mut dropped = 0u64;
                let mut reclaimed = 0u64;
                for report in reports.into_iter().flatten() {
                    victims += report.victim_segments.len() as u64;
                    rewritten += report.live_chunks_rewritten;
                    dropped += report.chunks_dropped;
                    reclaimed += report.bytes_reclaimed;
                }
                let mut payload = Vec::with_capacity(32);
                codec::put_u64(&mut payload, victims);
                codec::put_u64(&mut payload, rewritten);
                codec::put_u64(&mut payload, dropped);
                codec::put_u64(&mut payload, reclaimed);
                ok(payload)
            }
            Err(e) => Some(db_error_frame(item.request_id, &e)),
        },
        op::TELEMETRY => ok(db.telemetry().render_json().into_bytes()),
        unknown => Some(encode_error(
            item.request_id,
            ErrorCode::UnknownOpcode,
            &format!("opcode {unknown:#04x}"),
        )),
    }
}

/// Sweep parked subscriptions whenever a write lands (workers notify) or
/// on a slow poll tick, answering every subscription whose minimum epoch
/// the current consistent cut has reached. On shutdown, parked
/// subscriptions fail with `ShuttingDown` so no client hangs.
fn watcher_loop(shared: Arc<Shared>) {
    let registry = &shared.subs;
    let mut guard = lock(&registry.inner);
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        if guard.is_empty() {
            guard = registry
                .cond
                .wait_timeout(guard, Duration::from_millis(50))
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .0;
            continue;
        }
        // The digest takes the epoch fence; compute it without holding the
        // registry lock so workers can keep parking subscriptions.
        drop(guard);
        let digest = shared.db.digest();
        let encoded = digest.encode();
        guard = lock(&registry.inner);
        let mut i = 0;
        while i < guard.len() {
            if digest.epoch >= guard[i].min_epoch {
                let sub = guard.swap_remove(i);
                send_frame(
                    &sub.writer,
                    &shared,
                    &encode_frame(
                        op::SUBSCRIBE_DIGEST | RESPONSE_BIT,
                        sub.request_id,
                        &encoded,
                    ),
                );
                shared.obs.subscriptions_served.inc();
            } else {
                i += 1;
            }
        }
        if guard.is_empty() {
            continue;
        }
        guard = registry
            .cond
            .wait_timeout(guard, Duration::from_millis(50))
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .0;
    }
    for sub in guard.drain(..) {
        send_frame(
            &sub.writer,
            &shared,
            &encode_error(
                sub.request_id,
                ErrorCode::ShuttingDown,
                "server is draining",
            ),
        );
    }
}
