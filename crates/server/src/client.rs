//! The client side: a pipelining wire client and a proof-checking light
//! client.
//!
//! [`SpitzClient`] is the transport: it frames requests, matches responses
//! by request id (the server completes pipelined requests out of order),
//! and surfaces typed server errors. It trusts nothing it decodes beyond
//! being well-formed.
//!
//! [`LightClient`] adds the trust layer: it wraps a [`Verifier`] pinned to
//! the served database's cross-shard digest, and refuses any read whose
//! proof does not check out against that pin — byte-for-byte the same
//! acceptance rule an in-process verifier applies, just across a socket.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use spitz_core::proof::{ShardedMultiProof, ShardedProof, ShardedRangeProof, Verifier};
use spitz_core::sharded::ShardedDigest;
use spitz_index::codec::{self, Reader};
use spitz_ledger::Digest;
use spitz_storage::HealthState;

use crate::protocol::{
    self, decode_error, encode_frame, op, ErrorCode, MIN_BODY_LEN, PROTOCOL_VERSION, RESPONSE_BIT,
};

/// Responses (range proofs especially) may legitimately exceed the
/// request-side frame cap; the client still bounds what a malicious or
/// broken server can make it allocate.
const MAX_RESPONSE_LEN: usize = 64 * 1024 * 1024;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server's bytes could not be framed or decoded.
    Protocol(String),
    /// The server answered with a typed error frame.
    Server {
        /// The wire error code.
        code: ErrorCode,
        /// The server's human-readable message.
        message: String,
    },
    /// A proof failed light-client verification — evidence of tampering.
    Verification(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code:?}: {message}")
            }
            ClientError::Verification(m) => write!(f, "verification failed: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Client-side result alias.
pub type Result<T> = std::result::Result<T, ClientError>;

/// Aggregated totals from a served scrub pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubTotals {
    /// Sealed segments CRC-verified across all shards.
    pub segments_scanned: u64,
    /// Segments quarantined across all shards.
    pub quarantined_segments: u64,
    /// Chunks salvaged out of corrupt segments.
    pub chunks_salvaged: u64,
    /// Chunks lost beyond salvage.
    pub chunks_lost: u64,
}

/// Aggregated totals from a served compaction pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactTotals {
    /// Victim segments rewritten and deleted.
    pub victim_segments: u64,
    /// Live chunks copied out of victims.
    pub live_chunks_rewritten: u64,
    /// Dead chunks dropped.
    pub chunks_dropped: u64,
    /// Net bytes returned to the filesystem.
    pub bytes_reclaimed: u64,
}

/// Per-deployment health as served over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Worst state across the shards.
    pub overall: HealthState,
    /// Per-shard `(state, reason)`; the reason is empty for healthy
    /// shards.
    pub shards: Vec<(HealthState, String)>,
}

fn health_from_byte(b: u8) -> Option<HealthState> {
    Some(match b {
        0 => HealthState::Healthy,
        1 => HealthState::Degraded,
        2 => HealthState::ReadOnly,
        _ => return None,
    })
}

fn bad(reason: &str) -> ClientError {
    ClientError::Protocol(reason.to_string())
}

/// A pipelining wire client for one connection to a [`SpitzServer`](crate::SpitzServer).
///
/// Requests may be issued ahead with [`SpitzClient::send_request`] and
/// collected in any order with [`SpitzClient::wait_response`]; responses
/// for other outstanding ids are parked internally, never dropped.
pub struct SpitzClient {
    stream: TcpStream,
    next_id: u64,
    pending: HashMap<u64, (u8, Vec<u8>)>,
    shard_count: usize,
    bytes_received: u64,
}

impl SpitzClient {
    /// Connect and run the `Hello` handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<SpitzClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = SpitzClient {
            stream,
            next_id: 0,
            pending: HashMap::new(),
            shard_count: 0,
            bytes_received: 0,
        };
        let hello = client.call(op::HELLO, b"spitz-client")?;
        let mut r = Reader::new(&hello);
        let version = r.u8().ok_or_else(|| bad("hello: missing version"))?;
        if version != PROTOCOL_VERSION {
            return Err(bad(&format!("hello: server speaks version {version}")));
        }
        client.shard_count = r.u32().ok_or_else(|| bad("hello: missing shard count"))? as usize;
        Ok(client)
    }

    /// Shard count reported by the server's handshake.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Total response bytes read off the wire since connect, including
    /// frame length prefixes and headers. Lets benchmarks report true
    /// response-size-on-the-wire per operation.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Issue a request without waiting; returns the id to wait on. This is
    /// the pipelining primitive — any number of requests may be in flight.
    pub fn send_request(&mut self, opcode: u8, payload: &[u8]) -> Result<u64> {
        self.next_id += 1;
        let id = self.next_id;
        let frame = encode_frame(opcode, id, payload);
        self.stream.write_all(&frame)?;
        Ok(id)
    }

    /// Block until the response for `id` arrives (responses for other ids
    /// are parked). Returns `(response opcode, payload)`; error frames are
    /// surfaced as [`ClientError::Server`].
    pub fn wait_response(&mut self, id: u64) -> Result<(u8, Vec<u8>)> {
        loop {
            if let Some((opcode, payload)) = self.pending.remove(&id) {
                if opcode == op::ERROR {
                    let (code, message) =
                        decode_error(&payload).ok_or_else(|| bad("undecodable error frame"))?;
                    return Err(ClientError::Server { code, message });
                }
                return Ok((opcode, payload));
            }
            let (opcode, got_id, payload) = self.read_frame()?;
            self.pending.insert(got_id, (opcode, payload));
        }
    }

    /// One synchronous round trip; checks the response opcode matches.
    pub fn call(&mut self, opcode: u8, payload: &[u8]) -> Result<Vec<u8>> {
        let id = self.send_request(opcode, payload)?;
        let (resp_opcode, payload) = self.wait_response(id)?;
        if resp_opcode != opcode | RESPONSE_BIT {
            return Err(bad(&format!(
                "response opcode {resp_opcode:#04x} for request {opcode:#04x}"
            )));
        }
        Ok(payload)
    }

    fn read_frame(&mut self) -> Result<(u8, u64, Vec<u8>)> {
        let mut len_prefix = [0u8; 4];
        self.stream.read_exact(&mut len_prefix)?;
        let len = u32::from_be_bytes(len_prefix) as usize;
        if len > MAX_RESPONSE_LEN {
            return Err(bad(&format!("response frame of {len} bytes")));
        }
        if len < MIN_BODY_LEN {
            return Err(bad("runt response frame"));
        }
        let mut body = vec![0u8; len];
        self.stream.read_exact(&mut body)?;
        self.bytes_received += (4 + len) as u64;
        let frame = protocol::parse_body(&body).map_err(|e| bad(&e.message()))?;
        Ok((frame.opcode, frame.request_id, frame.payload.to_vec()))
    }

    /// Liveness probe; the server echoes the payload.
    pub fn ping(&mut self, data: &[u8]) -> Result<Vec<u8>> {
        self.call(op::PING, data)
    }

    /// Unverified point read.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let payload = self.call(op::GET, key)?;
        let (&present, value) = payload
            .split_first()
            .ok_or_else(|| bad("empty get reply"))?;
        match present {
            0 => Ok(None),
            1 => Ok(Some(value.to_vec())),
            _ => Err(bad("bad presence byte")),
        }
    }

    /// Single-key write; returns the owning shard's new digest.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<Digest> {
        let mut payload = Vec::with_capacity(4 + key.len() + value.len());
        codec::put_bytes(&mut payload, key);
        payload.extend_from_slice(value);
        let reply = self.call(op::PUT, &payload)?;
        Digest::decode(&reply).ok_or_else(|| bad("undecodable digest"))
    }

    /// Atomic cross-shard batch write; returns the new cross-shard digest.
    pub fn put_batch(&mut self, writes: &[(Vec<u8>, Vec<u8>)]) -> Result<ShardedDigest> {
        let reply = self.call(op::PUT_BATCH, &protocol::encode_entries(writes))?;
        ShardedDigest::decode(&reply).ok_or_else(|| bad("undecodable sharded digest"))
    }

    /// Proof-carrying point read. The proof is returned **unchecked** —
    /// use a [`LightClient`] to actually verify.
    pub fn get_verified(&mut self, key: &[u8]) -> Result<(Option<Vec<u8>>, ShardedProof)> {
        let payload = self.call(op::GET_VERIFIED, key)?;
        let mut r = Reader::new(&payload);
        let present = r.u8().ok_or_else(|| bad("empty verified-get reply"))?;
        let value = r.bytes().ok_or_else(|| bad("missing value"))?.to_vec();
        let proof = ShardedProof::decode(r.rest()).ok_or_else(|| bad("undecodable point proof"))?;
        let value = match present {
            0 => None,
            1 => Some(value),
            _ => return Err(bad("bad presence byte")),
        };
        Ok((value, proof))
    }

    /// Proof-carrying batched point read: one round trip, one
    /// [`ShardedMultiProof`] covering every key (keys sharing a shard
    /// share one proof group). The proof is returned **unchecked** — use
    /// [`LightClient::get_batch`] to actually verify. The `i`-th returned
    /// value answers `keys[i]`.
    #[allow(clippy::type_complexity)]
    pub fn get_verified_batch(
        &mut self,
        keys: &[Vec<u8>],
    ) -> Result<(Vec<Option<Vec<u8>>>, ShardedMultiProof)> {
        let reply = self.call(op::BATCH_VERIFIED_GET, &protocol::encode_keys(keys))?;
        let mut r = Reader::new(&reply);
        let values =
            protocol::decode_optional_values(&mut r).ok_or_else(|| bad("bad value list"))?;
        if values.len() != keys.len() {
            return Err(bad("value count does not match key count"));
        }
        let proof =
            ShardedMultiProof::decode(r.rest()).ok_or_else(|| bad("undecodable multi proof"))?;
        Ok((values, proof))
    }

    /// Proof-carrying range read, unchecked (see [`LightClient::range`]).
    #[allow(clippy::type_complexity)]
    pub fn range_verified(
        &mut self,
        start: &[u8],
        end: &[u8],
    ) -> Result<(Vec<(Vec<u8>, Vec<u8>)>, ShardedRangeProof)> {
        let mut payload = Vec::with_capacity(4 + start.len() + end.len());
        codec::put_bytes(&mut payload, start);
        payload.extend_from_slice(end);
        let reply = self.call(op::RANGE_VERIFIED, &payload)?;
        let mut r = Reader::new(&reply);
        let entries = protocol::decode_entries(&mut r).ok_or_else(|| bad("bad entry list"))?;
        let proof =
            ShardedRangeProof::decode(r.rest()).ok_or_else(|| bad("undecodable range proof"))?;
        Ok((entries, proof))
    }

    /// The server's current cross-shard digest (a consistent cut).
    pub fn digest(&mut self) -> Result<ShardedDigest> {
        let reply = self.call(op::DIGEST, b"")?;
        ShardedDigest::decode(&reply).ok_or_else(|| bad("undecodable sharded digest"))
    }

    /// Long-poll: block until the cross-shard epoch reaches `min_epoch`
    /// and return that digest. Fails with
    /// [`ErrorCode::ShuttingDown`] if the server drains first.
    pub fn subscribe_digest(&mut self, min_epoch: u64) -> Result<ShardedDigest> {
        let mut payload = Vec::with_capacity(8);
        codec::put_u64(&mut payload, min_epoch);
        let reply = self.call(op::SUBSCRIBE_DIGEST, &payload)?;
        ShardedDigest::decode(&reply).ok_or_else(|| bad("undecodable sharded digest"))
    }

    /// Per-shard health states and reasons.
    pub fn health(&mut self) -> Result<HealthReport> {
        let reply = self.call(op::HEALTH, b"")?;
        let mut r = Reader::new(&reply);
        let overall = health_from_byte(r.u8().ok_or_else(|| bad("empty health reply"))?)
            .ok_or_else(|| bad("bad health byte"))?;
        let count = r.u32().ok_or_else(|| bad("missing shard count"))? as usize;
        if count > r.remaining() / 5 {
            return Err(bad("shard count past payload"));
        }
        let mut shards = Vec::with_capacity(count);
        for _ in 0..count {
            let state = health_from_byte(r.u8().ok_or_else(|| bad("missing shard state"))?)
                .ok_or_else(|| bad("bad health byte"))?;
            let reason =
                String::from_utf8_lossy(r.bytes().ok_or_else(|| bad("missing health reason"))?)
                    .into_owned();
            shards.push((state, reason));
        }
        Ok(HealthReport { overall, shards })
    }

    /// Admin: scrub every durable shard.
    pub fn scrub(&mut self) -> Result<ScrubTotals> {
        let reply = self.call(op::SCRUB, b"")?;
        let mut r = Reader::new(&reply);
        let totals = ScrubTotals {
            segments_scanned: r.u64().ok_or_else(|| bad("short scrub reply"))?,
            quarantined_segments: r.u64().ok_or_else(|| bad("short scrub reply"))?,
            chunks_salvaged: r.u64().ok_or_else(|| bad("short scrub reply"))?,
            chunks_lost: r.u64().ok_or_else(|| bad("short scrub reply"))?,
        };
        Ok(totals)
    }

    /// Admin: compact every durable shard.
    pub fn compact(&mut self) -> Result<CompactTotals> {
        let reply = self.call(op::COMPACT, b"")?;
        let mut r = Reader::new(&reply);
        let totals = CompactTotals {
            victim_segments: r.u64().ok_or_else(|| bad("short compact reply"))?,
            live_chunks_rewritten: r.u64().ok_or_else(|| bad("short compact reply"))?,
            chunks_dropped: r.u64().ok_or_else(|| bad("short compact reply"))?,
            bytes_reclaimed: r.u64().ok_or_else(|| bad("short compact reply"))?,
        };
        Ok(totals)
    }

    /// The server's telemetry snapshot as a JSON document.
    pub fn telemetry_json(&mut self) -> Result<String> {
        let reply = self.call(op::TELEMETRY, b"")?;
        String::from_utf8(reply).map_err(|_| bad("telemetry is not utf-8"))
    }
}

/// A verifying remote client: every read is checked against a pinned
/// cross-shard root before it is returned, exactly like an in-process
/// [`Verifier`]. Tampered values, forged proofs, and rollback attempts
/// surface as [`ClientError::Verification`].
pub struct LightClient {
    client: SpitzClient,
    verifier: Verifier,
}

impl LightClient {
    /// Connect, handshake, and pin the server's current digest.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<LightClient> {
        let client = SpitzClient::connect(addr)?;
        let mut light = LightClient {
            client,
            verifier: Verifier::new(),
        };
        light.pin()?;
        Ok(light)
    }

    /// Re-pin to the server's current digest. Refuses rollbacks: a digest
    /// behind the existing pin is rejected without moving it.
    pub fn pin(&mut self) -> Result<ShardedDigest> {
        let digest = self.client.digest()?;
        if !self.verifier.observe_sharded(&digest) {
            return Err(ClientError::Verification(
                "served digest rewinds the pinned epoch".to_string(),
            ));
        }
        Ok(digest)
    }

    /// Verified point read: the value (or its absence) is proven against
    /// the pinned root or refused.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let (value, proof) = self.client.get_verified(key)?;
        if !self
            .verifier
            .verify_sharded_read(key, value.as_deref(), &proof)
        {
            return Err(ClientError::Verification(format!(
                "point proof for key {:?} rejected against pinned root",
                String::from_utf8_lossy(key)
            )));
        }
        Ok(value)
    }

    /// Verified batched point read: every value (or absence) in the batch
    /// is proven against the pinned root by one [`ShardedMultiProof`], or
    /// the whole batch is refused — the same acceptance rule as
    /// [`LightClient::get`], amortized over the shared upper-tree nodes.
    pub fn get_batch(&mut self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>> {
        let (values, proof) = self.client.get_verified_batch(keys)?;
        let items: Vec<(Vec<u8>, Option<Vec<u8>>)> =
            keys.iter().cloned().zip(values.iter().cloned()).collect();
        if !self.verifier.verify_sharded_multi(&items, &proof) {
            return Err(ClientError::Verification(
                "batched point proof rejected against pinned root".to_string(),
            ));
        }
        Ok(values)
    }

    /// Verified range read over `start <= key < end`; completeness and
    /// ordering are proven, and the pin advances to the proof's cut.
    pub fn range(&mut self, start: &[u8], end: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let (entries, proof) = self.client.range_verified(start, end)?;
        if !self.verifier.verify_sharded_range(&entries, &proof) {
            return Err(ClientError::Verification(
                "range proof rejected against pinned root".to_string(),
            ));
        }
        Ok(entries)
    }

    /// Long-poll for the epoch to reach `min_epoch`, advancing the pin to
    /// the digest the server answers with.
    pub fn follow(&mut self, min_epoch: u64) -> Result<ShardedDigest> {
        let digest = self.client.subscribe_digest(min_epoch)?;
        if !self.verifier.observe_sharded(&digest) {
            return Err(ClientError::Verification(
                "subscribed digest rewinds the pinned epoch".to_string(),
            ));
        }
        Ok(digest)
    }

    /// The epoch of the currently pinned digest (what reads verify
    /// against).
    pub fn pinned_root(&self) -> Option<spitz_crypto::Hash> {
        self.verifier.pinned_sharded_root()
    }

    /// Write through the verified transport (writes need no proof; the
    /// next read re-proves them).
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<Digest> {
        self.client.put(key, value)
    }

    /// Cross-shard batch write; the returned digest advances the pin.
    pub fn put_batch(&mut self, writes: &[(Vec<u8>, Vec<u8>)]) -> Result<ShardedDigest> {
        let digest = self.client.put_batch(writes)?;
        if !self.verifier.observe_sharded(&digest) {
            return Err(ClientError::Verification(
                "batch digest rewinds the pinned epoch".to_string(),
            ));
        }
        Ok(digest)
    }

    /// The underlying wire client, for mixed verified/raw use.
    pub fn inner(&mut self) -> &mut SpitzClient {
        &mut self.client
    }
}
