//! A tiny deterministic RNG for fuzz-style tests and chaos harnesses.
//!
//! Counter-mode splitmix64: every draw is a pure function of
//! `(seed, stream, counter)`, so a failing fuzz case replays from the
//! printed seed alone, and independent streams drawn from one seed never
//! correlate. Dependency-free on purpose — the protocol torture tests and
//! chaos schedules must not pull in a registry crate.

/// The standard splitmix64 finalizer (same mixer the
/// [`FaultInjector`](crate::FaultInjector) uses internally).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seeded, deterministic random stream.
#[derive(Debug, Clone)]
pub struct SeededRng {
    state: u64,
    counter: u64,
}

impl SeededRng {
    /// Stream 0 of `seed`.
    pub fn new(seed: u64) -> SeededRng {
        SeededRng::stream(seed, 0)
    }

    /// An independent stream of `seed`: different `stream` values give
    /// uncorrelated sequences, so one test seed can drive many actors.
    pub fn stream(seed: u64, stream: u64) -> SeededRng {
        SeededRng {
            state: splitmix64(seed ^ stream.wrapping_mul(0x2545_F491_4F6C_DD1D)),
            counter: 0,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.counter = self.counter.wrapping_add(1);
        splitmix64(self.state ^ self.counter)
    }

    /// A value in `0..n`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift reduction; the tiny modulo bias is irrelevant for
        // fault scheduling and fuzz-case shaping.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A value in `lo..hi`. `lo < hi` required.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// True with probability `num` in 1024.
    pub fn chance(&mut self, num_per_1024: u64) -> bool {
        self.below(1024) < num_per_1024
    }

    /// Fill `buf` with random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// A fresh random byte vector of length `len`.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.fill(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_stream_separated() {
        let a: Vec<u64> = {
            let mut r = SeededRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SeededRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b, "same seed must replay the same sequence");

        let c: Vec<u64> = {
            let mut r = SeededRng::stream(42, 1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c, "different streams must diverge");
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut r = SeededRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range(5, 9);
            assert!((5..9).contains(&v));
        }
        let mut buf = [0u8; 13];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0), "13 random bytes, all zero?");
    }
}
