//! The seeded segment-I/O fault injector.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use spitz_storage::{FsyncOutcome, SegmentIo, SegmentIoHandle, WriteOutcome};

/// Per-operation fault probabilities, in parts per 1024. The categories are
/// tried in declaration order against a single roll, so their sum must stay
/// at or below 1024 (the remainder is the no-fault probability).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultRates {
    /// Record appends torn at a random prefix (crash-mid-write model).
    pub torn_per_1024: u32,
    /// Record appends that succeed with one byte silently damaged.
    pub corrupt_per_1024: u32,
    /// Record appends failing with `ENOSPC`.
    pub enospc_per_1024: u32,
    /// Record appends failing with a transient error (retryable).
    pub transient_per_1024: u32,
    /// Fsyncs failing hard (non-retryable).
    pub fsync_fail_per_1024: u32,
    /// Fsyncs failing transiently (retryable).
    pub fsync_transient_per_1024: u32,
}

/// A deterministic, seeded [`SegmentIo`]: every fault decision is a pure
/// function of `(seed, operation kind, operation index)`, so a schedule
/// reproduces exactly from its seed. Exact-operation faults (registered
/// with [`FaultInjector::fail_append_at`] / [`FaultInjector::fail_fsync_at`])
/// override the seeded roll and fire once.
///
/// Appends and fsyncs are counted on separate indexes; a retried operation
/// consumes a *new* index, which is what makes injected transient faults
/// naturally transient under the store's retry loop.
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    rates: FaultRates,
    appends: AtomicU64,
    fsyncs: AtomicU64,
    injected: AtomicU64,
    exact_appends: Mutex<HashMap<u64, WriteOutcome>>,
    exact_fsyncs: Mutex<HashMap<u64, FsyncOutcome>>,
}

/// Domain-separation tags for the two operation streams.
const APPEND_TAG: u64 = 0xA11E_17D5_0C0F_FEE5;
const FSYNC_TAG: u64 = 0xF517_C001_D15C_F111;

/// The standard splitmix64 finalizer — a tiny, dependency-free mixer with
/// good avalanche, plenty for fault scheduling.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn mix(seed: u64, tag: u64, index: u64) -> u64 {
    splitmix64(seed ^ tag ^ splitmix64(index.wrapping_mul(0x2545_F491_4F6C_DD1D)))
}

impl FaultInjector {
    /// An injector that only fires faults registered at exact operation
    /// counts (no seeded randomness beyond fault *parameters* like the torn
    /// prefix).
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector::random(seed, FaultRates::default())
    }

    /// An injector rolling each operation against `rates`, seeded.
    pub fn random(seed: u64, rates: FaultRates) -> FaultInjector {
        let total = rates.torn_per_1024
            + rates.corrupt_per_1024
            + rates.enospc_per_1024
            + rates.transient_per_1024;
        assert!(total <= 1024, "append fault rates sum past 1024");
        assert!(
            rates.fsync_fail_per_1024 + rates.fsync_transient_per_1024 <= 1024,
            "fsync fault rates sum past 1024"
        );
        FaultInjector {
            seed,
            rates,
            appends: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            exact_appends: Mutex::new(HashMap::new()),
            exact_fsyncs: Mutex::new(HashMap::new()),
        }
    }

    /// Register `outcome` for the `index`-th append (0-based, counted
    /// across all segments). Fires once, overriding the seeded roll.
    pub fn fail_append_at(&self, index: u64, outcome: WriteOutcome) {
        self.exact_appends.lock().unwrap().insert(index, outcome);
    }

    /// Register `outcome` for the `index`-th fsync (0-based, counted
    /// across all segments). Fires once, overriding the seeded roll.
    pub fn fail_fsync_at(&self, index: u64, outcome: FsyncOutcome) {
        self.exact_fsyncs.lock().unwrap().insert(index, outcome);
    }

    /// The seed this injector's schedule derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Operations observed so far: `(appends, fsyncs)`.
    pub fn ops(&self) -> (u64, u64) {
        (
            self.appends.load(Ordering::SeqCst),
            self.fsyncs.load(Ordering::SeqCst),
        )
    }

    /// Number of faults injected so far (both streams).
    pub fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// This injector as the handle a durable store's open path accepts.
    pub fn handle(self: &Arc<Self>) -> SegmentIoHandle {
        Arc::clone(self) as SegmentIoHandle
    }

    fn record(&self, faulted: bool) {
        if faulted {
            self.injected.fetch_add(1, Ordering::SeqCst);
        }
    }
}

impl SegmentIo for FaultInjector {
    fn on_append(&self, _segment: u64, len: usize) -> WriteOutcome {
        let index = self.appends.fetch_add(1, Ordering::SeqCst);
        if let Some(outcome) = self.exact_appends.lock().unwrap().remove(&index) {
            self.record(outcome != WriteOutcome::Full);
            return outcome;
        }
        let r = mix(self.seed, APPEND_TAG, index);
        let roll = (r % 1024) as u32;
        let param = r >> 10;
        let len = len.max(1);
        let rates = &self.rates;
        let mut threshold = rates.torn_per_1024;
        if roll < threshold {
            self.record(true);
            return WriteOutcome::Torn {
                prefix: (param as usize) % len,
            };
        }
        threshold += rates.corrupt_per_1024;
        if roll < threshold {
            self.record(true);
            return WriteOutcome::Corrupt {
                offset: (param as usize) % len,
                mask: (param >> 32) as u8,
            };
        }
        threshold += rates.enospc_per_1024;
        if roll < threshold {
            self.record(true);
            return WriteOutcome::Fail(spitz_storage::IoErrorKind::NoSpace);
        }
        threshold += rates.transient_per_1024;
        if roll < threshold {
            self.record(true);
            return WriteOutcome::Fail(spitz_storage::IoErrorKind::Transient);
        }
        WriteOutcome::Full
    }

    fn on_fsync(&self, _segment: u64) -> FsyncOutcome {
        let index = self.fsyncs.fetch_add(1, Ordering::SeqCst);
        if let Some(outcome) = self.exact_fsyncs.lock().unwrap().remove(&index) {
            self.record(outcome != FsyncOutcome::Ok);
            return outcome;
        }
        let roll = (mix(self.seed, FSYNC_TAG, index) % 1024) as u32;
        if roll < self.rates.fsync_fail_per_1024 {
            self.record(true);
            return FsyncOutcome::Fail(spitz_storage::IoErrorKind::Other);
        }
        if roll < self.rates.fsync_fail_per_1024 + self.rates.fsync_transient_per_1024 {
            self.record(true);
            return FsyncOutcome::Fail(spitz_storage::IoErrorKind::Transient);
        }
        FsyncOutcome::Ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spitz_storage::IoErrorKind;

    fn drain(injector: &FaultInjector, ops: u64) -> Vec<WriteOutcome> {
        (0..ops).map(|_| injector.on_append(0, 100)).collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        let rates = FaultRates {
            torn_per_1024: 100,
            corrupt_per_1024: 100,
            enospc_per_1024: 100,
            transient_per_1024: 100,
            ..FaultRates::default()
        };
        let a = drain(&FaultInjector::random(42, rates), 512);
        let b = drain(&FaultInjector::random(42, rates), 512);
        assert_eq!(a, b);
        let c = drain(&FaultInjector::random(43, rates), 512);
        assert_ne!(a, c, "different seeds should differ somewhere in 512 ops");
        // With ~40% fault rate, 512 ops must inject a healthy mix.
        assert!(a.iter().any(|o| matches!(o, WriteOutcome::Torn { .. })));
        assert!(a.iter().any(|o| matches!(o, WriteOutcome::Corrupt { .. })));
        assert!(a.contains(&WriteOutcome::Fail(IoErrorKind::NoSpace)));
        assert!(a.contains(&WriteOutcome::Fail(IoErrorKind::Transient)));
    }

    #[test]
    fn exact_op_faults_fire_once_at_their_index() {
        let injector = FaultInjector::new(7);
        injector.fail_append_at(2, WriteOutcome::Torn { prefix: 5 });
        injector.fail_fsync_at(1, FsyncOutcome::Fail(IoErrorKind::NoSpace));
        assert_eq!(injector.on_append(0, 50), WriteOutcome::Full);
        assert_eq!(injector.on_append(0, 50), WriteOutcome::Full);
        assert_eq!(injector.on_append(0, 50), WriteOutcome::Torn { prefix: 5 });
        assert_eq!(injector.on_append(0, 50), WriteOutcome::Full);
        assert_eq!(injector.on_fsync(0), FsyncOutcome::Ok);
        assert_eq!(
            injector.on_fsync(0),
            FsyncOutcome::Fail(IoErrorKind::NoSpace)
        );
        assert_eq!(injector.on_fsync(0), FsyncOutcome::Ok);
        assert_eq!(injector.injected_faults(), 2);
        assert_eq!(injector.ops(), (4, 3));
    }

    #[test]
    fn fault_parameters_stay_inside_the_record() {
        let rates = FaultRates {
            torn_per_1024: 512,
            corrupt_per_1024: 512,
            ..FaultRates::default()
        };
        let injector = FaultInjector::random(99, rates);
        for len in [1usize, 41, 4096] {
            match injector.on_append(3, len) {
                WriteOutcome::Torn { prefix } => assert!(prefix < len),
                WriteOutcome::Corrupt { offset, .. } => assert!(offset < len),
                other => panic!("rates sum to 1024, got {other:?}"),
            }
        }
    }
}
