//! Deterministic crash-point injection above the [`ChunkStore`] API.
//!
//! [`FailpointStore`] wraps any [`ChunkStore`] and, once armed, makes write
//! operations fail after a configured countdown — either as a one-shot
//! error burst (`FailMode::Error`, a disk-full stand-in that clears when
//! disarmed) or permanently (`FailMode::Kill`, the store "dies" and every
//! subsequent operation fails, modeling a crashed device/process).
//!
//! Only *mutating* operations (`put`/`try_put`/`set_root`/`try_set_root`/
//! `sync`) tick the countdown and fail; reads keep working in `Error` mode
//! so recovery paths can be exercised, and fail too once `Kill` has fired.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;

use spitz_crypto::Hash;
use spitz_storage::chunk::{Chunk, ChunkKind};
use spitz_storage::{ChunkStore, HealthState, IoErrorKind, StorageError, StoreStats};

/// What happens when the countdown reaches zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailMode {
    /// Every write from the trigger on fails with an injected I/O error
    /// until [`FailpointStore::disarm`] is called. Reads keep working.
    Error,
    /// The store dies at the trigger: every later operation — reads
    /// included — fails, and disarming does not revive it.
    Kill,
}

/// A [`ChunkStore`] wrapper that injects failures after K write operations.
pub struct FailpointStore {
    inner: Arc<dyn ChunkStore>,
    /// Writes remaining before the failpoint fires; negative when disarmed.
    countdown: AtomicI64,
    mode: std::sync::Mutex<FailMode>,
    dead: AtomicBool,
    /// Number of injected failures so far.
    injected: AtomicI64,
}

impl FailpointStore {
    /// Wrap `inner` with the failpoint disarmed.
    pub fn new(inner: Arc<dyn ChunkStore>) -> Arc<FailpointStore> {
        Arc::new(FailpointStore {
            inner,
            countdown: AtomicI64::new(i64::MIN),
            mode: std::sync::Mutex::new(FailMode::Error),
            dead: AtomicBool::new(false),
            injected: AtomicI64::new(0),
        })
    }

    /// Arm the failpoint: the next `after` write operations succeed, then
    /// the failure fires according to `mode`.
    pub fn arm(&self, after: u64, mode: FailMode) {
        *self.mode.lock().unwrap() = mode;
        self.countdown.store(after as i64, Ordering::SeqCst);
    }

    /// Disarm an [`FailMode::Error`] failpoint (a killed store stays dead).
    pub fn disarm(&self) {
        self.countdown.store(i64::MIN, Ordering::SeqCst);
    }

    /// Number of operations that failed by injection so far.
    pub fn injected_failures(&self) -> u64 {
        self.injected.load(Ordering::SeqCst).max(0) as u64
    }

    /// True once a [`FailMode::Kill`] failpoint has fired.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Tick the write countdown; `Err` when the operation must fail.
    fn write_gate(&self) -> Result<(), StorageError> {
        self.read_gate()?;
        let remaining = self.countdown.load(Ordering::SeqCst);
        if remaining == i64::MIN {
            return Ok(());
        }
        let remaining = self.countdown.fetch_sub(1, Ordering::SeqCst);
        if remaining > 0 {
            return Ok(());
        }
        if *self.mode.lock().unwrap() == FailMode::Kill {
            self.dead.store(true, Ordering::SeqCst);
        }
        self.injected.fetch_add(1, Ordering::SeqCst);
        Err(StorageError::io_synthetic(
            IoErrorKind::NoSpace,
            "append",
            "injected failpoint",
        ))
    }

    /// Fail reads only once the store has been killed.
    fn read_gate(&self) -> Result<(), StorageError> {
        if self.dead.load(Ordering::SeqCst) {
            self.injected.fetch_add(1, Ordering::SeqCst);
            return Err(StorageError::io_synthetic(
                IoErrorKind::Other,
                "read",
                "store killed by failpoint",
            ));
        }
        Ok(())
    }
}

impl ChunkStore for FailpointStore {
    fn put(&self, chunk: Chunk) -> Hash {
        self.try_put(chunk)
            .expect("injected failure surfaced through infallible put")
    }

    fn try_put(&self, chunk: Chunk) -> Result<Hash, StorageError> {
        self.write_gate()?;
        self.inner.try_put(chunk)
    }

    fn get(&self, address: &Hash) -> Result<Arc<Chunk>, StorageError> {
        self.read_gate()?;
        self.inner.get(address)
    }

    fn contains(&self, address: &Hash) -> bool {
        self.inner.contains(address)
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn audit(&self) -> Vec<Hash> {
        self.inner.audit()
    }

    fn set_root(&self, name: &str, hash: Hash) {
        self.try_set_root(name, hash)
            .expect("injected failure surfaced through infallible set_root")
    }

    fn try_set_root(&self, name: &str, hash: Hash) -> Result<(), StorageError> {
        self.write_gate()?;
        self.inner.try_set_root(name, hash)
    }

    fn root(&self, name: &str) -> Option<Hash> {
        self.inner.root(name)
    }

    fn sync(&self) -> Result<(), StorageError> {
        self.write_gate()?;
        self.inner.sync()
    }

    fn get_kind(&self, address: &Hash, expected: ChunkKind) -> Result<Arc<Chunk>, StorageError> {
        self.read_gate()?;
        self.inner.get_kind(address, expected)
    }

    /// A killed store is read-only (it will never accept a write again);
    /// otherwise health is whatever the wrapped store reports.
    fn health(&self) -> HealthState {
        if self.is_dead() {
            HealthState::ReadOnly
        } else {
            self.inner.health()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spitz_storage::InMemoryChunkStore;

    fn chunk(n: u8) -> Chunk {
        Chunk::new(ChunkKind::Blob, vec![n; 8])
    }

    #[test]
    fn countdown_fires_then_disarm_revives_error_mode() {
        let store = FailpointStore::new(Arc::new(InMemoryChunkStore::new()));
        store.arm(2, FailMode::Error);
        store.try_put(chunk(1)).unwrap();
        store.try_put(chunk(2)).unwrap();
        let err = store.try_put(chunk(3)).unwrap_err();
        assert!(err.to_string().contains("failpoint"));
        assert_eq!(err.io_kind(), Some(IoErrorKind::NoSpace));
        assert_eq!(store.health(), HealthState::Healthy);
        store.disarm();
        store.try_put(chunk(3)).unwrap();
        assert_eq!(store.injected_failures(), 1);
    }

    #[test]
    fn killed_store_stays_dead_and_reports_read_only() {
        let store = FailpointStore::new(Arc::new(InMemoryChunkStore::new()));
        let address = store.try_put(chunk(1)).unwrap();
        store.arm(0, FailMode::Kill);
        assert!(store.try_put(chunk(2)).is_err());
        assert!(store.is_dead());
        assert_eq!(store.health(), HealthState::ReadOnly);
        assert!(store.get(&address).is_err(), "reads fail after kill");
        store.disarm();
        assert!(store.try_put(chunk(2)).is_err(), "kill is permanent");
    }
}
