//! Deterministic fault injection for storage-backed tests and chaos
//! harnesses.
//!
//! Three complementary tools live here:
//!
//! * [`FaultInjector`] — a seeded [`SegmentIo`](spitz_storage::SegmentIo)
//!   implementation installed *beneath* a durable store's file I/O. It can
//!   tear a write at an arbitrary prefix, flip a bit, report `ENOSPC`, fail
//!   transiently, or fail an fsync — either at exact operation counts or at
//!   seeded random rates. Every decision is a pure function of the seed and
//!   the operation index, so a failing schedule replays from its printed
//!   seed alone.
//! * [`FailpointStore`] — a [`ChunkStore`](spitz_storage::ChunkStore)
//!   wrapper that injects failures
//!   *above* the store API after a configured countdown of write
//!   operations. This is the right layer for simulating whole-shard death
//!   and vote-abort behavior in the sharded 2PC tests, where the in-memory
//!   stores have no segment I/O to hook.
//! * [`SeededRng`] — a counter-mode splitmix64 stream for shaping fuzz
//!   cases and chaos op mixes. Same replay-from-seed discipline as the
//!   injector, shared by the wire-protocol torture tests.
//!
//! Both are deterministic and dependency-free; this crate is a
//! dev-dependency of the workspace test suites and a normal dependency of
//! the chaos harness in `spitz-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod failpoint;
pub mod injector;
pub mod rng;

pub use failpoint::{FailMode, FailpointStore};
pub use injector::{FaultInjector, FaultRates};
pub use rng::SeededRng;
