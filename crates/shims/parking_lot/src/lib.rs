//! Offline shim for `parking_lot`.
//!
//! The build environment for this workspace has no registry access, so this
//! crate provides the subset of the `parking_lot` API the workspace uses —
//! [`Mutex`] and [`RwLock`] whose lock methods return guards directly instead
//! of `Result`s — implemented on top of `std::sync`. Poisoned locks are
//! recovered transparently, matching `parking_lot`'s poison-free semantics.
//!
//! To use the real crate, point the `parking_lot` entry in the workspace
//! `[workspace.dependencies]` at a registry version.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual exclusion primitive, mirroring `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrow the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock, mirroring `parking_lot::RwLock`.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Mutably borrow the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_guards_data() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
