//! Offline shim for `serde`.
//!
//! The build environment has no registry access, so this crate provides just
//! enough of the serde trait surface for the workspace to compile: the
//! [`Serialize`]/[`Deserialize`] traits, minimal [`Serializer`]/
//! [`Deserializer`] traits (string/bytes oriented, which is all the `Hash`
//! impls need), the `de::Error` extension point, and no-op derive macros from
//! the sibling `serde_derive` shim. A working string-based serializer is
//! included so the manual impls are exercised by tests.
//!
//! To use the real crate, point the `serde` entry in the workspace
//! `[workspace.dependencies]` at a registry version.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Serialization half of the shim.
pub mod ser {
    use std::fmt::Display;

    /// Errors produced by a [`Serializer`].
    pub trait Error: Sized + std::error::Error {
        /// Build an error from a display-able message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A minimal data-format serializer: strings and byte strings only.
    pub trait Serializer: Sized {
        /// Value produced on success.
        type Ok;
        /// Error type.
        type Error: Error;

        /// Whether the format is human readable (e.g. JSON-like vs binary).
        fn is_human_readable(&self) -> bool {
            true
        }

        /// Serialize a string.
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;

        /// Serialize a byte string.
        fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    }

    /// A value serializable into any [`Serializer`].
    pub trait Serialize {
        /// Serialize `self`.
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
    }

    impl Serialize for String {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_str(self)
        }
    }

    impl Serialize for &str {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_str(self)
        }
    }

    impl Serialize for Vec<u8> {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_bytes(self)
        }
    }
}

/// Deserialization half of the shim.
pub mod de {
    use std::fmt::Display;

    /// Errors produced by a [`Deserializer`].
    pub trait Error: Sized + std::error::Error {
        /// Build an error from a display-able message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A minimal data-format deserializer: strings and byte strings only.
    pub trait Deserializer<'de>: Sized {
        /// Error type.
        type Error: Error;

        /// Whether the format is human readable.
        fn is_human_readable(&self) -> bool {
            true
        }

        /// Deserialize a string.
        fn deserialize_string(self) -> Result<String, Self::Error>;

        /// Deserialize a byte string.
        fn deserialize_byte_buf(self) -> Result<Vec<u8>, Self::Error>;
    }

    /// A value deserializable from any [`Deserializer`].
    pub trait Deserialize<'de>: Sized {
        /// Deserialize a value.
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
    }

    impl<'de> Deserialize<'de> for String {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            deserializer.deserialize_string()
        }
    }

    impl<'de> Deserialize<'de> for Vec<u8> {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            deserializer.deserialize_byte_buf()
        }
    }
}

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

/// A simple string/hex serializer and deserializer pair, mostly so the shim's
/// trait plumbing is exercised by real code paths and tests.
pub mod plain {
    use std::fmt;

    /// Error type for the plain format.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct PlainError(pub String);

    impl fmt::Display for PlainError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "plain codec error: {}", self.0)
        }
    }

    impl std::error::Error for PlainError {}

    impl crate::ser::Error for PlainError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            PlainError(msg.to_string())
        }
    }

    impl crate::de::Error for PlainError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            PlainError(msg.to_string())
        }
    }

    /// Serializes strings as-is and byte strings as lowercase hex.
    pub struct PlainSerializer;

    impl crate::ser::Serializer for PlainSerializer {
        type Ok = String;
        type Error = PlainError;

        fn serialize_str(self, v: &str) -> Result<String, PlainError> {
            Ok(v.to_string())
        }

        fn serialize_bytes(self, v: &[u8]) -> Result<String, PlainError> {
            Ok(v.iter().map(|b| format!("{b:02x}")).collect())
        }
    }

    /// Deserializes from a string produced by [`PlainSerializer`].
    pub struct PlainDeserializer<'de>(pub &'de str);

    impl<'de> crate::de::Deserializer<'de> for PlainDeserializer<'de> {
        type Error = PlainError;

        fn deserialize_string(self) -> Result<String, PlainError> {
            Ok(self.0.to_string())
        }

        fn deserialize_byte_buf(self) -> Result<Vec<u8>, PlainError> {
            if !self.0.len().is_multiple_of(2) {
                return Err(PlainError("odd-length hex".into()));
            }
            (0..self.0.len())
                .step_by(2)
                .map(|i| {
                    u8::from_str_radix(&self.0[i..i + 2], 16).map_err(|e| PlainError(e.to_string()))
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::plain::{PlainDeserializer, PlainSerializer};
    use super::{de::Deserialize, ser::Serialize};

    #[test]
    fn plain_roundtrip() {
        let s = "hello".to_string().serialize(PlainSerializer).unwrap();
        assert_eq!(s, "hello");
        assert_eq!(String::deserialize(PlainDeserializer(&s)).unwrap(), "hello");

        let b = vec![0xde, 0xad].serialize(PlainSerializer).unwrap();
        assert_eq!(b, "dead");
        assert_eq!(
            Vec::<u8>::deserialize(PlainDeserializer(&b)).unwrap(),
            vec![0xde, 0xad]
        );
    }
}
