//! Offline shim for `rand` 0.8.
//!
//! Implements the subset of the `rand` API this workspace uses — [`RngCore`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`]/[`Rng::gen_range`],
//! [`rngs::StdRng`] and [`seq::SliceRandom::shuffle`] — on top of a
//! xoshiro256++ generator seeded through SplitMix64. Deterministic for a
//! given seed, statistically fine for workload generation and benchmarks;
//! **not** cryptographically secure.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (raw generator state).
    type Seed;

    /// Build the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build the generator from a `u64`, expanding it with SplitMix64 as the
    /// real `rand` does.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[low, high)`.
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
    /// Sample uniformly from `[low, high]`.
    fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
    fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, high)
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait Standard: Sized {
    /// Draw one value.
    fn standard(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Extension trait for slices: shuffling and random choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Pick a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() as usize) % (i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() as usize) % self.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn gen_produces_all_byte_values_eventually() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[rng.gen::<u8>() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
