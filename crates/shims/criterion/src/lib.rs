//! Offline shim for `criterion`.
//!
//! Provides the subset of the Criterion API the workspace benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros — backed by a
//! small wall-clock harness: each benchmark is warmed up briefly, then timed
//! over a capped measurement window, and the mean ns/iter is printed. No
//! statistics, plots or baselines; swap in the real crate for those.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark manager handed to every `criterion_group!` target.
pub struct Criterion {
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Deliberately short defaults: the shim is for smoke-running
            // benches, not for statistically rigorous measurement.
            measurement_time: Duration::from_millis(300),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Override the measurement window for subsequent groups.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Override the sample count for subsequent groups.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (measurement_time, sample_size) = (self.measurement_time, self.sample_size);
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            measurement_time,
            sample_size,
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (mt, id) = (self.measurement_time, id.into());
        run_benchmark("", &id.0, mt, f);
        self
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Compose an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// An id that is only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// A named collection of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples (kept for API compatibility; the shim uses
    /// it only to bound the warm-up).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Set the measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Throughput declarations are accepted and ignored.
    pub fn throughput(&mut self, _elements: u64) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&self.name, &id.0, self.measurement_time, f);
        self
    }

    /// Run one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&self.name, &id.0, self.measurement_time, |b| f(b, input));
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    window: Duration,
}

impl Bencher {
    /// Call `f` repeatedly for the measurement window, recording total time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        loop {
            black_box(f());
            self.iters += 1;
            // Check the clock every iteration: simple and good enough for a
            // smoke harness (the real crate batches to amortize this).
            self.elapsed = start.elapsed();
            if self.elapsed >= MEASUREMENT_CAP.min(self.window) || self.iters >= MAX_ITERS {
                break;
            }
        }
    }
}

const MAX_ITERS: u64 = 1_000_000;
/// Hard cap so `cargo bench` with many benches stays fast even when a bench
/// asks for a long window.
const MEASUREMENT_CAP: Duration = Duration::from_millis(500);

impl Bencher {
    fn new(window: Duration) -> Self {
        Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
            window,
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(group: &str, id: &str, window: Duration, mut f: F) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mut b = Bencher::new(window);
    f(&mut b);
    let per_iter = if b.iters == 0 {
        0.0
    } else {
        b.elapsed.as_nanos() as f64 / b.iters as f64
    };
    println!(
        "bench {label:<50} {per_iter:>14.1} ns/iter ({} iters)",
        b.iters
    );
}

/// Mirror of `criterion_group!`: defines a function that runs each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion_main!`: defines `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
