//! Configuration and the deterministic RNG behind the shim's generation.

/// Runner configuration. Only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator (SplitMix64) used for value generation.
///
/// Seeded from the test name, so every property sees a fixed, reproducible
/// stream of cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (FNV-1a over the bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly random `usize` in `[low, high)`.
    pub fn usize_in(&mut self, low: usize, high: usize) -> usize {
        assert!(low < high, "empty range");
        low + (self.next_u64() as usize) % (high - low)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        let _ = c.next_u64();
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
