//! String strategies from a small regex subset.
//!
//! `&str` implements [`Strategy`] the way it does in real proptest, where the
//! string is interpreted as a regular expression. The shim supports the
//! subset the workspace's tests use: literal characters, character classes
//! like `[a-z0-9_]` (ranges and single characters, no negation), and
//! repetition suffixes `{m}`, `{m,n}`, `*`, `+`, `?` on the preceding atom.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                    if lo == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated range in {pattern:?}"));
                        assert!(lo <= hi, "inverted range in {pattern:?}");
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(!ranges.is_empty(), "empty class in {pattern:?}");
                Atom::Class(ranges)
            }
            '\\' => Atom::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in {pattern:?}")),
            ),
            '{' | '}' | '*' | '+' | '?' => {
                panic!("quantifier without preceding atom in {pattern:?}")
            }
            other => Atom::Literal(other),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for d in chars.by_ref() {
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                if let Some((lo, hi)) = spec.split_once(',') {
                    let lo: usize = lo.trim().parse().expect("bad repetition lower bound");
                    let hi: usize = hi.trim().parse().expect("bad repetition upper bound");
                    assert!(lo <= hi, "inverted repetition in {pattern:?}");
                    (lo, hi)
                } else {
                    let n: usize = spec.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn generate_from(pieces: &[Piece], rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in pieces {
        let count = if piece.min == piece.max {
            piece.min
        } else {
            rng.usize_in(piece.min, piece.max + 1)
        };
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => {
                    let (lo, hi) = ranges[rng.usize_in(0, ranges.len())];
                    let span = hi as u32 - lo as u32 + 1;
                    let code = lo as u32 + (rng.next_u64() as u32) % span;
                    out.push(char::from_u32(code).expect("class range spans valid chars"));
                }
            }
        }
    }
    out
}

impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        // Parsing per call keeps the API simple; patterns in tests are tiny.
        generate_from(&parse_pattern(self), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_repetition() {
        let mut rng = TestRng::deterministic("re1");
        for _ in 0..200 {
            let s = "[a-z]{3,10}".generate(&mut rng);
            assert!((3..=10).contains(&s.len()));
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn literals_and_suffixes() {
        let mut rng = TestRng::deterministic("re2");
        let s = "ab[0-9]{2}".generate(&mut rng);
        assert_eq!(s.len(), 4);
        assert!(s.starts_with("ab"));
        assert!(s[2..].bytes().all(|b| b.is_ascii_digit()));

        let t = "x?".generate(&mut rng);
        assert!(t.is_empty() || t == "x");
    }
}
