//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A range of collection sizes, mirroring `proptest::collection::SizeRange`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    low: usize,
    /// Exclusive upper bound.
    high: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.low + 1 >= self.high {
            self.low
        } else {
            rng.usize_in(self.low, self.high)
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            low: r.start,
            high: r.end.max(r.start + 1),
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            low: *r.start(),
            high: r.end().saturating_add(1),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            low: n,
            high: n + 1,
        }
    }
}

/// Strategy for `Vec<T>` with sizes drawn from a [`SizeRange`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generate vectors whose elements come from `element` and whose length falls
/// in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeSet<T>`.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        // The element strategy may not have `target` distinct values; bound
        // the attempts so generation always terminates.
        let mut attempts = 0;
        while out.len() < target && attempts < target * 20 + 50 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// Generate ordered sets whose elements come from `element` and whose size
/// falls in `size` (best effort when the element domain is small).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeMap<K, V>`.
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut out = BTreeMap::new();
        let mut attempts = 0;
        while out.len() < target && attempts < target * 20 + 50 {
            out.insert(self.key.generate(rng), self.value.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// Generate ordered maps from `key`/`value` strategies with sizes in `size`.
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_respects_size() {
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..100 {
            let v = vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn set_and_map_reach_target_when_domain_allows() {
        let mut rng = TestRng::deterministic("set");
        let s = btree_set(0u64..1_000_000, 10..11).generate(&mut rng);
        assert_eq!(s.len(), 10);
        let m = btree_map(0u64..1_000_000, any::<u8>(), 10..11).generate(&mut rng);
        assert_eq!(m.len(), 10);
    }

    #[test]
    fn small_domain_terminates() {
        let mut rng = TestRng::deterministic("small");
        // Only two possible elements but a size target of 50: must terminate.
        let s = btree_set(0u8..2, 50..51).generate(&mut rng);
        assert!(s.len() <= 2);
    }
}
