//! Offline shim for `proptest`.
//!
//! The build environment has no registry access, so this crate implements the
//! subset of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//! * `any::<T>()` for integers and `bool`,
//! * integer range strategies (`1u8..255`, `0u64..=10`, …),
//! * [`collection::vec`], [`collection::btree_set`], [`collection::btree_map`],
//! * string strategies from a small regex subset: literal characters,
//!   `[a-z0-9_]`-style classes, and `{m}` / `{m,n}` repetition.
//!
//! Unlike the real proptest there is **no shrinking** and no persistent
//! failure file: a failing case panics with the generated inputs left to the
//! assertion message. Generation is deterministic per test name, so failures
//! reproduce. Swap in the real crate by pointing the workspace dependency at
//! a registry version.

#![forbid(unsafe_code)]

pub mod strategy;

pub mod collection;

pub mod string;

pub mod test_runner;

/// The subset of `proptest::prelude` the tests import.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a property test (panics on failure; the shim
/// does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests. Mirrors `proptest::proptest!` for bodies of the
/// form `fn name(binding in strategy, ...) { ... }`.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let run = || -> () { $body };
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(run),
                    );
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest shim: case {}/{} of `{}` failed",
                            case + 1,
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
