//! The [`Strategy`] trait and scalar strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// The shim keeps only the generation half of proptest's `Strategy`; there is
/// no value tree and no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: uniform over the whole type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                self.start().wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Tuples of strategies generate tuples of values.
macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..500 {
            let v = (1u8..255).generate(&mut rng);
            assert!((1..255).contains(&v));
            let w = (10u64..=12).generate(&mut rng);
            assert!((10..=12).contains(&w));
        }
    }

    #[test]
    fn any_and_just() {
        let mut rng = TestRng::deterministic("any");
        let _: u64 = any::<u64>().generate(&mut rng);
        assert_eq!(Just(7u32).generate(&mut rng), 7);
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::deterministic("tuple");
        let (a, b) = (1u8..10, 0u64..5).generate(&mut rng);
        assert!((1..10).contains(&a));
        assert!(b < 5);
    }
}
