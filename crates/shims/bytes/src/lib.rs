//! Offline shim for `bytes`.
//!
//! Provides [`Bytes`]: a cheaply cloneable, immutable, reference-counted byte
//! buffer covering the subset of the real `bytes::Bytes` API this workspace
//! uses. Backed by `Arc<[u8]>`, so clones are O(1) and the payload is shared.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Create an empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy the contents out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes(Arc::from(s))
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Self {
        Bytes(Arc::from(&s[..]))
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes(Arc::from(s.as_bytes()))
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes(Arc::from(b))
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sharing() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(&*a, &[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(Bytes::from(&b"xy"[..]).len(), 2);
        assert!(Bytes::new().is_empty());
    }
}
