//! No-op `#[derive(Serialize, Deserialize)]` macros for the offline serde
//! shim.
//!
//! Nothing in this workspace actually serializes the derived types through a
//! serde `Serializer` (the storage layer has its own byte codecs), so the
//! derives only need to exist for `#[derive(...)]` attributes to compile.
//! They expand to nothing; the types therefore do **not** implement the shim
//! `Serialize`/`Deserialize` traits. Swap in the real serde + serde_derive to
//! get working implementations.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
