//! Pattern-Oriented-Split Tree (POS-Tree).
//!
//! The POS-Tree is ForkBase's structurally invariant, authenticated index
//! and the structure Spitz uses for its unified ledger index. It is a
//! B+-tree-like search tree whose node boundaries are *content defined*: an
//! entry ends a node when a hash of its key matches a split pattern. As a
//! result the shape of the tree is a pure function of the key set —
//! independent of insertion order — and two versions of the tree that share
//! most of their data share most of their (content-addressed) nodes.
//!
//! This implementation makes the split decision from a per-entry key hash
//! (a simplification of ForkBase's rolling hash over the serialized entry
//! stream; see DESIGN.md). The properties the paper relies on are preserved:
//! structural invariance, node-level deduplication across versions, ordered
//! range scans, and Merkle proofs that are produced by the same traversal
//! that answers the query.

use std::sync::Arc;

use spitz_crypto::{sha256, Hash};
use spitz_storage::{Chunk, ChunkKind, ChunkStore, StorageError};

use crate::codec::{put_bytes, put_hash, put_u32, put_u64, Reader};
use crate::proof::{hash_index_node, IndexProof, MultiProof};
use crate::siri::{SiriIndex, SiriKind};

/// Expected (average) number of entries per node.
const AVG_FANOUT: u64 = 16;
/// Hard cap on entries per node; runs longer than this are force-split.
const MAX_NODE_ENTRIES: usize = 1024;

/// A child reference inside an internal node.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ChildRef {
    /// Largest key stored in the child's subtree.
    max_key: Vec<u8>,
    /// Content address of the child node.
    hash: Hash,
    /// Number of entries in the child's subtree.
    count: u64,
}

/// Decoded node.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Node {
    /// Level 0: sorted key/value entries.
    Leaf(Vec<(Vec<u8>, Vec<u8>)>),
    /// Level >= 1: sorted child references.
    Internal(u8, Vec<ChildRef>),
}

impl Node {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Node::Leaf(entries) => {
                out.push(0u8);
                put_u32(&mut out, entries.len() as u32);
                for (k, v) in entries {
                    put_bytes(&mut out, k);
                    put_bytes(&mut out, v);
                }
            }
            Node::Internal(level, children) => {
                out.push(*level);
                put_u32(&mut out, children.len() as u32);
                for child in children {
                    put_bytes(&mut out, &child.max_key);
                    put_hash(&mut out, &child.hash);
                    put_u64(&mut out, child.count);
                }
            }
        }
        out
    }

    fn decode(data: &[u8]) -> Option<Node> {
        let mut r = Reader::new(data);
        let level = r.u8()?;
        let count = r.u32()? as usize;
        if level == 0 {
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let k = r.bytes()?.to_vec();
                let v = r.bytes()?.to_vec();
                entries.push((k, v));
            }
            if !r.is_exhausted() {
                return None;
            }
            Some(Node::Leaf(entries))
        } else {
            let mut children = Vec::with_capacity(count);
            for _ in 0..count {
                let max_key = r.bytes()?.to_vec();
                let hash = r.hash()?;
                let child_count = r.u64()?;
                children.push(ChildRef {
                    max_key,
                    hash,
                    count: child_count,
                });
            }
            if !r.is_exhausted() {
                return None;
            }
            Some(Node::Internal(level, children))
        }
    }

    fn children(self) -> Vec<Hash> {
        match self {
            Node::Leaf(_) => Vec::new(),
            Node::Internal(_, children) => children.into_iter().map(|c| c.hash).collect(),
        }
    }

    fn max_key(&self) -> Vec<u8> {
        match self {
            Node::Leaf(entries) => entries.last().map(|(k, _)| k.clone()).unwrap_or_default(),
            Node::Internal(_, children) => children
                .last()
                .map(|c| c.max_key.clone())
                .unwrap_or_default(),
        }
    }

    fn count(&self) -> u64 {
        match self {
            Node::Leaf(entries) => entries.len() as u64,
            Node::Internal(_, children) => children.iter().map(|c| c.count).sum(),
        }
    }
}

/// Content-defined split decision: an entry with this key ends a node at the
/// given level. Seeded per level so that leaf and internal splits are
/// independent.
/// Child node addresses of an encoded Pos-Tree node (empty for a leaf);
/// `None` when the payload does not decode as a Pos-Tree node.
pub(crate) fn node_children(payload: &[u8]) -> Option<Vec<Hash>> {
    Node::decode(payload).map(Node::children)
}

fn is_boundary(key: &[u8], level: u8) -> bool {
    let mut data = Vec::with_capacity(key.len() + 2);
    data.push(0xB0);
    data.push(level);
    data.extend_from_slice(key);
    sha256(&data).prefix_u64().is_multiple_of(AVG_FANOUT)
}

/// The Pattern-Oriented-Split Tree.
pub struct PosTree {
    store: Arc<dyn ChunkStore>,
    root: Hash,
    len: usize,
}

impl PosTree {
    /// Create an empty tree writing its nodes into `store`.
    pub fn new(store: Arc<dyn ChunkStore>) -> Self {
        PosTree {
            store,
            root: Hash::ZERO,
            len: 0,
        }
    }

    /// Open the tree at an existing root. Returns `None` if the root node is
    /// not present in the store.
    pub fn open(store: Arc<dyn ChunkStore>, root: Hash) -> Option<Self> {
        if root.is_zero() {
            return Some(PosTree {
                store,
                root,
                len: 0,
            });
        }
        let node = load_node(&store, &root)?;
        let len = node.count() as usize;
        Some(PosTree { store, root, len })
    }

    /// The backing chunk store.
    pub fn store(&self) -> &Arc<dyn ChunkStore> {
        &self.store
    }

    /// Verify a point-lookup proof against a trusted root digest.
    pub fn verify_proof(root: Hash, key: &[u8], value: Option<&[u8]>, proof: &IndexProof) -> bool {
        if root.is_zero() {
            return value.is_none();
        }
        if !proof.verify_chain(root) {
            return false;
        }
        let Some(last) = proof.nodes.last() else {
            return false;
        };
        let Some(Node::Leaf(entries)) = Node::decode(last) else {
            return false;
        };
        let found = entries.iter().find(|(k, _)| k.as_slice() == key);
        match (found, value) {
            (Some((_, v)), Some(expected)) => v.as_slice() == expected,
            (None, None) => true,
            _ => false,
        }
    }

    /// Verify a **complete** range proof: the claimed entries must be
    /// exactly the tree's contents in `start <= key < end`. The verifier
    /// re-runs the same pruned descent the server's scan performed, using
    /// the revealed nodes as its node source: any child whose key span
    /// overlaps the range must be revealed (else the proof is rejected for
    /// omission), and the entries collected from the revealed leaves must
    /// equal the claimed entries byte for byte.
    pub fn verify_range_proof(
        root: Hash,
        start: &[u8],
        end: &[u8],
        entries: &[(Vec<u8>, Vec<u8>)],
        proof: &IndexProof,
    ) -> bool {
        if root.is_zero() || start >= end {
            return entries.is_empty();
        }
        let nodes: std::collections::HashMap<Hash, &[u8]> = proof
            .nodes
            .iter()
            .map(|n| (crate::proof::hash_index_node(n), n.as_slice()))
            .collect();
        let mut collected = Vec::new();
        if !collect_range(&nodes, &root, start, end, None, &mut collected) {
            return false;
        }
        collected == entries
    }

    fn save_node(&self, node: &Node) -> Result<(Hash, u64), StorageError> {
        let payload = node.encode();
        let count = node.count();
        let hash = self
            .store
            .try_put(Chunk::new(ChunkKind::IndexNode, payload))?;
        Ok((hash, count))
    }

    /// Split a freshly modified node's entries at content-defined boundaries
    /// and persist the resulting nodes, returning their child references.
    fn persist_leaf_runs(
        &self,
        entries: Vec<(Vec<u8>, Vec<u8>)>,
    ) -> Result<Vec<ChildRef>, StorageError> {
        let mut out = Vec::new();
        let mut current: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let total = entries.len();
        for (i, (k, v)) in entries.into_iter().enumerate() {
            let boundary = is_boundary(&k, 0);
            current.push((k, v));
            let force = current.len() >= MAX_NODE_ENTRIES;
            let last = i + 1 == total;
            if (boundary || force) && !last {
                out.push(self.child_ref_for(Node::Leaf(std::mem::take(&mut current)))?);
            }
        }
        if !current.is_empty() {
            out.push(self.child_ref_for(Node::Leaf(current))?);
        }
        Ok(out)
    }

    fn persist_internal_runs(
        &self,
        level: u8,
        children: Vec<ChildRef>,
    ) -> Result<Vec<ChildRef>, StorageError> {
        let mut out = Vec::new();
        let mut current: Vec<ChildRef> = Vec::new();
        let total = children.len();
        for (i, child) in children.into_iter().enumerate() {
            let boundary = is_boundary(&child.max_key, level);
            current.push(child);
            let force = current.len() >= MAX_NODE_ENTRIES;
            let last = i + 1 == total;
            if (boundary || force) && !last {
                out.push(self.child_ref_for(Node::Internal(level, std::mem::take(&mut current)))?);
            }
        }
        if !current.is_empty() {
            out.push(self.child_ref_for(Node::Internal(level, current))?);
        }
        Ok(out)
    }

    fn child_ref_for(&self, node: Node) -> Result<ChildRef, StorageError> {
        let max_key = node.max_key();
        let (hash, count) = self.save_node(&node)?;
        Ok(ChildRef {
            max_key,
            hash,
            count,
        })
    }

    /// Recursive insert; returns the replacement children for the node at
    /// `hash` and whether a brand-new key was added.
    fn insert_rec(
        &self,
        hash: &Hash,
        key: &[u8],
        value: &[u8],
    ) -> Result<(Vec<ChildRef>, bool), StorageError> {
        let node = load_node(&self.store, hash).expect("pos-tree node missing from store");
        match node {
            Node::Leaf(mut entries) => {
                let mut inserted_new = false;
                match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => entries[i].1 = value.to_vec(),
                    Err(i) => {
                        entries.insert(i, (key.to_vec(), value.to_vec()));
                        inserted_new = true;
                    }
                }
                Ok((self.persist_leaf_runs(entries)?, inserted_new))
            }
            Node::Internal(level, mut children) => {
                let idx = match children.binary_search_by(|c| c.max_key.as_slice().cmp(key)) {
                    Ok(i) => i,
                    Err(i) => i.min(children.len() - 1),
                };
                let (replacements, inserted_new) =
                    self.insert_rec(&children[idx].hash, key, value)?;
                children.splice(idx..idx + 1, replacements);
                Ok((self.persist_internal_runs(level, children)?, inserted_new))
            }
        }
    }

    fn find_leaf(
        &self,
        key: &[u8],
        proof: Option<&mut IndexProof>,
    ) -> Option<Vec<(Vec<u8>, Vec<u8>)>> {
        if self.root.is_zero() {
            return None;
        }
        let mut proof = proof;
        let mut hash = self.root;
        loop {
            let chunk = self.store.get(&hash).ok()?;
            let payload = chunk.data().to_vec();
            let node = Node::decode(&payload)?;
            if let Some(p) = proof.as_deref_mut() {
                p.push_node(payload);
            }
            match node {
                Node::Leaf(entries) => return Some(entries),
                Node::Internal(_, children) => {
                    let idx = match children.binary_search_by(|c| c.max_key.as_slice().cmp(key)) {
                        Ok(i) => i,
                        Err(i) => i.min(children.len() - 1),
                    };
                    hash = children[idx].hash;
                }
            }
        }
    }

    fn range_rec(
        &self,
        hash: &Hash,
        start: &[u8],
        end: &[u8],
        min_key: Option<&[u8]>,
        out: &mut Vec<(Vec<u8>, Vec<u8>)>,
        proof: &mut Option<&mut IndexProof>,
    ) {
        let Ok(chunk) = self.store.get(hash) else {
            return;
        };
        let payload = chunk.data().to_vec();
        let Some(node) = Node::decode(&payload) else {
            return;
        };
        if let Some(p) = proof.as_deref_mut() {
            p.push_node(payload);
        }
        match node {
            Node::Leaf(entries) => {
                for (k, v) in entries {
                    if k.as_slice() >= start && k.as_slice() < end {
                        out.push((k, v));
                    }
                }
            }
            Node::Internal(_, children) => {
                let mut prev_max: Option<Vec<u8>> = min_key.map(|k| k.to_vec());
                for child in children {
                    // The child covers keys in (prev_max, child.max_key].
                    let covers_start = child.max_key.as_slice() >= start;
                    let covers_end = match &prev_max {
                        Some(p) => p.as_slice() < end,
                        None => true,
                    };
                    if covers_start && covers_end {
                        self.range_rec(&child.hash, start, end, prev_max.as_deref(), out, proof);
                    }
                    prev_max = Some(child.max_key.clone());
                }
            }
        }
    }

    /// Number of distinct index nodes reachable from the current root
    /// (diagnostic used by the node-sharing experiments).
    pub fn node_count(&self) -> usize {
        fn walk(
            store: &Arc<dyn ChunkStore>,
            hash: &Hash,
            seen: &mut std::collections::HashSet<Hash>,
        ) {
            if hash.is_zero() || !seen.insert(*hash) {
                return;
            }
            let Some(node) = load_node(store, hash) else {
                return;
            };
            if let Node::Internal(_, children) = node {
                for child in children {
                    walk(store, &child.hash, seen);
                }
            }
        }
        let mut seen = std::collections::HashSet::new();
        walk(&self.store, &self.root, &mut seen);
        seen.len()
    }
}

fn load_node(store: &Arc<dyn ChunkStore>, hash: &Hash) -> Option<Node> {
    let chunk = store.get_kind(hash, ChunkKind::IndexNode).ok()?;
    Node::decode(chunk.data())
}

/// Build a point-lookup proof reading node payloads through `fetch` — the
/// same root-to-leaf descent as [`PosTree::get_with_proof`], so the proof
/// bytes are identical whether built from the live tree or from a node
/// cache (the server's proof-node cache relies on this).
pub(crate) fn build_proof_with(
    fetch: &dyn Fn(&Hash) -> Option<Vec<u8>>,
    root: Hash,
    key: &[u8],
) -> Option<(Option<Vec<u8>>, IndexProof)> {
    let mut proof = IndexProof::empty();
    if root.is_zero() {
        return Some((None, proof));
    }
    let mut hash = root;
    loop {
        let payload = fetch(&hash)?;
        let node = Node::decode(&payload)?;
        proof.push_node(payload);
        match node {
            Node::Leaf(entries) => {
                let value = entries
                    .iter()
                    .find(|(k, _)| k.as_slice() == key)
                    .map(|(_, v)| v.clone());
                return Some((value, proof));
            }
            Node::Internal(_, children) => {
                if children.is_empty() {
                    return None;
                }
                let idx = match children.binary_search_by(|c| c.max_key.as_slice().cmp(key)) {
                    Ok(i) => i,
                    Err(i) => i.min(children.len() - 1),
                };
                hash = children[idx].hash;
            }
        }
    }
}

/// Verify a batched multi-key proof: replay each key's root-to-leaf descent
/// over the revealed node set. Every revealed node must be consumed by at
/// least one key's walk — a spliced-in payload that no walk touches is
/// rejected even though it would not affect any individual path.
pub(crate) fn verify_multi_proof(
    root: Hash,
    items: &[(Vec<u8>, Option<Vec<u8>>)],
    proof: &MultiProof,
) -> bool {
    if items.is_empty() {
        return proof.is_empty();
    }
    if root.is_zero() {
        return items.iter().all(|(_, v)| v.is_none()) && proof.is_empty();
    }
    let map: std::collections::HashMap<Hash, (usize, &[u8])> = proof
        .nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (hash_index_node(n), (i, n.as_slice())))
        .collect();
    // Duplicate payloads collapse to one map entry, leaving the shadowed
    // index unused — rejected below, which keeps proofs canonical.
    let mut used = vec![false; proof.nodes.len()];
    for (key, claim) in items {
        let mut hash = root;
        // A legitimate walk visits each node at most once; more steps than
        // revealed nodes would mean a reference cycle.
        let mut steps = 0usize;
        loop {
            steps += 1;
            if steps > proof.nodes.len() {
                return false;
            }
            let Some(&(idx, payload)) = map.get(&hash) else {
                return false;
            };
            used[idx] = true;
            let Some(node) = Node::decode(payload) else {
                return false;
            };
            match node {
                Node::Leaf(entries) => {
                    let found = entries.iter().find(|(k, _)| k == key).map(|(_, v)| v);
                    if found != claim.as_ref() {
                        return false;
                    }
                    break;
                }
                Node::Internal(_, children) => {
                    if children.is_empty() {
                        return false;
                    }
                    let idx = match children.binary_search_by(|c| c.max_key.as_slice().cmp(key)) {
                        Ok(i) => i,
                        Err(i) => i.min(children.len() - 1),
                    };
                    hash = children[idx].hash;
                }
            }
        }
    }
    used.iter().all(|&u| u)
}

/// Client-side replay of [`PosTree::range_rec`] over the revealed proof
/// nodes: descend every child whose span `(prev_max, max_key]` overlaps
/// `[start, end)`, failing if a needed node was not revealed, and collect
/// the in-range leaf entries in key order.
fn collect_range(
    nodes: &std::collections::HashMap<Hash, &[u8]>,
    hash: &Hash,
    start: &[u8],
    end: &[u8],
    min_key: Option<&[u8]>,
    out: &mut Vec<(Vec<u8>, Vec<u8>)>,
) -> bool {
    let Some(payload) = nodes.get(hash) else {
        return false;
    };
    let Some(node) = Node::decode(payload) else {
        return false;
    };
    match node {
        Node::Leaf(entries) => {
            for (k, v) in entries {
                if k.as_slice() >= start && k.as_slice() < end {
                    out.push((k, v));
                }
            }
            true
        }
        Node::Internal(_, children) => {
            let mut prev_max: Option<Vec<u8>> = min_key.map(|k| k.to_vec());
            for child in children {
                let covers_start = child.max_key.as_slice() >= start;
                let covers_end = prev_max.as_deref().map(|p| p < end).unwrap_or(true);
                if covers_start
                    && covers_end
                    && !collect_range(nodes, &child.hash, start, end, prev_max.as_deref(), out)
                {
                    return false;
                }
                prev_max = Some(child.max_key);
            }
            true
        }
    }
}

impl SiriIndex for PosTree {
    fn kind(&self) -> SiriKind {
        SiriKind::PosTree
    }

    fn root(&self) -> Hash {
        self.root
    }

    fn len(&self) -> usize {
        self.len
    }

    fn try_insert(&mut self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StorageError> {
        if self.root.is_zero() {
            let refs = self.persist_leaf_runs(vec![(key, value)])?;
            self.root = self.collapse(refs, 1)?;
            self.len = 1;
            return Ok(());
        }
        let (refs, inserted_new) = self.insert_rec(&self.root.clone(), &key, &value)?;
        // Determine the level above the returned refs: reload one ref to see.
        let level_above = match load_node(&self.store, &refs[0].hash) {
            Some(Node::Leaf(_)) => 1,
            Some(Node::Internal(level, _)) => level + 1,
            None => 1,
        };
        self.root = self.collapse(refs, level_above)?;
        if inserted_new {
            self.len += 1;
        }
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let leaf = self.find_leaf(key, None)?;
        leaf.iter()
            .find(|(k, _)| k.as_slice() == key)
            .map(|(_, v)| v.clone())
    }

    fn get_with_proof(&self, key: &[u8]) -> (Option<Vec<u8>>, IndexProof) {
        let mut proof = IndexProof::empty();
        let value = self.find_leaf(key, Some(&mut proof)).and_then(|leaf| {
            leaf.iter()
                .find(|(k, _)| k.as_slice() == key)
                .map(|(_, v)| v.clone())
        });
        (value, proof)
    }

    fn range(&self, start: &[u8], end: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        if !self.root.is_zero() && start < end {
            let mut no_proof: Option<&mut IndexProof> = None;
            self.range_rec(&self.root, start, end, None, &mut out, &mut no_proof);
        }
        out
    }

    fn range_with_proof(&self, start: &[u8], end: &[u8]) -> (Vec<(Vec<u8>, Vec<u8>)>, IndexProof) {
        let mut out = Vec::new();
        let mut proof = IndexProof::empty();
        if !self.root.is_zero() && start < end {
            let mut with_proof: Option<&mut IndexProof> = Some(&mut proof);
            self.range_rec(&self.root, start, end, None, &mut out, &mut with_proof);
        }
        (out, proof)
    }

    fn checkout(&self, root: Hash) -> Option<Box<dyn SiriIndex>> {
        PosTree::open(Arc::clone(&self.store), root).map(|t| Box::new(t) as Box<dyn SiriIndex>)
    }
}

impl PosTree {
    /// Collapse a list of sibling references into a single root by stacking
    /// internal levels until one node remains.
    fn collapse(&self, mut refs: Vec<ChildRef>, mut level: u8) -> Result<Hash, StorageError> {
        while refs.len() > 1 {
            refs = self.persist_internal_runs(level, refs)?;
            level += 1;
        }
        Ok(refs.pop().map(|r| r.hash).unwrap_or(Hash::ZERO))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use spitz_storage::InMemoryChunkStore;

    fn new_tree() -> PosTree {
        PosTree::new(InMemoryChunkStore::shared())
    }

    fn key(i: u32) -> Vec<u8> {
        format!("key-{i:08}").into_bytes()
    }

    fn value(i: u32) -> Vec<u8> {
        format!("value-{i}").into_bytes()
    }

    #[test]
    fn empty_tree_behaviour() {
        let tree = new_tree();
        assert_eq!(tree.root(), Hash::ZERO);
        assert_eq!(tree.len(), 0);
        assert!(tree.is_empty());
        assert_eq!(tree.get(b"missing"), None);
        let (v, proof) = tree.get_with_proof(b"missing");
        assert!(v.is_none());
        assert!(PosTree::verify_proof(Hash::ZERO, b"missing", None, &proof));
        assert!(tree.range(b"a", b"z").is_empty());
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut tree = new_tree();
        for i in 0..500u32 {
            tree.insert(key(i), value(i));
        }
        assert_eq!(tree.len(), 500);
        for i in 0..500u32 {
            assert_eq!(tree.get(&key(i)), Some(value(i)), "key {i}");
        }
        assert_eq!(tree.get(b"not-there"), None);
    }

    #[test]
    fn overwrite_updates_value_without_growing() {
        let mut tree = new_tree();
        tree.insert(b"k".to_vec(), b"v1".to_vec());
        tree.insert(b"k".to_vec(), b"v2".to_vec());
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.get(b"k"), Some(b"v2".to_vec()));
    }

    #[test]
    fn structural_invariance_under_insertion_order() {
        let keys: Vec<u32> = (0..400).collect();
        let mut rng = StdRng::seed_from_u64(11);

        let mut t1 = new_tree();
        for &i in &keys {
            t1.insert(key(i), value(i));
        }

        let mut shuffled = keys.clone();
        shuffled.shuffle(&mut rng);
        let mut t2 = new_tree();
        for &i in &shuffled {
            t2.insert(key(i), value(i));
        }

        assert_eq!(t1.root(), t2.root());
        assert_eq!(t1.len(), t2.len());
    }

    #[test]
    fn node_sharing_between_versions() {
        let store = InMemoryChunkStore::shared();
        let mut tree = PosTree::new(Arc::clone(&store) as Arc<dyn ChunkStore>);
        for i in 0..2000u32 {
            tree.insert(key(i), value(i));
        }
        let root_v1 = tree.root();
        let nodes_before = tree.node_count();
        let physical_before = store.stats().physical_bytes;

        tree.insert(key(999_999), value(7));
        let root_v2 = tree.root();
        assert_ne!(root_v1, root_v2);

        // Only a root-to-leaf path of nodes should be new.
        let physical_after = store.stats().physical_bytes;
        let added = physical_after - physical_before;
        assert!(
            added < physical_before / 10,
            "one insert must not rewrite the tree: added {added} of {physical_before}"
        );

        // The old version can still be opened and read in full.
        let old = PosTree::open(Arc::clone(&store) as Arc<dyn ChunkStore>, root_v1).unwrap();
        assert_eq!(old.len(), 2000);
        assert_eq!(old.get(&key(999_999)), None);
        assert_eq!(old.get(&key(42)), Some(value(42)));
        assert!(nodes_before > 10);
    }

    #[test]
    fn point_proofs_verify_and_detect_tampering() {
        let mut tree = new_tree();
        for i in 0..300u32 {
            tree.insert(key(i), value(i));
        }
        let root = tree.root();

        let (v, proof) = tree.get_with_proof(&key(123));
        assert_eq!(v, Some(value(123)));
        assert!(PosTree::verify_proof(root, &key(123), v.as_deref(), &proof));
        // Claiming a different value must fail.
        assert!(!PosTree::verify_proof(
            root,
            &key(123),
            Some(b"forged"),
            &proof
        ));
        // Claiming absence of a present key must fail.
        assert!(!PosTree::verify_proof(root, &key(123), None, &proof));
        // Verifying against a different root must fail.
        assert!(!PosTree::verify_proof(
            sha256(b"other"),
            &key(123),
            v.as_deref(),
            &proof
        ));

        // Absence proof for a missing key.
        let (none, absence) = tree.get_with_proof(b"zzz-not-present");
        assert!(none.is_none());
        assert!(PosTree::verify_proof(
            root,
            b"zzz-not-present",
            None,
            &absence
        ));
        assert!(!PosTree::verify_proof(
            root,
            b"zzz-not-present",
            Some(b"x"),
            &absence
        ));
    }

    #[test]
    fn range_scan_returns_sorted_window() {
        let mut tree = new_tree();
        for i in 0..1000u32 {
            tree.insert(key(i), value(i));
        }
        let start = key(100);
        let end = key(200);
        let result = tree.range(&start, &end);
        assert_eq!(result.len(), 100);
        assert!(result.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(result[0].0, key(100));
        assert_eq!(result.last().unwrap().0, key(199));

        // Empty and inverted ranges.
        assert!(tree.range(&end, &start).is_empty());
        assert!(tree.range(b"zzzz", b"zzzzz").is_empty());
    }

    #[test]
    fn range_proofs_cover_all_returned_entries() {
        let mut tree = new_tree();
        for i in 0..800u32 {
            tree.insert(key(i), value(i));
        }
        let root = tree.root();
        let (start, end) = (key(300), key(340));
        let (entries, proof) = tree.range_with_proof(&start, &end);
        assert_eq!(entries.len(), 40);
        assert!(PosTree::verify_range_proof(
            root, &start, &end, &entries, &proof
        ));

        // Tampering with a returned value breaks verification.
        let mut forged = entries.clone();
        forged[0].1 = b"forged".to_vec();
        assert!(!PosTree::verify_range_proof(
            root, &start, &end, &forged, &proof
        ));
        // Omitting an entry breaks verification (completeness).
        let mut truncated = entries.clone();
        truncated.remove(17);
        assert!(!PosTree::verify_range_proof(
            root, &start, &end, &truncated, &proof
        ));
        // Smuggling an extra entry breaks verification.
        let mut padded = entries.clone();
        padded.push((key(500), value(500)));
        assert!(!PosTree::verify_range_proof(
            root, &start, &end, &padded, &proof
        ));
        // Wrong root breaks verification.
        assert!(!PosTree::verify_range_proof(
            sha256(b"bad"),
            &start,
            &end,
            &entries,
            &proof
        ));
        // Narrowing the claimed bounds must not let a shorter result pass.
        assert!(!PosTree::verify_range_proof(
            root,
            &key(301),
            &end,
            &entries,
            &proof
        ));
    }

    #[test]
    fn checkout_reopens_historical_roots() {
        let store = InMemoryChunkStore::shared();
        let mut tree = PosTree::new(Arc::clone(&store) as Arc<dyn ChunkStore>);
        tree.insert(b"a".to_vec(), b"1".to_vec());
        let root1 = tree.root();
        tree.insert(b"b".to_vec(), b"2".to_vec());

        let old = tree.checkout(root1).unwrap();
        assert_eq!(old.len(), 1);
        assert_eq!(old.get(b"a"), Some(b"1".to_vec()));
        assert_eq!(old.get(b"b"), None);
        assert!(tree.checkout(sha256(b"unknown")).is_none());
    }

    #[test]
    fn large_tree_proof_depth_is_logarithmic() {
        let mut tree = new_tree();
        for i in 0..5000u32 {
            tree.insert(key(i), value(i));
        }
        let (_, proof) = tree.get_with_proof(&key(2500));
        assert!(proof.len() >= 2, "tree of 5000 should have depth >= 2");
        assert!(
            proof.len() <= 8,
            "depth should stay logarithmic, got {}",
            proof.len()
        );
    }
}
