//! Index structures for the Spitz verifiable database.
//!
//! The paper distinguishes two families of indexes:
//!
//! * **Authenticated, structurally-invariant indexes (SIRI)** used for the
//!   ledger and for verifiable queries: the
//!   [Pattern-Oriented-Split Tree](pos_tree::PosTree) (POS-Tree, from
//!   ForkBase), the [Merkle Patricia Trie](mpt::MerklePatriciaTrie) (MPT,
//!   from Ethereum) and the [Merkle Bucket Tree](mbt::MerkleBucketTree)
//!   (MBT, from Hyperledger Fabric). All three implement the common
//!   [`SiriIndex`] trait: content-addressed nodes stored in
//!   a [`spitz_storage::ChunkStore`], so unchanged subtrees are physically
//!   shared between versions, plus Merkle proofs for point and range lookups.
//! * **Plain query indexes** used purely for performance: an in-memory
//!   [B+-tree](bplus::BPlusTree) for point/range queries over primary keys, a
//!   [skip list](skiplist::SkipList) for numeric inverted lists, and a
//!   [radix tree](radix::RadixTree) for string inverted lists, combined in
//!   the [inverted index](inverted::InvertedIndex) that serves analytical
//!   queries.
//!
//! # Example
//!
//! ```
//! use spitz_index::siri::SiriIndex;
//! use spitz_index::pos_tree::PosTree;
//! use spitz_storage::InMemoryChunkStore;
//!
//! let store = InMemoryChunkStore::shared();
//! let mut tree = PosTree::new(store);
//! tree.insert(b"k1".to_vec(), b"v1".to_vec());
//! tree.insert(b"k2".to_vec(), b"v2".to_vec());
//!
//! let (value, proof) = tree.get_with_proof(b"k1");
//! assert_eq!(value.as_deref(), Some(b"v1".as_ref()));
//! assert!(PosTree::verify_proof(tree.root(), b"k1", value.as_deref(), &proof));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bplus;
pub mod codec;
pub mod inverted;
pub mod mbt;
pub mod mpt;
pub mod pos_tree;
pub mod proof;
pub mod radix;
pub mod siri;
pub mod skiplist;

pub use bplus::BPlusTree;
pub use inverted::InvertedIndex;
pub use mbt::MerkleBucketTree;
pub use mpt::{BranchMemo, MerklePatriciaTrie};
pub use pos_tree::PosTree;
pub use proof::{IndexProof, MultiProof};
pub use radix::RadixTree;
pub use siri::{
    collect_reachable, node_children, node_chunk_kind, prove_from_nodes, prove_multi_from_nodes,
    verify_multi_proof, SiriIndex, SiriKind,
};
pub use skiplist::SkipList;
