//! Small binary codec helpers shared by the index node serializers.
//!
//! Index nodes are persisted as chunks, so every index defines a compact,
//! deterministic binary layout. The helpers here keep those layouts short
//! and give symmetric read/write routines with explicit failure (`None`)
//! instead of panics on corrupt input.

use spitz_crypto::Hash;

/// Append a `u32` length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, data: &[u8]) {
    out.extend_from_slice(&(data.len() as u32).to_be_bytes());
    out.extend_from_slice(data);
}

/// Append a `u32`.
pub fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_be_bytes());
}

/// Append a `u64`.
pub fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_be_bytes());
}

/// Append a hash.
pub fn put_hash(out: &mut Vec<u8>, hash: &Hash) {
    out.extend_from_slice(hash.as_bytes());
}

/// Cursor for reading back values written with the `put_*` helpers.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when the whole input has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        let end = self.pos.checked_add(4)?;
        if end > self.data.len() {
            return None;
        }
        let value = u32::from_be_bytes(self.data[self.pos..end].try_into().ok()?);
        self.pos = end;
        Some(value)
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        if end > self.data.len() {
            return None;
        }
        let value = u64::from_be_bytes(self.data[self.pos..end].try_into().ok()?);
        self.pos = end;
        Some(value)
    }

    /// Read a single byte.
    pub fn u8(&mut self) -> Option<u8> {
        let value = *self.data.get(self.pos)?;
        self.pos += 1;
        Some(value)
    }

    /// Read a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        let end = self.pos.checked_add(len)?;
        if end > self.data.len() {
            return None;
        }
        let out = &self.data[self.pos..end];
        self.pos = end;
        Some(out)
    }

    /// Read `n` raw bytes (no length prefix).
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.data.len() {
            return None;
        }
        let out = &self.data[self.pos..end];
        self.pos = end;
        Some(out)
    }

    /// The unread remainder of the input, without consuming it. Lets a
    /// decoder hand the tail to a nested prefix-decoder and then [`take`]
    /// the bytes it reports consumed.
    ///
    /// [`take`]: Reader::take
    pub fn rest(&self) -> &'a [u8] {
        &self.data[self.pos..]
    }

    /// Read a 32-byte hash.
    pub fn hash(&mut self) -> Option<Hash> {
        let end = self.pos.checked_add(32)?;
        if end > self.data.len() {
            return None;
        }
        let mut bytes = [0u8; 32];
        bytes.copy_from_slice(&self.data[self.pos..end]);
        self.pos = end;
        Some(Hash::from_bytes(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spitz_crypto::sha256;

    #[test]
    fn roundtrip_all_types() {
        let mut out = Vec::new();
        out.push(7u8);
        put_u32(&mut out, 42);
        put_u64(&mut out, u64::MAX);
        put_bytes(&mut out, b"hello");
        put_hash(&mut out, &sha256(b"h"));
        put_bytes(&mut out, b"");

        let mut r = Reader::new(&out);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32(), Some(42));
        assert_eq!(r.u64(), Some(u64::MAX));
        assert_eq!(r.bytes(), Some(b"hello".as_ref()));
        assert_eq!(r.hash(), Some(sha256(b"h")));
        assert_eq!(r.bytes(), Some(b"".as_ref()));
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_input_returns_none() {
        let mut out = Vec::new();
        put_bytes(&mut out, b"hello");
        let truncated = &out[..out.len() - 2];
        let mut r = Reader::new(truncated);
        assert_eq!(r.bytes(), None);

        let mut r = Reader::new(&[0u8; 3]);
        assert_eq!(r.u32(), None);
        assert_eq!(r.hash(), None);
        assert_eq!(r.u64(), None);
    }

    #[test]
    fn reader_tracks_position() {
        let mut out = Vec::new();
        put_u32(&mut out, 1);
        put_u32(&mut out, 2);
        let mut r = Reader::new(&out);
        assert_eq!(r.remaining(), 8);
        r.u32();
        assert_eq!(r.remaining(), 4);
        r.u32();
        assert!(r.is_exhausted());
        assert_eq!(r.u32(), None);
    }
}
