//! In-memory B+-tree.
//!
//! Spitz "uses a B+-tree for query processing" (Section 5): the tree maps
//! requested keys to the matched data cells and is efficient for both point
//! and range queries. The baseline system additionally materializes its
//! ledger blocks into B+-tree indexed views. This tree is a plain (non
//! Merkle) performance structure: sorted keys, split-on-overflow nodes, and
//! ordered range scans.

/// Maximum number of keys per node before it splits.
const ORDER: usize = 32;

#[derive(Debug, Clone)]
enum BNode<V> {
    Leaf {
        keys: Vec<Vec<u8>>,
        values: Vec<V>,
    },
    Internal {
        /// `separators[i]` is the smallest key reachable through
        /// `children[i + 1]`.
        separators: Vec<Vec<u8>>,
        children: Vec<BNode<V>>,
    },
}

/// What an insert into a subtree produced: possibly a split.
enum InsertResult<V> {
    /// No split; flag says whether a brand-new key was added.
    Done(bool),
    /// The node split; carries the separator key and the new right sibling.
    Split(Vec<u8>, BNode<V>, bool),
}

impl<V: Clone> BNode<V> {
    fn insert(&mut self, key: &[u8], value: V) -> InsertResult<V> {
        match self {
            BNode::Leaf { keys, values } => {
                let added = match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                    Ok(i) => {
                        values[i] = value;
                        false
                    }
                    Err(i) => {
                        keys.insert(i, key.to_vec());
                        values.insert(i, value);
                        true
                    }
                };
                if keys.len() > ORDER {
                    let mid = keys.len() / 2;
                    let right_keys = keys.split_off(mid);
                    let right_values = values.split_off(mid);
                    let separator = right_keys[0].clone();
                    InsertResult::Split(
                        separator,
                        BNode::Leaf {
                            keys: right_keys,
                            values: right_values,
                        },
                        added,
                    )
                } else {
                    InsertResult::Done(added)
                }
            }
            BNode::Internal {
                separators,
                children,
            } => {
                let idx = match separators.binary_search_by(|k| k.as_slice().cmp(key)) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                match children[idx].insert(key, value) {
                    InsertResult::Done(added) => InsertResult::Done(added),
                    InsertResult::Split(sep, right, added) => {
                        separators.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if separators.len() > ORDER {
                            let mid = separators.len() / 2;
                            let promoted = separators[mid].clone();
                            let right_separators = separators.split_off(mid + 1);
                            separators.pop();
                            let right_children = children.split_off(mid + 1);
                            InsertResult::Split(
                                promoted,
                                BNode::Internal {
                                    separators: right_separators,
                                    children: right_children,
                                },
                                added,
                            )
                        } else {
                            InsertResult::Done(added)
                        }
                    }
                }
            }
        }
    }

    fn get(&self, key: &[u8]) -> Option<&V> {
        match self {
            BNode::Leaf { keys, values } => keys
                .binary_search_by(|k| k.as_slice().cmp(key))
                .ok()
                .map(|i| &values[i]),
            BNode::Internal {
                separators,
                children,
            } => {
                let idx = match separators.binary_search_by(|k| k.as_slice().cmp(key)) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                children[idx].get(key)
            }
        }
    }

    fn range(&self, start: &[u8], end: &[u8], out: &mut Vec<(Vec<u8>, V)>) {
        match self {
            BNode::Leaf { keys, values } => {
                let from = keys.partition_point(|k| k.as_slice() < start);
                for i in from..keys.len() {
                    if keys[i].as_slice() >= end {
                        break;
                    }
                    out.push((keys[i].clone(), values[i].clone()));
                }
            }
            BNode::Internal {
                separators,
                children,
            } => {
                // Child i covers keys in [separators[i-1], separators[i]).
                let first = separators.partition_point(|k| k.as_slice() <= start);
                for (i, child) in children.iter().enumerate().skip(first) {
                    // Prune children whose smallest key is already past the
                    // end of the range.
                    if i > 0 && separators[i - 1].as_slice() >= end {
                        break;
                    }
                    child.range(start, end, out);
                }
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            BNode::Leaf { .. } => 1,
            BNode::Internal { children, .. } => 1 + children[0].depth(),
        }
    }
}

/// An in-memory B+-tree mapping byte-string keys to values.
#[derive(Debug, Clone)]
pub struct BPlusTree<V> {
    root: Option<BNode<V>>,
    len: usize,
}

impl<V: Clone> Default for BPlusTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone> BPlusTree<V> {
    /// Create an empty tree.
    pub fn new() -> Self {
        BPlusTree { root: None, len: 0 }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert or overwrite a key.
    pub fn insert(&mut self, key: impl AsRef<[u8]>, value: V) {
        let key = key.as_ref();
        let root = self.root.get_or_insert_with(|| BNode::Leaf {
            keys: Vec::new(),
            values: Vec::new(),
        });
        match root.insert(key, value) {
            InsertResult::Done(added) => {
                if added {
                    self.len += 1;
                }
            }
            InsertResult::Split(separator, right, added) => {
                let old_root = self.root.take().expect("root exists during split");
                self.root = Some(BNode::Internal {
                    separators: vec![separator],
                    children: vec![old_root, right],
                });
                if added {
                    self.len += 1;
                }
            }
        }
    }

    /// Point lookup.
    pub fn get(&self, key: impl AsRef<[u8]>) -> Option<&V> {
        self.root.as_ref()?.get(key.as_ref())
    }

    /// True when the key is present.
    pub fn contains_key(&self, key: impl AsRef<[u8]>) -> bool {
        self.get(key).is_some()
    }

    /// All entries with `start <= key < end` in key order.
    pub fn range(&self, start: &[u8], end: &[u8]) -> Vec<(Vec<u8>, V)> {
        let mut out = Vec::new();
        if start < end {
            if let Some(root) = &self.root {
                root.range(start, end, &mut out);
            }
        }
        out
    }

    /// Every entry in key order.
    pub fn scan_all(&self) -> Vec<(Vec<u8>, V)> {
        self.range(&[], &[0xffu8; 64])
    }

    /// Height of the tree (diagnostics / tests).
    pub fn depth(&self) -> usize {
        self.root.as_ref().map(|r| r.depth()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn key(i: u32) -> Vec<u8> {
        format!("{i:08}").into_bytes()
    }

    #[test]
    fn empty_tree() {
        let tree: BPlusTree<u32> = BPlusTree::new();
        assert!(tree.is_empty());
        assert_eq!(tree.get(b"x"), None);
        assert!(tree.range(b"a", b"z").is_empty());
        assert_eq!(tree.depth(), 0);
    }

    #[test]
    fn insert_get_many() {
        let mut tree = BPlusTree::new();
        let mut order: Vec<u32> = (0..5000).collect();
        order.shuffle(&mut StdRng::seed_from_u64(4));
        for &i in &order {
            tree.insert(key(i), i);
        }
        assert_eq!(tree.len(), 5000);
        for i in 0..5000 {
            assert_eq!(tree.get(key(i)), Some(&i), "key {i}");
        }
        assert_eq!(tree.get(b"99999999"), None);
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn overwrite_does_not_grow() {
        let mut tree = BPlusTree::new();
        tree.insert(b"k", 1);
        tree.insert(b"k", 2);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.get(b"k"), Some(&2));
    }

    #[test]
    fn range_scan_is_sorted_and_bounded() {
        let mut tree = BPlusTree::new();
        for i in 0..2000u32 {
            tree.insert(key(i), i);
        }
        let result = tree.range(&key(500), &key(700));
        assert_eq!(result.len(), 200);
        assert_eq!(result[0].1, 500);
        assert_eq!(result.last().unwrap().1, 699);
        assert!(result.windows(2).all(|w| w[0].0 < w[1].0));

        assert!(tree.range(&key(700), &key(500)).is_empty());
        assert_eq!(tree.range(&key(1999), &key(5000)).len(), 1);
        assert_eq!(tree.scan_all().len(), 2000);
    }

    #[test]
    fn range_with_sparse_keys() {
        let mut tree = BPlusTree::new();
        for i in (0..1000u32).step_by(7) {
            tree.insert(key(i), i);
        }
        let result = tree.range(&key(100), &key(200));
        for (_, v) in &result {
            assert!(*v >= 100 && *v < 200);
            assert_eq!(*v % 7, 0);
        }
        let expected = (100..200).filter(|i| i % 7 == 0).count();
        assert_eq!(result.len(), expected);
    }

    #[test]
    fn values_can_be_non_copy() {
        let mut tree: BPlusTree<Vec<String>> = BPlusTree::new();
        tree.insert(b"a", vec!["x".to_string()]);
        tree.insert(b"b", vec!["y".to_string(), "z".to_string()]);
        assert_eq!(tree.get(b"b").unwrap().len(), 2);
    }
}
