//! Merkle Bucket Tree (MBT).
//!
//! The authenticated structure used by Hyperledger Fabric's state database
//! and the third SIRI instance discussed by the paper. Keys are hashed into
//! a fixed number of buckets; each bucket stores its entries sorted by key
//! and is persisted as one content-addressed node; a fixed-fanout Merkle
//! tree over the bucket hashes provides the digest and the proofs.
//!
//! The bucket layout makes point updates cheap (rewrite one bucket plus a
//! short path) but, because buckets are ordered by *hash* rather than by
//! key, range queries must scan every bucket — the weakness the paper's
//! SIRI analysis attributes to hash-partitioned structures, and one of the
//! effects the `ablation_siri` benchmark shows.

use std::sync::Arc;

use spitz_crypto::{sha256, Hash};
use spitz_storage::{Chunk, ChunkKind, ChunkStore, StorageError};

use crate::codec::{put_bytes, put_u32, Reader};
use crate::proof::{hash_index_node, IndexProof, MultiProof};
use crate::siri::{SiriIndex, SiriKind};

/// Number of leaf buckets. Fixed for the lifetime of a tree (as in Fabric).
const NUM_BUCKETS: usize = 4096;
/// Fanout of the Merkle tree built over the buckets.
const TREE_FANOUT: usize = 16;

/// The Merkle Bucket Tree.
pub struct MerkleBucketTree {
    store: Arc<dyn ChunkStore>,
    /// `levels[0]` holds the bucket hashes (Hash::ZERO for an empty bucket);
    /// each higher level holds the hashes of internal nodes over
    /// `TREE_FANOUT` children of the level below; the last level has one
    /// entry — the root.
    levels: Vec<Vec<Hash>>,
    len: usize,
}

fn bucket_of(key: &[u8]) -> usize {
    (sha256(key).prefix_u64() % NUM_BUCKETS as u64) as usize
}

fn encode_bucket(entries: &[(Vec<u8>, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(0u8); // tag: bucket
    put_u32(&mut out, entries.len() as u32);
    for (k, v) in entries {
        put_bytes(&mut out, k);
        put_bytes(&mut out, v);
    }
    out
}

fn decode_bucket(data: &[u8]) -> Option<Vec<(Vec<u8>, Vec<u8>)>> {
    let mut r = Reader::new(data);
    if r.u8()? != 0 {
        return None;
    }
    let count = r.u32()? as usize;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let k = r.bytes()?.to_vec();
        let v = r.bytes()?.to_vec();
        entries.push((k, v));
    }
    r.is_exhausted().then_some(entries)
}

fn encode_internal(children: &[Hash]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + children.len() * 32);
    out.push(1u8); // tag: internal
    out.push(children.len() as u8);
    for child in children {
        out.extend_from_slice(child.as_bytes());
    }
    out
}

fn decode_internal(data: &[u8]) -> Option<Vec<Hash>> {
    let mut r = Reader::new(data);
    if r.u8()? != 1 {
        return None;
    }
    let count = r.u8()? as usize;
    let mut children = Vec::with_capacity(count);
    for _ in 0..count {
        children.push(r.hash()?);
    }
    r.is_exhausted().then_some(children)
}

/// Child node addresses of an encoded MBT node (empty for a bucket);
/// [`Hash::ZERO`] children denote empty subtrees that have no stored node
/// and are skipped. `None` when the payload decodes as neither node form.
pub(crate) fn node_children(payload: &[u8]) -> Option<Vec<Hash>> {
    match payload.first()? {
        0 => decode_bucket(payload).map(|_| Vec::new()),
        1 => decode_internal(payload)
            .map(|children| children.into_iter().filter(|h| *h != Hash::ZERO).collect()),
        _ => None,
    }
}

impl MerkleBucketTree {
    /// Create an empty tree writing its nodes into `store`.
    pub fn new(store: Arc<dyn ChunkStore>) -> Self {
        let mut tree = MerkleBucketTree {
            store,
            levels: Vec::new(),
            len: 0,
        };
        tree.rebuild_all_levels(vec![Hash::ZERO; NUM_BUCKETS]);
        tree
    }

    /// Open the tree at a historical root by walking the internal nodes down
    /// to the bucket hashes. Returns `None` when the root (or any referenced
    /// node) is missing from the store.
    pub fn open(store: Arc<dyn ChunkStore>, root: Hash) -> Option<Self> {
        if root.is_zero() {
            return Some(MerkleBucketTree::new(store));
        }
        // Collect hashes level by level, top down.
        let mut top_down: Vec<Vec<Hash>> = vec![vec![root]];
        loop {
            let current = top_down.last().expect("at least the root level");
            if current.len() == NUM_BUCKETS {
                break;
            }
            let mut next = Vec::with_capacity(current.len() * TREE_FANOUT);
            for hash in current {
                if hash.is_zero() {
                    next.extend(std::iter::repeat_n(Hash::ZERO, TREE_FANOUT));
                    continue;
                }
                let chunk = store.get_kind(hash, ChunkKind::IndexNode).ok()?;
                let children = decode_internal(chunk.data())?;
                next.extend(children);
            }
            top_down.push(next);
        }
        top_down.reverse();
        let mut len = 0usize;
        for bucket_hash in &top_down[0] {
            if bucket_hash.is_zero() {
                continue;
            }
            let chunk = store.get_kind(bucket_hash, ChunkKind::IndexNode).ok()?;
            len += decode_bucket(chunk.data())?.len();
        }
        Some(MerkleBucketTree {
            store,
            levels: top_down,
            len,
        })
    }

    fn rebuild_all_levels(&mut self, buckets: Vec<Hash>) {
        let mut levels = vec![buckets];
        while levels.last().expect("non-empty").len() > 1 {
            let below = levels.last().expect("non-empty");
            let mut level = Vec::with_capacity(below.len().div_ceil(TREE_FANOUT));
            for group in below.chunks(TREE_FANOUT) {
                // Only reached from `new()` with all-zero buckets, so no
                // store write can actually happen (all-zero groups hash to
                // zero without touching the store).
                level.push(
                    self.internal_hash(group)
                        .expect("empty tree writes no nodes"),
                );
            }
            levels.push(level);
        }
        self.levels = levels;
    }

    fn internal_hash(&self, children: &[Hash]) -> Result<Hash, StorageError> {
        if children.iter().all(|h| h.is_zero()) {
            return Ok(Hash::ZERO);
        }
        self.store
            .try_put(Chunk::new(ChunkKind::IndexNode, encode_internal(children)))
    }

    /// Recompute the internal-node path above `bucket_index` after the bucket
    /// hash changed.
    fn update_path(&mut self, bucket_index: usize) -> Result<(), StorageError> {
        let mut index = bucket_index;
        for level in 0..self.levels.len() - 1 {
            let group_index = index / TREE_FANOUT;
            let start = group_index * TREE_FANOUT;
            let end = (start + TREE_FANOUT).min(self.levels[level].len());
            let group: Vec<Hash> = self.levels[level][start..end].to_vec();
            let parent = self.internal_hash(&group)?;
            self.levels[level + 1][group_index] = parent;
            index = group_index;
        }
        Ok(())
    }

    fn load_bucket(&self, bucket_index: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        let hash = self.levels[0][bucket_index];
        if hash.is_zero() {
            return Vec::new();
        }
        self.store
            .get_kind(&hash, ChunkKind::IndexNode)
            .ok()
            .and_then(|chunk| decode_bucket(chunk.data()))
            .unwrap_or_default()
    }

    /// The proof path (internal node payloads root → leaf, then the bucket
    /// payload) for a bucket index. Returns `None` entries when the path
    /// runs into an all-empty subtree.
    fn proof_path(&self, bucket_index: usize) -> IndexProof {
        let mut proof = IndexProof::empty();
        // Walk top-down: the levels vector is bottom-up.
        let depth = self.levels.len();
        let mut indices = Vec::with_capacity(depth);
        let mut index = bucket_index;
        for _ in 0..depth {
            indices.push(index);
            index /= TREE_FANOUT;
        }
        // indices[i] is the index at level i; emit internal nodes from the
        // top (level depth-1) down to level 1, then the bucket at level 0.
        for level in (1..depth).rev() {
            let node_hash = self.levels[level][indices[level]];
            if node_hash.is_zero() {
                return proof;
            }
            if let Ok(chunk) = self.store.get_kind(&node_hash, ChunkKind::IndexNode) {
                proof.push_node(chunk.data().to_vec());
            }
        }
        let bucket_hash = self.levels[0][bucket_index];
        if !bucket_hash.is_zero() {
            if let Ok(chunk) = self.store.get_kind(&bucket_hash, ChunkKind::IndexNode) {
                proof.push_node(chunk.data().to_vec());
            }
        }
        proof
    }

    /// Verify a point-lookup proof: follow the fixed bucket path through the
    /// revealed internal nodes and check the bucket contents.
    pub fn verify_proof(root: Hash, key: &[u8], value: Option<&[u8]>, proof: &IndexProof) -> bool {
        if root.is_zero() {
            return value.is_none();
        }
        if proof.nodes.is_empty() {
            return false;
        }
        if hash_index_node(&proof.nodes[0]) != root {
            return false;
        }
        // Recompute the per-level child indices for this key.
        let child_indices = child_indices_for(bucket_of(key));

        let mut node_iter = proof.nodes.iter();
        let mut current = node_iter.next().expect("checked non-empty").clone();
        for child_index in child_indices {
            let Some(children) = decode_internal(&current) else {
                return false;
            };
            let Some(child_hash) = children.get(child_index).copied() else {
                return false;
            };
            if child_hash.is_zero() {
                // The whole subtree (hence the bucket) is empty: only an
                // absence claim can be valid, and no further nodes may follow.
                return value.is_none() && node_iter.next().is_none();
            }
            let Some(next) = node_iter.next() else {
                return false;
            };
            if hash_index_node(next) != child_hash {
                return false;
            }
            current = next.clone();
        }
        let Some(entries) = decode_bucket(&current) else {
            return false;
        };
        let found = entries.iter().find(|(k, _)| k.as_slice() == key);
        match (found, value) {
            (Some((_, v)), Some(expected)) => v.as_slice() == expected,
            (None, None) => true,
            _ => false,
        }
    }

    /// Verify a **complete** range proof. MBT buckets partition by *hash*,
    /// not by key, so any bucket can hold part of any range — a complete
    /// proof therefore reveals the entire bucket tree (the hash-partitioned
    /// weakness the paper's SIRI analysis calls out). The verifier re-walks
    /// the revealed internal nodes from the root, failing if any non-empty
    /// subtree was withheld, and checks that the claimed entries are exactly
    /// the revealed buckets' contents restricted to `start <= key < end`.
    pub fn verify_range_proof(
        root: Hash,
        start: &[u8],
        end: &[u8],
        entries: &[(Vec<u8>, Vec<u8>)],
        proof: &IndexProof,
    ) -> bool {
        if root.is_zero() || start >= end {
            return entries.is_empty();
        }
        let nodes: std::collections::HashMap<Hash, &[u8]> = proof
            .nodes
            .iter()
            .map(|n| (hash_index_node(n), n.as_slice()))
            .collect();
        let mut all = Vec::new();
        if !collect_buckets(&nodes, &root, &mut all) {
            return false;
        }
        let mut in_range: Vec<(Vec<u8>, Vec<u8>)> = all
            .into_iter()
            .filter(|(k, _)| k.as_slice() >= start && k.as_slice() < end)
            .collect();
        in_range.sort_by(|a, b| a.0.cmp(&b.0));
        in_range == entries
    }
}

/// Per-level child indices for a bucket, from the top level downwards —
/// the fixed descent [`MerkleBucketTree::verify_proof`] and the proof
/// builders share.
fn child_indices_for(bucket_index: usize) -> Vec<usize> {
    let mut level_count = 0usize;
    let mut size = NUM_BUCKETS;
    while size > 1 {
        size = size.div_ceil(TREE_FANOUT);
        level_count += 1;
    }
    let mut child_indices = Vec::with_capacity(level_count);
    let mut index = bucket_index;
    for _ in 0..level_count {
        child_indices.push(index % TREE_FANOUT);
        index /= TREE_FANOUT;
    }
    child_indices.reverse();
    child_indices
}

/// Build a point-lookup proof reading node payloads through `fetch` — the
/// same top-down bucket path as [`MerkleBucketTree::get_with_proof`], so
/// proof bytes are identical whether built from the live tree or from the
/// server's proof-node cache.
pub(crate) fn build_proof_with(
    fetch: &dyn Fn(&Hash) -> Option<Vec<u8>>,
    root: Hash,
    key: &[u8],
) -> Option<(Option<Vec<u8>>, IndexProof)> {
    let mut proof = IndexProof::empty();
    if root.is_zero() {
        return Some((None, proof));
    }
    let mut current = fetch(&root)?;
    proof.push_node(current.clone());
    for child_index in child_indices_for(bucket_of(key)) {
        let children = decode_internal(&current)?;
        let child = children.get(child_index).copied()?;
        if child.is_zero() {
            // Empty subtree: the bucket does not exist, proven absence.
            return Some((None, proof));
        }
        current = fetch(&child)?;
        proof.push_node(current.clone());
    }
    let entries = decode_bucket(&current)?;
    let value = entries
        .iter()
        .find(|(k, _)| k.as_slice() == key)
        .map(|(_, v)| v.clone());
    Some((value, proof))
}

/// Verify a batched multi-key proof: replay each key's fixed bucket path
/// over the revealed node set, requiring every revealed node to be consumed
/// by at least one walk (spliced-in payloads are rejected).
pub(crate) fn verify_multi_proof(
    root: Hash,
    items: &[(Vec<u8>, Option<Vec<u8>>)],
    proof: &MultiProof,
) -> bool {
    if items.is_empty() {
        return proof.is_empty();
    }
    if root.is_zero() {
        return items.iter().all(|(_, v)| v.is_none()) && proof.is_empty();
    }
    let map: std::collections::HashMap<Hash, (usize, &[u8])> = proof
        .nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (hash_index_node(n), (i, n.as_slice())))
        .collect();
    let mut used = vec![false; proof.nodes.len()];
    for (key, claim) in items {
        let Some(&(root_idx, mut current)) = map.get(&root) else {
            return false;
        };
        used[root_idx] = true;
        let mut pruned = false;
        for child_index in child_indices_for(bucket_of(key)) {
            let Some(children) = decode_internal(current) else {
                return false;
            };
            let Some(child) = children.get(child_index).copied() else {
                return false;
            };
            if child.is_zero() {
                // Empty subtree: only an absence claim can be valid.
                if claim.is_some() {
                    return false;
                }
                pruned = true;
                break;
            }
            let Some(&(idx, payload)) = map.get(&child) else {
                return false;
            };
            used[idx] = true;
            current = payload;
        }
        if pruned {
            continue;
        }
        let Some(entries) = decode_bucket(current) else {
            return false;
        };
        let found = entries.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        if found != claim.as_ref() {
            return false;
        }
    }
    used.iter().all(|&u| u)
}

/// Walk the revealed bucket tree from `hash`, collecting every bucket
/// entry. `false` when a referenced non-empty node was not revealed or a
/// payload fails to decode.
fn collect_buckets(
    nodes: &std::collections::HashMap<Hash, &[u8]>,
    hash: &Hash,
    out: &mut Vec<(Vec<u8>, Vec<u8>)>,
) -> bool {
    let Some(payload) = nodes.get(hash) else {
        return false;
    };
    match payload.first() {
        Some(1) => {
            let Some(children) = decode_internal(payload) else {
                return false;
            };
            children
                .iter()
                .filter(|c| !c.is_zero())
                .all(|c| collect_buckets(nodes, c, out))
        }
        Some(0) => {
            let Some(entries) = decode_bucket(payload) else {
                return false;
            };
            out.extend(entries);
            true
        }
        _ => false,
    }
}

impl SiriIndex for MerkleBucketTree {
    fn kind(&self) -> SiriKind {
        SiriKind::MerkleBucketTree
    }

    fn root(&self) -> Hash {
        *self
            .levels
            .last()
            .and_then(|level| level.first())
            .unwrap_or(&Hash::ZERO)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn try_insert(&mut self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StorageError> {
        let bucket_index = bucket_of(&key);
        let mut entries = self.load_bucket(bucket_index);
        let inserted_new = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key.as_slice()))
        {
            Ok(i) => {
                entries[i].1 = value;
                false
            }
            Err(i) => {
                entries.insert(i, (key, value));
                true
            }
        };
        // Persist the bucket before mutating any in-memory level, so a
        // failed put leaves the tree at its previous root. A failure inside
        // `update_path` can leave the cached levels stale; callers recover
        // by checking out the previous root (the ledger's rollback path).
        let hash = self
            .store
            .try_put(Chunk::new(ChunkKind::IndexNode, encode_bucket(&entries)))?;
        self.levels[0][bucket_index] = hash;
        self.update_path(bucket_index)?;
        if inserted_new {
            self.len += 1;
        }
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let entries = self.load_bucket(bucket_of(key));
        entries
            .iter()
            .find(|(k, _)| k.as_slice() == key)
            .map(|(_, v)| v.clone())
    }

    fn get_with_proof(&self, key: &[u8]) -> (Option<Vec<u8>>, IndexProof) {
        let value = self.get(key);
        let proof = self.proof_path(bucket_of(key));
        (value, proof)
    }

    fn range(&self, start: &[u8], end: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        if start >= end {
            return out;
        }
        for bucket_index in 0..NUM_BUCKETS {
            for (k, v) in self.load_bucket(bucket_index) {
                if k.as_slice() >= start && k.as_slice() < end {
                    out.push((k, v));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn range_with_proof(&self, start: &[u8], end: &[u8]) -> (Vec<(Vec<u8>, Vec<u8>)>, IndexProof) {
        let entries = self.range(start, end);
        let mut proof = IndexProof::empty();
        if self.root().is_zero() || start >= end {
            return (entries, proof);
        }
        // Completeness over hash-partitioned buckets requires revealing the
        // whole tree: every non-empty internal node (top-down) and bucket.
        let mut seen_nodes = std::collections::HashSet::new();
        let depth = self.levels.len();
        for level in (0..depth).rev() {
            for hash in &self.levels[level] {
                if !hash.is_zero() && seen_nodes.insert(*hash) {
                    if let Ok(chunk) = self.store.get_kind(hash, ChunkKind::IndexNode) {
                        proof.push_node(chunk.data().to_vec());
                    }
                }
            }
        }
        (entries, proof)
    }

    fn checkout(&self, root: Hash) -> Option<Box<dyn SiriIndex>> {
        MerkleBucketTree::open(Arc::clone(&self.store), root)
            .map(|t| Box::new(t) as Box<dyn SiriIndex>)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use spitz_storage::InMemoryChunkStore;

    fn new_tree() -> MerkleBucketTree {
        MerkleBucketTree::new(InMemoryChunkStore::shared())
    }

    fn key(i: u32) -> Vec<u8> {
        format!("key-{i:06}").into_bytes()
    }

    fn value(i: u32) -> Vec<u8> {
        format!("value-{i}").into_bytes()
    }

    #[test]
    fn empty_tree_has_zero_root() {
        let tree = new_tree();
        assert_eq!(tree.root(), Hash::ZERO);
        assert!(tree.is_empty());
        assert_eq!(tree.get(b"x"), None);
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut tree = new_tree();
        for i in 0..400u32 {
            tree.insert(key(i), value(i));
        }
        assert_eq!(tree.len(), 400);
        for i in 0..400u32 {
            assert_eq!(tree.get(&key(i)), Some(value(i)), "key {i}");
        }
        assert_eq!(tree.get(b"missing"), None);
    }

    #[test]
    fn overwrite_keeps_len() {
        let mut tree = new_tree();
        tree.insert(b"k".to_vec(), b"v1".to_vec());
        tree.insert(b"k".to_vec(), b"v2".to_vec());
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.get(b"k"), Some(b"v2".to_vec()));
    }

    #[test]
    fn structural_invariance_under_insertion_order() {
        let keys: Vec<u32> = (0..300).collect();
        let mut t1 = new_tree();
        for &i in &keys {
            t1.insert(key(i), value(i));
        }
        let mut shuffled = keys.clone();
        shuffled.shuffle(&mut StdRng::seed_from_u64(9));
        let mut t2 = new_tree();
        for &i in &shuffled {
            t2.insert(key(i), value(i));
        }
        assert_eq!(t1.root(), t2.root());
    }

    #[test]
    fn proofs_verify_and_detect_tampering() {
        let mut tree = new_tree();
        for i in 0..200u32 {
            tree.insert(key(i), value(i));
        }
        let root = tree.root();
        let (v, proof) = tree.get_with_proof(&key(42));
        assert_eq!(v, Some(value(42)));
        assert!(MerkleBucketTree::verify_proof(
            root,
            &key(42),
            v.as_deref(),
            &proof
        ));
        assert!(!MerkleBucketTree::verify_proof(
            root,
            &key(42),
            Some(b"forged"),
            &proof
        ));
        assert!(!MerkleBucketTree::verify_proof(
            root,
            &key(42),
            None,
            &proof
        ));
        assert!(!MerkleBucketTree::verify_proof(
            sha256(b"x"),
            &key(42),
            v.as_deref(),
            &proof
        ));
    }

    #[test]
    fn absence_proofs_for_missing_and_empty_buckets() {
        let mut tree = new_tree();
        for i in 0..50u32 {
            tree.insert(key(i), value(i));
        }
        let root = tree.root();
        // A key that is absent (its bucket may or may not be empty).
        let (v, proof) = tree.get_with_proof(b"definitely-not-there");
        assert!(v.is_none());
        assert!(MerkleBucketTree::verify_proof(
            root,
            b"definitely-not-there",
            None,
            &proof
        ));
        assert!(!MerkleBucketTree::verify_proof(
            root,
            b"definitely-not-there",
            Some(b"x"),
            &proof
        ));
    }

    #[test]
    fn range_scans_return_sorted_results_with_proofs() {
        let mut tree = new_tree();
        for i in 0..300u32 {
            tree.insert(key(i), value(i));
        }
        let (start, end) = (key(100), key(120));
        let (entries, proof) = tree.range_with_proof(&start, &end);
        assert_eq!(entries.len(), 20);
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(MerkleBucketTree::verify_range_proof(
            tree.root(),
            &start,
            &end,
            &entries,
            &proof
        ));

        let mut forged = entries.clone();
        forged[0].1 = b"forged".to_vec();
        assert!(!MerkleBucketTree::verify_range_proof(
            tree.root(),
            &start,
            &end,
            &forged,
            &proof
        ));
        // Omitting an entry breaks verification (completeness).
        let mut truncated = entries.clone();
        truncated.pop();
        assert!(!MerkleBucketTree::verify_range_proof(
            tree.root(),
            &start,
            &end,
            &truncated,
            &proof
        ));
    }

    #[test]
    fn checkout_restores_old_version() {
        let store = InMemoryChunkStore::shared();
        let mut tree = MerkleBucketTree::new(Arc::clone(&store) as Arc<dyn ChunkStore>);
        for i in 0..50u32 {
            tree.insert(key(i), value(i));
        }
        let root_v1 = tree.root();
        tree.insert(b"extra".to_vec(), b"x".to_vec());
        assert_ne!(tree.root(), root_v1);

        let old = tree.checkout(root_v1).unwrap();
        assert_eq!(old.len(), 50);
        assert_eq!(old.get(b"extra"), None);
        assert_eq!(old.get(&key(7)), Some(value(7)));
    }
}
