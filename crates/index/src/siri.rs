//! The SIRI (Structurally Invariant and Reusable Index) abstraction.
//!
//! The paper (and the companion SIGMOD'20 analysis it cites) groups the
//! Merkle Patricia Trie, the Merkle Bucket Tree and the Pattern-Oriented-
//! Split Tree into one family: indexes whose structure is a pure function of
//! their contents (not of the insertion order), whose nodes are content
//! addressed so that unchanged subtrees are physically shared between
//! versions, and which can produce Merkle proofs for their lookups. The
//! Spitz ledger stores one such index instance per block; node sharing
//! between consecutive instances is what keeps the ledger compact.
//!
//! [`SiriIndex`] captures the operations the rest of the system needs.
//! Proof *verification* is a static concern of each concrete index (clients
//! verify without holding the server's index), exposed uniformly through
//! [`verify_proof`].

use spitz_crypto::Hash;

use crate::mbt::MerkleBucketTree;
use crate::mpt::MerklePatriciaTrie;
use crate::pos_tree::PosTree;
use crate::proof::IndexProof;

/// Identifies a concrete SIRI implementation, e.g. inside proofs handed to
/// clients so they know which verification routine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiriKind {
    /// Pattern-Oriented-Split Tree (ForkBase / Spitz default).
    PosTree,
    /// Merkle Patricia Trie (Ethereum).
    MerklePatriciaTrie,
    /// Merkle Bucket Tree (Hyperledger Fabric).
    MerkleBucketTree,
}

impl SiriKind {
    /// Human-readable name used in benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            SiriKind::PosTree => "pos-tree",
            SiriKind::MerklePatriciaTrie => "mpt",
            SiriKind::MerkleBucketTree => "mbt",
        }
    }

    /// Stable one-byte tag used in durable encodings (digest records, shard
    /// membership records). New kinds must append tags, never renumber.
    pub fn tag(self) -> u8 {
        match self {
            SiriKind::PosTree => 0,
            SiriKind::MerklePatriciaTrie => 1,
            SiriKind::MerkleBucketTree => 2,
        }
    }

    /// Inverse of [`SiriKind::tag`].
    pub fn from_tag(tag: u8) -> Option<SiriKind> {
        match tag {
            0 => Some(SiriKind::PosTree),
            1 => Some(SiriKind::MerklePatriciaTrie),
            2 => Some(SiriKind::MerkleBucketTree),
            _ => None,
        }
    }
}

/// A key/value result set in key order, as returned by range scans.
pub type IndexEntries = Vec<(Vec<u8>, Vec<u8>)>;

/// Operations common to all structurally invariant, reusable, authenticated
/// indexes.
pub trait SiriIndex: Send + Sync {
    /// Which concrete structure this is.
    fn kind(&self) -> SiriKind;

    /// Current root digest. [`Hash::ZERO`] denotes an empty index.
    fn root(&self) -> Hash;

    /// Number of key/value entries.
    fn len(&self) -> usize;

    /// True when the index holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert or overwrite a key/value pair.
    fn insert(&mut self, key: Vec<u8>, value: Vec<u8>);

    /// Point lookup.
    fn get(&self, key: &[u8]) -> Option<Vec<u8>>;

    /// Point lookup returning a Merkle proof for the result (present or
    /// absent).
    fn get_with_proof(&self, key: &[u8]) -> (Option<Vec<u8>>, IndexProof);

    /// All entries with `start <= key < end`, in key order.
    fn range(&self, start: &[u8], end: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)>;

    /// Range scan returning one combined proof that covers every returned
    /// entry. For the unified Spitz ledger this is the operation that lets
    /// proofs "ride along" the scan (Section 6.2.2 of the paper).
    fn range_with_proof(&self, start: &[u8], end: &[u8]) -> (IndexEntries, IndexProof);

    /// Re-open the index at a historical root (a previous block's instance).
    /// Returns `None` if the root is unknown to the backing store.
    fn checkout(&self, root: Hash) -> Option<Box<dyn SiriIndex>>;
}

/// Verify a point-lookup proof produced by an index of the given kind.
///
/// `value` is `Some` for a membership proof and `None` for an absence proof.
pub fn verify_proof(
    kind: SiriKind,
    root: Hash,
    key: &[u8],
    value: Option<&[u8]>,
    proof: &IndexProof,
) -> bool {
    match kind {
        SiriKind::PosTree => PosTree::verify_proof(root, key, value, proof),
        SiriKind::MerklePatriciaTrie => MerklePatriciaTrie::verify_proof(root, key, value, proof),
        SiriKind::MerkleBucketTree => MerkleBucketTree::verify_proof(root, key, value, proof),
    }
}

/// Verify a range proof produced by an index of the given kind: every
/// returned entry must be covered by the revealed nodes and the revealed
/// nodes must chain to the trusted root.
pub fn verify_range_proof(
    kind: SiriKind,
    root: Hash,
    entries: &[(Vec<u8>, Vec<u8>)],
    proof: &IndexProof,
) -> bool {
    match kind {
        SiriKind::PosTree => PosTree::verify_range_proof(root, entries, proof),
        SiriKind::MerklePatriciaTrie => {
            MerklePatriciaTrie::verify_range_proof(root, entries, proof)
        }
        SiriKind::MerkleBucketTree => MerkleBucketTree::verify_range_proof(root, entries, proof),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names() {
        assert_eq!(SiriKind::PosTree.name(), "pos-tree");
        assert_eq!(SiriKind::MerklePatriciaTrie.name(), "mpt");
        assert_eq!(SiriKind::MerkleBucketTree.name(), "mbt");
    }
}
