//! The SIRI (Structurally Invariant and Reusable Index) abstraction.
//!
//! The paper (and the companion SIGMOD'20 analysis it cites) groups the
//! Merkle Patricia Trie, the Merkle Bucket Tree and the Pattern-Oriented-
//! Split Tree into one family: indexes whose structure is a pure function of
//! their contents (not of the insertion order), whose nodes are content
//! addressed so that unchanged subtrees are physically shared between
//! versions, and which can produce Merkle proofs for their lookups. The
//! Spitz ledger stores one such index instance per block; node sharing
//! between consecutive instances is what keeps the ledger compact.
//!
//! [`SiriIndex`] captures the operations the rest of the system needs.
//! Proof *verification* is a static concern of each concrete index (clients
//! verify without holding the server's index), exposed uniformly through
//! [`verify_proof`].

use std::collections::HashSet;
use std::sync::Arc;

use spitz_crypto::Hash;
use spitz_storage::chunk::ChunkKind;
use spitz_storage::{ChunkStore, StorageError};

use crate::mbt::MerkleBucketTree;
use crate::mpt::MerklePatriciaTrie;
use crate::pos_tree::PosTree;
use crate::proof::{hash_index_node, IndexProof, MultiProof};

/// Identifies a concrete SIRI implementation, e.g. inside proofs handed to
/// clients so they know which verification routine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiriKind {
    /// Pattern-Oriented-Split Tree (ForkBase / Spitz default).
    PosTree,
    /// Merkle Patricia Trie (Ethereum).
    MerklePatriciaTrie,
    /// Merkle Bucket Tree (Hyperledger Fabric).
    MerkleBucketTree,
}

impl SiriKind {
    /// Human-readable name used in benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            SiriKind::PosTree => "pos-tree",
            SiriKind::MerklePatriciaTrie => "mpt",
            SiriKind::MerkleBucketTree => "mbt",
        }
    }

    /// Stable one-byte tag used in durable encodings (digest records, shard
    /// membership records). New kinds must append tags, never renumber.
    pub fn tag(self) -> u8 {
        match self {
            SiriKind::PosTree => 0,
            SiriKind::MerklePatriciaTrie => 1,
            SiriKind::MerkleBucketTree => 2,
        }
    }

    /// Inverse of [`SiriKind::tag`].
    pub fn from_tag(tag: u8) -> Option<SiriKind> {
        match tag {
            0 => Some(SiriKind::PosTree),
            1 => Some(SiriKind::MerklePatriciaTrie),
            2 => Some(SiriKind::MerkleBucketTree),
            _ => None,
        }
    }
}

/// A key/value result set in key order, as returned by range scans.
pub type IndexEntries = Vec<(Vec<u8>, Vec<u8>)>;

/// Operations common to all structurally invariant, reusable, authenticated
/// indexes.
pub trait SiriIndex: Send + Sync {
    /// Which concrete structure this is.
    fn kind(&self) -> SiriKind;

    /// Current root digest. [`Hash::ZERO`] denotes an empty index.
    fn root(&self) -> Hash;

    /// Number of key/value entries.
    fn len(&self) -> usize;

    /// True when the index holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert or overwrite a key/value pair, surfacing storage failures
    /// (disk full while persisting an index node) as a [`StorageError`].
    /// On an error the index root is left unchanged; partially written
    /// nodes are unreferenced content-addressed chunks, reclaimed by
    /// segment GC like any other orphan.
    fn try_insert(&mut self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StorageError>;

    /// Insert or overwrite a key/value pair. Panics on a storage failure;
    /// fallible callers (the ledger's commit path) use
    /// [`SiriIndex::try_insert`].
    fn insert(&mut self, key: Vec<u8>, value: Vec<u8>) {
        self.try_insert(key, value)
            .expect("persisting an index node failed; use try_insert to handle it")
    }

    /// Point lookup.
    fn get(&self, key: &[u8]) -> Option<Vec<u8>>;

    /// Point lookup returning a Merkle proof for the result (present or
    /// absent).
    fn get_with_proof(&self, key: &[u8]) -> (Option<Vec<u8>>, IndexProof);

    /// Batched point lookups returning one [`MultiProof`] covering every
    /// key against the current root. The default implementation proves each
    /// key independently and de-duplicates the revealed nodes (shared upper
    /// nodes appear once); the MPT overrides it with a compact trie-shaped
    /// encoding. Values are returned in input-key order.
    fn multi_get_with_proof(&self, keys: &[Vec<u8>]) -> (Vec<Option<Vec<u8>>>, MultiProof) {
        let mut values = Vec::with_capacity(keys.len());
        let mut nodes: Vec<Vec<u8>> = Vec::new();
        let mut seen: HashSet<Hash> = HashSet::new();
        for key in keys {
            let (value, proof) = self.get_with_proof(key);
            values.push(value);
            for node in proof.nodes {
                if seen.insert(hash_index_node(&node)) {
                    nodes.push(node);
                }
            }
        }
        (values, MultiProof { nodes })
    }

    /// All entries with `start <= key < end`, in key order.
    fn range(&self, start: &[u8], end: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)>;

    /// Range scan returning one combined proof that covers every returned
    /// entry. For the unified Spitz ledger this is the operation that lets
    /// proofs "ride along" the scan (Section 6.2.2 of the paper).
    fn range_with_proof(&self, start: &[u8], end: &[u8]) -> (IndexEntries, IndexProof);

    /// Re-open the index at a historical root (a previous block's instance).
    /// Returns `None` if the root is unknown to the backing store.
    fn checkout(&self, root: Hash) -> Option<Box<dyn SiriIndex>>;
}

/// Verify a point-lookup proof produced by an index of the given kind.
///
/// `value` is `Some` for a membership proof and `None` for an absence proof.
pub fn verify_proof(
    kind: SiriKind,
    root: Hash,
    key: &[u8],
    value: Option<&[u8]>,
    proof: &IndexProof,
) -> bool {
    match kind {
        SiriKind::PosTree => PosTree::verify_proof(root, key, value, proof),
        SiriKind::MerklePatriciaTrie => MerklePatriciaTrie::verify_proof(root, key, value, proof),
        SiriKind::MerkleBucketTree => MerkleBucketTree::verify_proof(root, key, value, proof),
    }
}

/// Verify a batched multi-key proof produced by
/// [`SiriIndex::multi_get_with_proof`]: every `(key, claimed value)` pair
/// must check out against the trusted root, and every node the proof
/// carries must be consumed by some key's walk (splices are rejected).
pub fn verify_multi_proof(
    kind: SiriKind,
    root: Hash,
    items: &[(Vec<u8>, Option<Vec<u8>>)],
    proof: &MultiProof,
) -> bool {
    match kind {
        SiriKind::PosTree => crate::pos_tree::verify_multi_proof(root, items, proof),
        SiriKind::MerklePatriciaTrie => MerklePatriciaTrie::verify_multi_proof(root, items, proof),
        SiriKind::MerkleBucketTree => crate::mbt::verify_multi_proof(root, items, proof),
    }
}

/// The chunk kind an index of `kind` stores its nodes under. MPT nodes use
/// the commitment-addressed [`ChunkKind::MptNode`]; the other SIRI
/// structures use plain payload-hashed [`ChunkKind::IndexNode`] chunks.
pub fn node_chunk_kind(kind: SiriKind) -> ChunkKind {
    match kind {
        SiriKind::MerklePatriciaTrie => ChunkKind::MptNode,
        SiriKind::PosTree | SiriKind::MerkleBucketTree => ChunkKind::IndexNode,
    }
}

/// Build a point-lookup proof for `key` against `root` reading node
/// payloads through `fetch` instead of an index instance.
///
/// This is the *same* code path [`SiriIndex::get_with_proof`] uses, so the
/// produced proof is byte-identical to an in-process proof for the same
/// root — the invariant the server's proof-node cache (and the
/// remote-equals-local tests) rely on. Returns `None` when a payload on the
/// path cannot be resolved; callers fall back to the full read path.
///
/// `memo` optionally caches MPT branch subtree folds across calls (see
/// [`crate::mpt::BranchMemo`]); it is a pure accelerator — proofs are
/// byte-identical with or without it — and is ignored by the other kinds.
pub fn prove_from_nodes(
    kind: SiriKind,
    root: Hash,
    key: &[u8],
    fetch: &dyn Fn(&Hash) -> Option<Vec<u8>>,
    memo: Option<&crate::mpt::BranchMemo>,
) -> Option<(Option<Vec<u8>>, IndexProof)> {
    match kind {
        SiriKind::PosTree => crate::pos_tree::build_proof_with(fetch, root, key),
        SiriKind::MerklePatriciaTrie => crate::mpt::build_proof_with(fetch, root, key, memo),
        SiriKind::MerkleBucketTree => crate::mbt::build_proof_with(fetch, root, key),
    }
}

/// Batched sibling of [`prove_from_nodes`], byte-identical to
/// [`SiriIndex::multi_get_with_proof`] for the same root and keys.
pub fn prove_multi_from_nodes(
    kind: SiriKind,
    root: Hash,
    keys: &[Vec<u8>],
    fetch: &dyn Fn(&Hash) -> Option<Vec<u8>>,
    memo: Option<&crate::mpt::BranchMemo>,
) -> Option<(Vec<Option<Vec<u8>>>, MultiProof)> {
    match kind {
        SiriKind::MerklePatriciaTrie => crate::mpt::build_multi_with(fetch, root, keys, memo),
        SiriKind::PosTree | SiriKind::MerkleBucketTree => {
            // Mirror the trait's default implementation exactly: per-key
            // proofs de-duplicated in first-use order.
            let mut values = Vec::with_capacity(keys.len());
            let mut nodes: Vec<Vec<u8>> = Vec::new();
            let mut seen: HashSet<Hash> = HashSet::new();
            for key in keys {
                let (value, proof) = prove_from_nodes(kind, root, key, fetch, None)?;
                values.push(value);
                for node in proof.nodes {
                    if seen.insert(hash_index_node(&node)) {
                        nodes.push(node);
                    }
                }
            }
            Some((values, MultiProof { nodes }))
        }
    }
}

/// Verify a **complete** range proof produced by an index of the given
/// kind: the claimed entries must be *exactly* the contiguous set of
/// entries with `start <= key < end` under the trusted root — nothing
/// forged (every entry chains to the root) and nothing omitted (the
/// verifier re-walks the revealed nodes and fails if any subtree that
/// could overlap the range was withheld). The boundary keys are part of
/// the proof statement, so a server cannot silently narrow the range.
pub fn verify_range_proof(
    kind: SiriKind,
    root: Hash,
    start: &[u8],
    end: &[u8],
    entries: &[(Vec<u8>, Vec<u8>)],
    proof: &IndexProof,
) -> bool {
    match kind {
        SiriKind::PosTree => PosTree::verify_range_proof(root, start, end, entries, proof),
        SiriKind::MerklePatriciaTrie => {
            MerklePatriciaTrie::verify_range_proof(root, start, end, entries, proof)
        }
        SiriKind::MerkleBucketTree => {
            MerkleBucketTree::verify_range_proof(root, start, end, entries, proof)
        }
    }
}

/// The chunk addresses of an index node's direct children.
///
/// `payload` is the raw payload of an `IndexNode` chunk. The byte tags of
/// the three SIRI encodings overlap (e.g. a Pos-Tree leaf and an MPT leaf
/// both start with `0`), so the caller must pass the kind the subtree was
/// built with; decoding under the wrong kind fails or yields nonsense.
/// Returns `None` when the payload does not decode as a node of `kind`.
pub fn node_children(kind: SiriKind, payload: &[u8]) -> Option<Vec<Hash>> {
    match kind {
        SiriKind::PosTree => crate::pos_tree::node_children(payload),
        SiriKind::MerklePatriciaTrie => crate::mpt::node_children(payload),
        SiriKind::MerkleBucketTree => crate::mbt::node_children(payload),
    }
}

/// Walk an index of `kind` downward from `root`, inserting the chunk
/// address of every reachable node into `live`.
///
/// Nodes already in `live` are not re-walked, so marking many historical
/// roots costs only the *unshared* suffix of each version (structural
/// sharing is the point of a SIRI). This is the mark phase of the storage
/// sweep: a missing or undecodable node is an error — compacting with an
/// incomplete live set would delete reachable data — so the caller must
/// abort on `Err`, never treat it as "nothing reachable".
pub fn collect_reachable(
    store: &Arc<dyn ChunkStore>,
    kind: SiriKind,
    root: Hash,
    live: &mut HashSet<Hash>,
) -> Result<(), StorageError> {
    let mut stack = vec![root];
    while let Some(address) = stack.pop() {
        if address == Hash::ZERO || !live.insert(address) {
            continue;
        }
        let chunk = store.get_kind(&address, node_chunk_kind(kind))?;
        let children =
            node_children(kind, chunk.data()).ok_or(StorageError::CorruptChunk(address))?;
        stack.extend(children);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spitz_storage::InMemoryChunkStore;

    #[test]
    fn collect_reachable_marks_every_node_and_shares_subtrees() {
        for kind in [
            SiriKind::PosTree,
            SiriKind::MerklePatriciaTrie,
            SiriKind::MerkleBucketTree,
        ] {
            let store: Arc<dyn ChunkStore> = Arc::new(InMemoryChunkStore::new());
            let mut index: Box<dyn SiriIndex> = match kind {
                SiriKind::PosTree => Box::new(PosTree::new(Arc::clone(&store))),
                SiriKind::MerklePatriciaTrie => {
                    Box::new(MerklePatriciaTrie::new(Arc::clone(&store)))
                }
                SiriKind::MerkleBucketTree => Box::new(MerkleBucketTree::new(Arc::clone(&store))),
            };
            for i in 0..100u32 {
                index.insert(
                    format!("key-{i:04}").into_bytes(),
                    format!("value-{i}").into_bytes(),
                );
            }
            let old_root = index.root();
            let mut old_live = HashSet::new();
            collect_reachable(&store, kind, old_root, &mut old_live).unwrap();
            assert!(!old_live.is_empty(), "{kind:?}");

            // A newer version shares unchanged subtrees with the old one.
            index.insert(b"key-0000".to_vec(), b"changed".to_vec());
            let mut both = HashSet::new();
            collect_reachable(&store, kind, index.root(), &mut both).unwrap();
            collect_reachable(&store, kind, old_root, &mut both).unwrap();
            assert!(both.len() < 2 * old_live.len(), "{kind:?}: no sharing?");

            // Every marked node must actually exist under the kind's chunk
            // kind (MptNode for the MPT, IndexNode otherwise).
            for address in &both {
                assert!(
                    store.get_kind(address, node_chunk_kind(kind)).is_ok(),
                    "{kind:?}"
                );
            }

            // A root the store does not hold is an error, not an empty set.
            let missing = spitz_crypto::sha256(b"missing root");
            let mut scratch = HashSet::new();
            assert!(collect_reachable(&store, kind, missing, &mut scratch).is_err());

            // The empty root marks nothing.
            let mut empty = HashSet::new();
            collect_reachable(&store, kind, Hash::ZERO, &mut empty).unwrap();
            assert!(empty.is_empty());
        }
    }

    #[test]
    fn kind_names() {
        assert_eq!(SiriKind::PosTree.name(), "pos-tree");
        assert_eq!(SiriKind::MerklePatriciaTrie.name(), "mpt");
        assert_eq!(SiriKind::MerkleBucketTree.name(), "mbt");
    }
}
