//! Inverted index for analytical queries.
//!
//! Section 5 of the paper: "When processing analytical queries, the system
//! uses an inverted index to quickly locate the rows to fetch data. Such an
//! index uses the value recorded in each cell as index key and the universal
//! key of the corresponding cell as value. The structure of the inverted
//! list varies according to the type of the data stored in the cell. For
//! instance, for numeric type, the system uses a skip list to better support
//! range query, whereas for string type, it uses a radix tree to reduce
//! space consumption."
//!
//! [`InvertedIndex`] is exactly that: one instance per indexed column,
//! mapping cell values to posting lists of universal keys.

use crate::radix::RadixTree;
use crate::skiplist::SkipList;

/// A value extracted from a cell, as seen by the inverted index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexValue {
    /// Numeric cell value (indexed in a skip list).
    Int(i64),
    /// Textual cell value (indexed in a radix tree).
    Text(Vec<u8>),
}

impl IndexValue {
    /// Convenience constructor for text values.
    pub fn text(s: impl AsRef<[u8]>) -> Self {
        IndexValue::Text(s.as_ref().to_vec())
    }
}

/// Order-preserving big-endian encoding of a signed integer (sign bit
/// flipped so that the byte order matches the numeric order).
pub fn encode_i64(v: i64) -> Vec<u8> {
    ((v as u64) ^ (1u64 << 63)).to_be_bytes().to_vec()
}

/// Inverse of [`encode_i64`].
pub fn decode_i64(bytes: &[u8]) -> Option<i64> {
    let arr: [u8; 8] = bytes.try_into().ok()?;
    Some((u64::from_be_bytes(arr) ^ (1u64 << 63)) as i64)
}

/// Posting list: the universal keys of the cells holding a given value.
pub type PostingList = Vec<Vec<u8>>;

enum Inner {
    Numeric(SkipList<Vec<u8>, PostingList>),
    Text(RadixTree<PostingList>),
}

/// A per-column inverted index from cell values to universal keys.
pub struct InvertedIndex {
    inner: Inner,
    postings: usize,
}

impl InvertedIndex {
    /// Create an inverted index for a numeric column (skip-list backed).
    pub fn numeric() -> Self {
        InvertedIndex {
            inner: Inner::Numeric(SkipList::new()),
            postings: 0,
        }
    }

    /// Create an inverted index for a string column (radix-tree backed).
    pub fn text() -> Self {
        InvertedIndex {
            inner: Inner::Text(RadixTree::new()),
            postings: 0,
        }
    }

    /// True when this index is numeric.
    pub fn is_numeric(&self) -> bool {
        matches!(self.inner, Inner::Numeric(_))
    }

    /// Total number of postings (cell references) stored.
    pub fn posting_count(&self) -> usize {
        self.postings
    }

    /// Number of distinct values indexed.
    pub fn distinct_values(&self) -> usize {
        match &self.inner {
            Inner::Numeric(list) => list.len(),
            Inner::Text(tree) => tree.len(),
        }
    }

    /// Add a posting: the cell identified by `universal_key` holds `value`.
    ///
    /// Returns `false` (and does nothing) when the value type does not match
    /// the index type.
    pub fn add(&mut self, value: &IndexValue, universal_key: Vec<u8>) -> bool {
        match (&mut self.inner, value) {
            (Inner::Numeric(list), IndexValue::Int(v)) => {
                let key = encode_i64(*v);
                if let Some(postings) = list.get_mut(&key) {
                    postings.push(universal_key);
                } else {
                    list.insert(key, vec![universal_key]);
                }
                self.postings += 1;
                true
            }
            (Inner::Text(tree), IndexValue::Text(v)) => {
                if let Some(postings) = tree.get_mut(v) {
                    postings.push(universal_key);
                } else {
                    tree.insert(v, vec![universal_key]);
                }
                self.postings += 1;
                true
            }
            _ => false,
        }
    }

    /// Universal keys of all cells holding exactly `value`.
    pub fn lookup_eq(&self, value: &IndexValue) -> PostingList {
        match (&self.inner, value) {
            (Inner::Numeric(list), IndexValue::Int(v)) => {
                list.get(&encode_i64(*v)).cloned().unwrap_or_default()
            }
            (Inner::Text(tree), IndexValue::Text(v)) => tree.get(v).cloned().unwrap_or_default(),
            _ => Vec::new(),
        }
    }

    /// Universal keys of all cells with a numeric value in `[low, high)`.
    /// Empty for text indexes.
    pub fn lookup_range(&self, low: i64, high: i64) -> PostingList {
        match &self.inner {
            Inner::Numeric(list) => {
                let mut out = Vec::new();
                for (_, postings) in list.range(&encode_i64(low), &encode_i64(high)) {
                    out.extend(postings.iter().cloned());
                }
                out
            }
            Inner::Text(_) => Vec::new(),
        }
    }

    /// Universal keys of all cells whose text value starts with `prefix`.
    /// Empty for numeric indexes.
    pub fn lookup_prefix(&self, prefix: &[u8]) -> PostingList {
        match &self.inner {
            Inner::Text(tree) => {
                let mut out = Vec::new();
                for (_, postings) in tree.scan_prefix(prefix) {
                    out.extend(postings.iter().cloned());
                }
                out
            }
            Inner::Numeric(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ukey(i: u32) -> Vec<u8> {
        format!("ukey-{i}").into_bytes()
    }

    #[test]
    fn i64_encoding_preserves_order() {
        let values = [i64::MIN, -1_000_000, -1, 0, 1, 42, 1_000_000, i64::MAX];
        for pair in values.windows(2) {
            assert!(
                encode_i64(pair[0]) < encode_i64(pair[1]),
                "{} < {}",
                pair[0],
                pair[1]
            );
        }
        for v in values {
            assert_eq!(decode_i64(&encode_i64(v)), Some(v));
        }
        assert_eq!(decode_i64(b"short"), None);
    }

    #[test]
    fn numeric_eq_and_range() {
        let mut index = InvertedIndex::numeric();
        assert!(index.is_numeric());
        // Stock levels: several items share the same level.
        for i in 0..100u32 {
            assert!(index.add(&IndexValue::Int((i % 10) as i64), ukey(i)));
        }
        assert_eq!(index.posting_count(), 100);
        assert_eq!(index.distinct_values(), 10);
        assert_eq!(index.lookup_eq(&IndexValue::Int(3)).len(), 10);
        assert!(index.lookup_eq(&IndexValue::Int(55)).is_empty());

        // "all items with stock-level lower than 5"
        let low_stock = index.lookup_range(0, 5);
        assert_eq!(low_stock.len(), 50);
        assert!(index.lookup_range(5, 5).is_empty());
        assert!(index.lookup_prefix(b"x").is_empty());
    }

    #[test]
    fn text_eq_and_prefix() {
        let mut index = InvertedIndex::text();
        assert!(!index.is_numeric());
        index.add(&IndexValue::text("diagnosis/icd10/E11.9"), ukey(1));
        index.add(&IndexValue::text("diagnosis/icd10/E11.9"), ukey(2));
        index.add(&IndexValue::text("diagnosis/icd10/I10"), ukey(3));
        index.add(&IndexValue::text("diagnosis/icd9/250.00"), ukey(4));

        assert_eq!(
            index
                .lookup_eq(&IndexValue::text("diagnosis/icd10/E11.9"))
                .len(),
            2
        );
        assert_eq!(index.lookup_prefix(b"diagnosis/icd10/").len(), 3);
        assert_eq!(index.lookup_prefix(b"diagnosis/").len(), 4);
        assert!(index.lookup_prefix(b"procedure/").is_empty());
        assert!(index.lookup_range(0, 10).is_empty());
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let mut numeric = InvertedIndex::numeric();
        assert!(!numeric.add(&IndexValue::text("oops"), ukey(1)));
        assert_eq!(numeric.posting_count(), 0);
        assert!(numeric.lookup_eq(&IndexValue::text("oops")).is_empty());

        let mut text = InvertedIndex::text();
        assert!(!text.add(&IndexValue::Int(1), ukey(1)));
        assert!(text.lookup_eq(&IndexValue::Int(1)).is_empty());
    }

    #[test]
    fn negative_numbers_range_correctly() {
        let mut index = InvertedIndex::numeric();
        for (i, v) in [-50i64, -10, -1, 0, 1, 10, 50].iter().enumerate() {
            index.add(&IndexValue::Int(*v), ukey(i as u32));
        }
        assert_eq!(index.lookup_range(-20, 2).len(), 4); // -10, -1, 0, 1
        assert_eq!(index.lookup_range(i64::MIN, i64::MAX).len(), 7);
    }
}
