//! Byte-wise radix (prefix) tree.
//!
//! Section 5 of the paper: "for string type, [the inverted index] uses a
//! radix tree to reduce space consumption". Keys sharing prefixes share
//! nodes; besides exact lookups the tree supports prefix scans, which is
//! what analytical predicates over string columns compile to.

use std::collections::BTreeMap;

#[derive(Debug, Clone)]
struct RadixNode<V> {
    /// Compressed edge label leading to this node.
    prefix: Vec<u8>,
    value: Option<V>,
    children: BTreeMap<u8, RadixNode<V>>,
}

impl<V> RadixNode<V> {
    fn new(prefix: Vec<u8>) -> Self {
        RadixNode {
            prefix,
            value: None,
            children: BTreeMap::new(),
        }
    }
}

/// A compressed prefix tree mapping byte-string keys to values.
#[derive(Debug, Clone)]
pub struct RadixTree<V> {
    root: RadixNode<V>,
    len: usize,
}

impl<V> Default for RadixTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

impl<V> RadixTree<V> {
    /// Create an empty tree.
    pub fn new() -> Self {
        RadixTree {
            root: RadixNode::new(Vec::new()),
            len: 0,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert or overwrite a key. Returns the previous value if any.
    pub fn insert(&mut self, key: &[u8], value: V) -> Option<V> {
        let replaced = Self::insert_node(&mut self.root, key, value);
        if replaced.is_none() {
            self.len += 1;
        }
        replaced
    }

    fn insert_node(node: &mut RadixNode<V>, key: &[u8], value: V) -> Option<V> {
        if key.is_empty() {
            return node.value.replace(value);
        }
        let first = key[0];
        match node.children.get_mut(&first) {
            None => {
                let mut child = RadixNode::new(key.to_vec());
                child.value = Some(value);
                node.children.insert(first, child);
                None
            }
            Some(child) => {
                let cp = common_prefix(&child.prefix, key);
                if cp == child.prefix.len() {
                    // The whole edge matches; continue below the child.
                    Self::insert_node(child, &key[cp..], value)
                } else {
                    // Split the edge at the divergence point.
                    let old_suffix = child.prefix[cp..].to_vec();
                    let shared = child.prefix[..cp].to_vec();
                    let mut old_child = std::mem::replace(child, RadixNode::new(shared));
                    old_child.prefix = old_suffix.clone();
                    child.children.insert(old_suffix[0], old_child);
                    if cp == key.len() {
                        child.value = Some(value);
                        None
                    } else {
                        let rest = &key[cp..];
                        let mut new_leaf = RadixNode::new(rest.to_vec());
                        new_leaf.value = Some(value);
                        child.children.insert(rest[0], new_leaf);
                        None
                    }
                }
            }
        }
    }

    /// Exact lookup.
    pub fn get(&self, key: &[u8]) -> Option<&V> {
        let mut node = &self.root;
        let mut remaining = key;
        loop {
            if remaining.is_empty() {
                return node.value.as_ref();
            }
            let child = node.children.get(&remaining[0])?;
            if remaining.len() < child.prefix.len()
                || remaining[..child.prefix.len()] != child.prefix[..]
            {
                return None;
            }
            remaining = &remaining[child.prefix.len()..];
            node = child;
        }
    }

    /// Mutable exact lookup.
    pub fn get_mut(&mut self, key: &[u8]) -> Option<&mut V> {
        let mut node = &mut self.root;
        let mut remaining = key;
        loop {
            if remaining.is_empty() {
                return node.value.as_mut();
            }
            let child = node.children.get_mut(&remaining[0])?;
            if remaining.len() < child.prefix.len()
                || remaining[..child.prefix.len()] != child.prefix[..]
            {
                return None;
            }
            remaining = &remaining[child.prefix.len()..];
            node = child;
        }
    }

    /// All entries whose key starts with `prefix`, in key order.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, &V)> {
        let mut out = Vec::new();
        // Descend as far as the prefix allows.
        let mut node = &self.root;
        let mut consumed: Vec<u8> = Vec::new();
        let mut remaining = prefix;
        loop {
            if remaining.is_empty() {
                Self::collect(node, &mut consumed, &mut out);
                return out;
            }
            let Some(child) = node.children.get(&remaining[0]) else {
                return out;
            };
            let cp = common_prefix(&child.prefix, remaining);
            if cp == remaining.len() {
                // The prefix ends inside this edge; everything below matches.
                consumed.extend_from_slice(&child.prefix);
                Self::collect(child, &mut consumed, &mut out);
                return out;
            }
            if cp < child.prefix.len() {
                // Divergence before the prefix is exhausted: no matches.
                return out;
            }
            consumed.extend_from_slice(&child.prefix);
            remaining = &remaining[cp..];
            node = child;
        }
    }

    fn collect<'a>(node: &'a RadixNode<V>, key: &mut Vec<u8>, out: &mut Vec<(Vec<u8>, &'a V)>) {
        if let Some(value) = &node.value {
            out.push((key.clone(), value));
        }
        for child in node.children.values() {
            key.extend_from_slice(&child.prefix);
            Self::collect(child, key, out);
            key.truncate(key.len() - child.prefix.len());
        }
    }

    /// Every entry in key order.
    pub fn iter(&self) -> Vec<(Vec<u8>, &V)> {
        self.scan_prefix(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let tree: RadixTree<u32> = RadixTree::new();
        assert!(tree.is_empty());
        assert_eq!(tree.get(b"x"), None);
        assert!(tree.scan_prefix(b"a").is_empty());
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut tree = RadixTree::new();
        let words = [
            "romane",
            "romanus",
            "romulus",
            "rubens",
            "ruber",
            "rubicon",
            "rubicundus",
            "r",
            "",
        ];
        for (i, w) in words.iter().enumerate() {
            assert!(tree.insert(w.as_bytes(), i).is_none());
        }
        assert_eq!(tree.len(), words.len());
        for (i, w) in words.iter().enumerate() {
            assert_eq!(tree.get(w.as_bytes()), Some(&i), "{w}");
        }
        assert_eq!(tree.get(b"roman"), None);
        assert_eq!(tree.get(b"rubiconX"), None);
    }

    #[test]
    fn overwrite_returns_previous() {
        let mut tree = RadixTree::new();
        assert_eq!(tree.insert(b"key", 1), None);
        assert_eq!(tree.insert(b"key", 2), Some(1));
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.get(b"key"), Some(&2));
    }

    #[test]
    fn prefix_scan_returns_matching_subtree() {
        let mut tree = RadixTree::new();
        for w in ["apple", "application", "apply", "banana", "band", "bandana"] {
            tree.insert(w.as_bytes(), w.len());
        }
        let apps: Vec<String> = tree
            .scan_prefix(b"appl")
            .into_iter()
            .map(|(k, _)| String::from_utf8(k).unwrap())
            .collect();
        assert_eq!(apps, vec!["apple", "application", "apply"]);

        let bands: Vec<String> = tree
            .scan_prefix(b"band")
            .into_iter()
            .map(|(k, _)| String::from_utf8(k).unwrap())
            .collect();
        assert_eq!(bands, vec!["band", "bandana"]);

        assert!(tree.scan_prefix(b"cherry").is_empty());
        assert_eq!(tree.iter().len(), 6);
    }

    #[test]
    fn prefix_scan_mid_edge() {
        let mut tree = RadixTree::new();
        tree.insert(b"hello-world", 1);
        tree.insert(b"hello-there", 2);
        // Prefix ends in the middle of the shared "hello-" edge.
        assert_eq!(tree.scan_prefix(b"hel").len(), 2);
        assert_eq!(tree.scan_prefix(b"hello-w").len(), 1);
        assert!(tree.scan_prefix(b"helio").is_empty());
    }

    #[test]
    fn get_mut_updates_value() {
        let mut tree = RadixTree::new();
        tree.insert(b"counter", 0u32);
        *tree.get_mut(b"counter").unwrap() += 5;
        assert_eq!(tree.get(b"counter"), Some(&5));
        assert!(tree.get_mut(b"missing").is_none());
    }

    #[test]
    fn keys_sharing_long_prefixes() {
        let mut tree = RadixTree::new();
        let n = 200u32;
        for i in 0..n {
            tree.insert(format!("customer/region-7/order-{i:05}").as_bytes(), i);
        }
        assert_eq!(tree.len(), n as usize);
        assert_eq!(tree.scan_prefix(b"customer/region-7/").len(), n as usize);
        assert_eq!(tree.scan_prefix(b"customer/region-7/order-0001").len(), 10);
        for i in 0..n {
            assert_eq!(
                tree.get(format!("customer/region-7/order-{i:05}").as_bytes()),
                Some(&i)
            );
        }
    }
}
