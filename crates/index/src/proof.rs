//! Common proof representation for authenticated indexes.
//!
//! All three SIRI indexes prove membership the same way: they reveal the
//! serialized nodes along the search path from the root to the leaf (or to
//! the point where the search fails, for a proof of absence). The verifier
//! re-hashes each revealed node, checks that the first node hashes to the
//! trusted root digest, checks that every subsequent node's hash appears in
//! its parent, and finally checks the key/value (or its absence) inside the
//! terminal node. The index-specific part — how to find a child hash inside
//! a node — lives with each index; the common carrying structure lives here.

use spitz_crypto::{sha256, Hash};

use crate::codec;

/// A path proof: the serialized node payloads from the root down.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IndexProof {
    /// Serialized node payloads, root first.
    pub nodes: Vec<Vec<u8>>,
}

impl IndexProof {
    /// An empty proof (used for lookups against an empty index).
    pub fn empty() -> Self {
        IndexProof { nodes: Vec::new() }
    }

    /// Bytes a canonical wire encoding of this proof would occupy: a node
    /// count plus a length-prefixed payload per node. The telemetry layer
    /// reports this as "proof bytes" so proof-shrinking work has a number
    /// to move.
    pub fn encoded_len(&self) -> usize {
        4 + self.nodes.iter().map(|node| 4 + node.len()).sum::<usize>()
    }

    /// Append the canonical wire encoding (exactly
    /// [`IndexProof::encoded_len`] bytes): node count, then each node as a
    /// length-prefixed payload.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_u32(out, self.nodes.len() as u32);
        for node in &self.nodes {
            codec::put_bytes(out, node);
        }
    }

    /// The canonical wire encoding as a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Decode a proof previously written by [`IndexProof::encode_into`].
    /// Returns `None` on truncated or malformed input. The declared node
    /// count is checked against the bytes actually available before any
    /// allocation happens, so a hostile count cannot force a large
    /// allocation.
    pub fn decode(r: &mut codec::Reader<'_>) -> Option<IndexProof> {
        let count = r.u32()? as usize;
        // Every node costs at least its 4-byte length prefix.
        if count > r.remaining() / 4 {
            return None;
        }
        let mut nodes = Vec::with_capacity(count);
        for _ in 0..count {
            nodes.push(r.bytes()?.to_vec());
        }
        Some(IndexProof { nodes })
    }

    /// Append a node payload to the proof path.
    pub fn push_node(&mut self, payload: Vec<u8>) {
        self.nodes.push(payload);
    }

    /// Number of nodes revealed.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the proof reveals no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total size of the proof in bytes; the paper's discussion of proof
    /// overhead is in these terms.
    pub fn size_bytes(&self) -> usize {
        self.nodes.iter().map(|n| n.len()).sum()
    }

    /// Hash of the i-th revealed node under the index node addressing scheme
    /// (chunk kind tag for index nodes followed by the payload).
    pub fn node_hash(&self, i: usize) -> Option<Hash> {
        self.nodes.get(i).map(|n| hash_index_node(n))
    }

    /// Check the chain condition: node 0 hashes to `root`, and every later
    /// node's hash appears inside at least one earlier node (so the revealed
    /// set forms a connected sub-DAG rooted at the trusted digest). Each
    /// index additionally checks the terminal node contents; this helper
    /// gives the generic structural check and also covers range proofs where
    /// several leaves hang off shared interior nodes.
    pub fn verify_chain(&self, root: Hash) -> bool {
        if self.nodes.is_empty() {
            return false;
        }
        if hash_index_node(&self.nodes[0]) != root {
            return false;
        }
        for i in 1..self.nodes.len() {
            let child_hash = hash_index_node(&self.nodes[i]);
            let referenced = self.nodes[..i]
                .iter()
                .any(|parent| contains_subslice(parent, child_hash.as_bytes()));
            if !referenced {
                return false;
            }
        }
        true
    }
}

/// A batched multi-key proof: proves `k` keys against one root while
/// sharing the nodes of the upper tree between keys.
///
/// The carrier is the same node-list shape as [`IndexProof`] (and uses the
/// identical wire encoding), but the contents differ per index family:
///
/// * **POS-Tree / MBT** — the de-duplicated union of every key's root-to-
///   leaf path payloads, in first-use order. Shared upper nodes appear
///   once no matter how many keys traverse them.
/// * **MPT** — a single compact *trie-shaped* blob: the shared sub-trie of
///   all k lookup paths, encoded recursively with sparse-branch sibling
///   hashes (see `crates/index/src/mpt.rs`). `nodes` holds exactly that
///   one blob.
///
/// Verification is dispatched through
/// [`verify_multi_proof`](crate::siri::verify_multi_proof) and rejects
/// proofs carrying nodes no key's walk consumes, so spliced-in payloads
/// fail even when every individual path still verifies.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MultiProof {
    /// Serialized proof nodes; see the type docs for the per-kind contents.
    pub nodes: Vec<Vec<u8>>,
}

impl MultiProof {
    /// An empty proof (all-absent lookups against an empty index).
    pub fn empty() -> Self {
        MultiProof { nodes: Vec::new() }
    }

    /// Bytes of the canonical wire encoding: node count plus a
    /// length-prefixed payload per node (same framing as [`IndexProof`]).
    pub fn encoded_len(&self) -> usize {
        4 + self.nodes.iter().map(|node| 4 + node.len()).sum::<usize>()
    }

    /// Append the canonical wire encoding (exactly
    /// [`MultiProof::encoded_len`] bytes).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_u32(out, self.nodes.len() as u32);
        for node in &self.nodes {
            codec::put_bytes(out, node);
        }
    }

    /// The canonical wire encoding as a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Decode a proof previously written by [`MultiProof::encode_into`].
    /// Allocation-bounded exactly like [`IndexProof::decode`].
    pub fn decode(r: &mut codec::Reader<'_>) -> Option<MultiProof> {
        let count = r.u32()? as usize;
        if count > r.remaining() / 4 {
            return None;
        }
        let mut nodes = Vec::with_capacity(count);
        for _ in 0..count {
            nodes.push(r.bytes()?.to_vec());
        }
        Some(MultiProof { nodes })
    }

    /// Append a node payload.
    pub fn push_node(&mut self, payload: Vec<u8>) {
        self.nodes.push(payload);
    }

    /// Number of proof nodes carried.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the proof carries no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total payload bytes (the proof-overhead number the benchmarks
    /// report).
    pub fn size_bytes(&self) -> usize {
        self.nodes.iter().map(|n| n.len()).sum()
    }
}

/// Hash an index node payload exactly as the chunk store addresses it
/// (`ChunkKind::IndexNode` tag = 2, then payload).
pub fn hash_index_node(payload: &[u8]) -> Hash {
    let mut data = Vec::with_capacity(payload.len() + 1);
    data.push(2u8);
    data.extend_from_slice(payload);
    sha256(&data)
}

/// True when `haystack` contains `needle` as a contiguous subslice.
pub fn contains_subslice(haystack: &[u8], needle: &[u8]) -> bool {
    if needle.is_empty() {
        return true;
    }
    if haystack.len() < needle.len() {
        return false;
    }
    haystack.windows(needle.len()).any(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spitz_storage::{Chunk, ChunkKind};

    #[test]
    fn node_hash_matches_chunk_address() {
        let payload = b"some index node".to_vec();
        let chunk = Chunk::new(ChunkKind::IndexNode, payload.clone());
        assert_eq!(hash_index_node(&payload), chunk.address());
    }

    #[test]
    fn verify_chain_accepts_valid_parent_child_links() {
        let leaf = b"leaf payload".to_vec();
        let leaf_hash = hash_index_node(&leaf);
        let mut parent = b"parent:".to_vec();
        parent.extend_from_slice(leaf_hash.as_bytes());
        let root = hash_index_node(&parent);

        let proof = IndexProof {
            nodes: vec![parent, leaf],
        };
        assert!(proof.verify_chain(root));
        assert!(!proof.verify_chain(sha256(b"wrong root")));
    }

    #[test]
    fn verify_chain_rejects_broken_links() {
        let leaf = b"leaf payload".to_vec();
        let parent = b"parent without child hash".to_vec();
        let root = hash_index_node(&parent);
        let proof = IndexProof {
            nodes: vec![parent, leaf],
        };
        assert!(!proof.verify_chain(root));
    }

    #[test]
    fn empty_proof_never_verifies() {
        assert!(!IndexProof::empty().verify_chain(sha256(b"anything")));
    }

    #[test]
    fn size_accounting() {
        let mut proof = IndexProof::empty();
        proof.push_node(vec![0u8; 10]);
        proof.push_node(vec![0u8; 22]);
        assert_eq!(proof.len(), 2);
        assert_eq!(proof.size_bytes(), 32);
        assert!(!proof.is_empty());
    }

    #[test]
    fn subslice_search() {
        assert!(contains_subslice(b"abcdef", b"cde"));
        assert!(contains_subslice(b"abcdef", b""));
        assert!(!contains_subslice(b"abcdef", b"xyz"));
        assert!(!contains_subslice(b"ab", b"abc"));
    }
}
