//! Merkle Patricia Trie (MPT).
//!
//! The authenticated index used by Ethereum's state and adopted by several
//! ledger databases; in the paper's taxonomy it is one of the three SIRI
//! instances. Keys are decomposed into 4-bit nibbles; nodes are leaves
//! (remaining path + value), extensions (shared path + child) or branches
//! (16 children + optional value). Nodes are content addressed in the chunk
//! store, so like the POS-Tree, consecutive versions share untouched
//! subtrees and the structure is independent of insertion order.
//!
//! Range scans are supported by an in-order traversal of the trie (nibble
//! order equals lexicographic byte order), which is correct but — exactly as
//! the paper's analysis of SIRI structures observes — less efficient than
//! the POS-Tree's B+-tree-like scan. The ablation benchmark
//! (`ablation_siri`) quantifies this.

use std::collections::HashMap;
use std::sync::Arc;

use spitz_crypto::Hash;
use spitz_storage::{Chunk, ChunkKind, ChunkStore, StorageError};

use crate::codec::{put_bytes, put_hash, Reader};
use crate::proof::{hash_index_node, IndexProof};
use crate::siri::{SiriIndex, SiriKind};

/// Decoded trie node.
#[derive(Debug, Clone, PartialEq, Eq)]
enum MptNode {
    /// Remaining nibble path and the stored value.
    Leaf { path: Vec<u8>, value: Vec<u8> },
    /// Shared nibble path and the child it leads to.
    Extension { path: Vec<u8>, child: Hash },
    /// One child slot per nibble plus an optional value for keys ending here.
    Branch {
        children: Box<[Option<Hash>; 16]>,
        value: Option<Vec<u8>>,
    },
}

impl MptNode {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            MptNode::Leaf { path, value } => {
                out.push(0u8);
                put_bytes(&mut out, path);
                put_bytes(&mut out, value);
            }
            MptNode::Extension { path, child } => {
                out.push(1u8);
                put_bytes(&mut out, path);
                put_hash(&mut out, child);
            }
            MptNode::Branch { children, value } => {
                out.push(2u8);
                let mut bitmap: u16 = 0;
                for (i, child) in children.iter().enumerate() {
                    if child.is_some() {
                        bitmap |= 1 << i;
                    }
                }
                out.extend_from_slice(&bitmap.to_be_bytes());
                for child in children.iter().flatten() {
                    put_hash(&mut out, child);
                }
                match value {
                    Some(v) => {
                        out.push(1);
                        put_bytes(&mut out, v);
                    }
                    None => out.push(0),
                }
            }
        }
        out
    }

    fn decode(data: &[u8]) -> Option<MptNode> {
        let mut r = Reader::new(data);
        match r.u8()? {
            0 => {
                let path = r.bytes()?.to_vec();
                let value = r.bytes()?.to_vec();
                Some(MptNode::Leaf { path, value })
            }
            1 => {
                let path = r.bytes()?.to_vec();
                let child = r.hash()?;
                Some(MptNode::Extension { path, child })
            }
            2 => {
                let hi = r.u8()?;
                let lo = r.u8()?;
                let bitmap = u16::from_be_bytes([hi, lo]);
                let mut children: [Option<Hash>; 16] = Default::default();
                for (i, slot) in children.iter_mut().enumerate() {
                    if bitmap & (1 << i) != 0 {
                        *slot = Some(r.hash()?);
                    }
                }
                let value = if r.u8()? == 1 {
                    Some(r.bytes()?.to_vec())
                } else {
                    None
                };
                Some(MptNode::Branch {
                    children: Box::new(children),
                    value,
                })
            }
            _ => None,
        }
    }
}

/// Child node addresses of an encoded MPT node (empty for a leaf); `None`
/// when the payload does not decode as an MPT node.
pub(crate) fn node_children(payload: &[u8]) -> Option<Vec<Hash>> {
    MptNode::decode(payload).map(|node| match node {
        MptNode::Leaf { .. } => Vec::new(),
        MptNode::Extension { child, .. } => vec![child],
        MptNode::Branch { children, .. } => children.iter().flatten().copied().collect(),
    })
}

/// Convert a key to its nibble path (two nibbles per byte, high first).
fn to_nibbles(key: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.len() * 2);
    for &b in key {
        out.push(b >> 4);
        out.push(b & 0x0f);
    }
    out
}

/// Convert a nibble path back to bytes (paths always have even length when
/// they represent whole keys).
fn from_nibbles(nibbles: &[u8]) -> Vec<u8> {
    nibbles
        .chunks(2)
        .map(|pair| (pair[0] << 4) | pair.get(1).copied().unwrap_or(0))
        .collect()
}

fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// The Merkle Patricia Trie.
pub struct MerklePatriciaTrie {
    store: Arc<dyn ChunkStore>,
    root: Hash,
    len: usize,
}

/// Abstraction over "where node payloads come from" so that the same lookup
/// code serves both the live trie (chunk store) and client-side proof
/// verification (a map of revealed payloads).
trait NodeSource {
    fn payload(&self, hash: &Hash) -> Option<Vec<u8>>;
}

struct StoreSource<'a>(&'a Arc<dyn ChunkStore>);

impl NodeSource for StoreSource<'_> {
    fn payload(&self, hash: &Hash) -> Option<Vec<u8>> {
        self.0
            .get_kind(hash, ChunkKind::IndexNode)
            .ok()
            .map(|c| c.data().to_vec())
    }
}

struct ProofSource(HashMap<Hash, Vec<u8>>);

impl NodeSource for ProofSource {
    fn payload(&self, hash: &Hash) -> Option<Vec<u8>> {
        self.0.get(hash).cloned()
    }
}

/// Walk a trie from `root` looking for the value at `nibbles`.
///
/// Returns `Err(())` when a needed node cannot be resolved (incomplete
/// proof / corrupt store), `Ok(None)` for a proven absence.
fn lookup<S: NodeSource>(
    source: &S,
    root: Hash,
    nibbles: &[u8],
    mut visit: impl FnMut(&[u8]),
) -> Result<Option<Vec<u8>>, ()> {
    if root.is_zero() {
        return Ok(None);
    }
    let mut hash = root;
    let mut remaining = nibbles;
    loop {
        let payload = source.payload(&hash).ok_or(())?;
        visit(&payload);
        let node = MptNode::decode(&payload).ok_or(())?;
        match node {
            MptNode::Leaf { path, value } => {
                return Ok((path == remaining).then_some(value));
            }
            MptNode::Extension { path, child } => {
                if remaining.len() < path.len() || remaining[..path.len()] != path[..] {
                    return Ok(None);
                }
                remaining = &remaining[path.len()..];
                hash = child;
            }
            MptNode::Branch { children, value } => {
                if remaining.is_empty() {
                    return Ok(value);
                }
                match children[remaining[0] as usize] {
                    Some(child) => {
                        remaining = &remaining[1..];
                        hash = child;
                    }
                    None => return Ok(None),
                }
            }
        }
    }
}

impl MerklePatriciaTrie {
    /// Create an empty trie writing its nodes into `store`.
    pub fn new(store: Arc<dyn ChunkStore>) -> Self {
        MerklePatriciaTrie {
            store,
            root: Hash::ZERO,
            len: 0,
        }
    }

    /// Open the trie at an existing root, recomputing the entry count.
    pub fn open(store: Arc<dyn ChunkStore>, root: Hash) -> Option<Self> {
        let mut trie = MerklePatriciaTrie {
            store,
            root,
            len: 0,
        };
        if root.is_zero() {
            return Some(trie);
        }
        if !trie.store.contains(&root) {
            return None;
        }
        let mut count = 0usize;
        trie.walk(&root, &mut Vec::new(), &mut |_, _| count += 1, &mut None);
        trie.len = count;
        Some(trie)
    }

    fn save(&self, node: &MptNode) -> Result<Hash, StorageError> {
        self.store
            .try_put(Chunk::new(ChunkKind::IndexNode, node.encode()))
    }

    fn load(&self, hash: &Hash) -> Option<MptNode> {
        let chunk = self.store.get_kind(hash, ChunkKind::IndexNode).ok()?;
        MptNode::decode(chunk.data())
    }

    /// Recursive insert; returns the hash of the replacement node and whether
    /// a new key was added. A storage failure while persisting any node
    /// aborts the insert with the trie root untouched.
    fn insert_rec(
        &self,
        node: Option<Hash>,
        path: &[u8],
        value: &[u8],
    ) -> Result<(Hash, bool), StorageError> {
        let Some(hash) = node else {
            return Ok((
                self.save(&MptNode::Leaf {
                    path: path.to_vec(),
                    value: value.to_vec(),
                })?,
                true,
            ));
        };
        let node = self.load(&hash).expect("mpt node missing from store");
        match node {
            MptNode::Leaf {
                path: lpath,
                value: lvalue,
            } => {
                if lpath == path {
                    return Ok((
                        self.save(&MptNode::Leaf {
                            path: lpath,
                            value: value.to_vec(),
                        })?,
                        false,
                    ));
                }
                let cp = common_prefix(&lpath, path);
                let mut children: [Option<Hash>; 16] = Default::default();
                let mut branch_value = None;

                let lrem = &lpath[cp..];
                if lrem.is_empty() {
                    branch_value = Some(lvalue);
                } else {
                    children[lrem[0] as usize] = Some(self.save(&MptNode::Leaf {
                        path: lrem[1..].to_vec(),
                        value: lvalue,
                    })?);
                }
                let prem = &path[cp..];
                let mut branch_value2 = branch_value;
                if prem.is_empty() {
                    branch_value2 = Some(value.to_vec());
                } else {
                    children[prem[0] as usize] = Some(self.save(&MptNode::Leaf {
                        path: prem[1..].to_vec(),
                        value: value.to_vec(),
                    })?);
                }
                let branch = self.save(&MptNode::Branch {
                    children: Box::new(children),
                    value: branch_value2,
                })?;
                let result = if cp > 0 {
                    self.save(&MptNode::Extension {
                        path: path[..cp].to_vec(),
                        child: branch,
                    })?
                } else {
                    branch
                };
                Ok((result, true))
            }
            MptNode::Extension { path: epath, child } => {
                let cp = common_prefix(&epath, path);
                if cp == epath.len() {
                    let (new_child, added) = self.insert_rec(Some(child), &path[cp..], value)?;
                    return Ok((
                        self.save(&MptNode::Extension {
                            path: epath,
                            child: new_child,
                        })?,
                        added,
                    ));
                }
                // Split the extension at the divergence point.
                let mut children: [Option<Hash>; 16] = Default::default();
                let mut branch_value = None;
                let erem = &epath[cp..];
                let echild = if erem.len() > 1 {
                    self.save(&MptNode::Extension {
                        path: erem[1..].to_vec(),
                        child,
                    })?
                } else {
                    child
                };
                children[erem[0] as usize] = Some(echild);

                let prem = &path[cp..];
                if prem.is_empty() {
                    branch_value = Some(value.to_vec());
                } else {
                    children[prem[0] as usize] = Some(self.save(&MptNode::Leaf {
                        path: prem[1..].to_vec(),
                        value: value.to_vec(),
                    })?);
                }
                let branch = self.save(&MptNode::Branch {
                    children: Box::new(children),
                    value: branch_value,
                })?;
                let result = if cp > 0 {
                    self.save(&MptNode::Extension {
                        path: path[..cp].to_vec(),
                        child: branch,
                    })?
                } else {
                    branch
                };
                Ok((result, true))
            }
            MptNode::Branch {
                mut children,
                value: bvalue,
            } => {
                if path.is_empty() {
                    let added = bvalue.is_none();
                    return Ok((
                        self.save(&MptNode::Branch {
                            children,
                            value: Some(value.to_vec()),
                        })?,
                        added,
                    ));
                }
                let idx = path[0] as usize;
                let (new_child, added) = self.insert_rec(children[idx], &path[1..], value)?;
                children[idx] = Some(new_child);
                Ok((
                    self.save(&MptNode::Branch {
                        children,
                        value: bvalue,
                    })?,
                    added,
                ))
            }
        }
    }

    /// In-order traversal; calls `emit(key_nibbles, value)` for every entry
    /// and appends node payloads to `proof` when provided.
    fn walk(
        &self,
        hash: &Hash,
        prefix: &mut Vec<u8>,
        emit: &mut impl FnMut(&[u8], &[u8]),
        proof: &mut Option<&mut IndexProof>,
    ) {
        let Some(chunk) = self.store.get_kind(hash, ChunkKind::IndexNode).ok() else {
            return;
        };
        if let Some(p) = proof.as_deref_mut() {
            p.push_node(chunk.data().to_vec());
        }
        let Some(node) = MptNode::decode(chunk.data()) else {
            return;
        };
        match node {
            MptNode::Leaf { path, value } => {
                let depth = path.len();
                prefix.extend_from_slice(&path);
                emit(prefix, &value);
                prefix.truncate(prefix.len() - depth);
            }
            MptNode::Extension { path, child } => {
                let depth = path.len();
                prefix.extend_from_slice(&path);
                self.walk(&child, prefix, emit, proof);
                prefix.truncate(prefix.len() - depth);
            }
            MptNode::Branch { children, value } => {
                if let Some(v) = value {
                    emit(prefix, &v);
                }
                for (i, child) in children.iter().enumerate() {
                    if let Some(child) = child {
                        prefix.push(i as u8);
                        self.walk(child, prefix, emit, proof);
                        prefix.pop();
                    }
                }
            }
        }
    }

    fn range_impl(
        &self,
        start: &[u8],
        end: &[u8],
        mut proof: Option<&mut IndexProof>,
    ) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        if self.root.is_zero() || start >= end {
            return out;
        }
        let mut prefix = Vec::new();
        self.walk(
            &self.root.clone(),
            &mut prefix,
            &mut |nibbles, value| {
                let key = from_nibbles(nibbles);
                if key.as_slice() >= start && key.as_slice() < end {
                    out.push((key, value.to_vec()));
                }
            },
            &mut proof,
        );
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Verify a point-lookup proof: rebuild a node map from the revealed
    /// payloads and re-run the lookup against it.
    pub fn verify_proof(root: Hash, key: &[u8], value: Option<&[u8]>, proof: &IndexProof) -> bool {
        if root.is_zero() {
            return value.is_none();
        }
        let source = ProofSource(
            proof
                .nodes
                .iter()
                .map(|n| (hash_index_node(n), n.clone()))
                .collect(),
        );
        match lookup(&source, root, &to_nibbles(key), |_| {}) {
            Ok(found) => found.as_deref() == value,
            Err(()) => false,
        }
    }

    /// Verify a **complete** range proof. The MPT's range scan is an
    /// in-order walk of the whole trie (the SIRI weakness the paper's
    /// ablation quantifies), so the proof reveals every node; the verifier
    /// re-walks the revealed nodes from the root — failing if any referenced
    /// node was withheld — and checks that the claimed entries are exactly
    /// the collected entries restricted to `start <= key < end`.
    pub fn verify_range_proof(
        root: Hash,
        start: &[u8],
        end: &[u8],
        entries: &[(Vec<u8>, Vec<u8>)],
        proof: &IndexProof,
    ) -> bool {
        if root.is_zero() || start >= end {
            return entries.is_empty();
        }
        let source = ProofSource(
            proof
                .nodes
                .iter()
                .map(|n| (hash_index_node(n), n.clone()))
                .collect(),
        );
        let mut all = Vec::new();
        if collect_entries(&source, &root, &mut Vec::new(), &mut all).is_err() {
            return false;
        }
        let mut in_range: Vec<(Vec<u8>, Vec<u8>)> = all
            .into_iter()
            .filter(|(k, _)| k.as_slice() >= start && k.as_slice() < end)
            .collect();
        in_range.sort_by(|a, b| a.0.cmp(&b.0));
        in_range == entries
    }
}

/// Walk every node reachable from `hash` through `source`, collecting all
/// `(key, value)` entries. `Err(())` when a referenced node cannot be
/// resolved — for proof verification that means the server withheld part of
/// the trie.
fn collect_entries<S: NodeSource>(
    source: &S,
    hash: &Hash,
    prefix: &mut Vec<u8>,
    out: &mut Vec<(Vec<u8>, Vec<u8>)>,
) -> Result<(), ()> {
    let payload = source.payload(hash).ok_or(())?;
    let node = MptNode::decode(&payload).ok_or(())?;
    match node {
        MptNode::Leaf { path, value } => {
            let depth = path.len();
            prefix.extend_from_slice(&path);
            out.push((from_nibbles(prefix), value));
            prefix.truncate(prefix.len() - depth);
        }
        MptNode::Extension { path, child } => {
            let depth = path.len();
            prefix.extend_from_slice(&path);
            collect_entries(source, &child, prefix, out)?;
            prefix.truncate(prefix.len() - depth);
        }
        MptNode::Branch { children, value } => {
            if let Some(v) = value {
                out.push((from_nibbles(prefix), v));
            }
            for (i, child) in children.iter().enumerate() {
                if let Some(child) = child {
                    prefix.push(i as u8);
                    collect_entries(source, child, prefix, out)?;
                    prefix.pop();
                }
            }
        }
    }
    Ok(())
}

impl SiriIndex for MerklePatriciaTrie {
    fn kind(&self) -> SiriKind {
        SiriKind::MerklePatriciaTrie
    }

    fn root(&self) -> Hash {
        self.root
    }

    fn len(&self) -> usize {
        self.len
    }

    fn try_insert(&mut self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StorageError> {
        let nibbles = to_nibbles(&key);
        let root = if self.root.is_zero() {
            None
        } else {
            Some(self.root)
        };
        let (new_root, added) = self.insert_rec(root, &nibbles, &value)?;
        self.root = new_root;
        if added {
            self.len += 1;
        }
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        lookup(
            &StoreSource(&self.store),
            self.root,
            &to_nibbles(key),
            |_| {},
        )
        .ok()
        .flatten()
    }

    fn get_with_proof(&self, key: &[u8]) -> (Option<Vec<u8>>, IndexProof) {
        let mut proof = IndexProof::empty();
        let value = lookup(
            &StoreSource(&self.store),
            self.root,
            &to_nibbles(key),
            |payload| {
                proof.push_node(payload.to_vec());
            },
        )
        .ok()
        .flatten();
        (value, proof)
    }

    fn range(&self, start: &[u8], end: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.range_impl(start, end, None)
    }

    fn range_with_proof(&self, start: &[u8], end: &[u8]) -> (Vec<(Vec<u8>, Vec<u8>)>, IndexProof) {
        let mut proof = IndexProof::empty();
        let entries = self.range_impl(start, end, Some(&mut proof));
        (entries, proof)
    }

    fn checkout(&self, root: Hash) -> Option<Box<dyn SiriIndex>> {
        MerklePatriciaTrie::open(Arc::clone(&self.store), root)
            .map(|t| Box::new(t) as Box<dyn SiriIndex>)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use spitz_crypto::sha256;
    use spitz_storage::InMemoryChunkStore;

    fn new_trie() -> MerklePatriciaTrie {
        MerklePatriciaTrie::new(InMemoryChunkStore::shared())
    }

    fn key(i: u32) -> Vec<u8> {
        format!("key-{i:06}").into_bytes()
    }

    fn value(i: u32) -> Vec<u8> {
        format!("value-{i}").into_bytes()
    }

    #[test]
    fn nibble_conversion_roundtrip() {
        for data in [&b""[..], b"a", b"hello", &[0x00, 0xff, 0x7f]] {
            assert_eq!(from_nibbles(&to_nibbles(data)), data.to_vec());
        }
        assert_eq!(to_nibbles(&[0xab]), vec![0xa, 0xb]);
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut trie = new_trie();
        for i in 0..300u32 {
            trie.insert(key(i), value(i));
        }
        assert_eq!(trie.len(), 300);
        for i in 0..300u32 {
            assert_eq!(trie.get(&key(i)), Some(value(i)), "key {i}");
        }
        assert_eq!(trie.get(b"missing"), None);
    }

    #[test]
    fn prefix_keys_coexist() {
        let mut trie = new_trie();
        trie.insert(b"a".to_vec(), b"1".to_vec());
        trie.insert(b"ab".to_vec(), b"2".to_vec());
        trie.insert(b"abc".to_vec(), b"3".to_vec());
        trie.insert(b"abd".to_vec(), b"4".to_vec());
        assert_eq!(trie.get(b"a"), Some(b"1".to_vec()));
        assert_eq!(trie.get(b"ab"), Some(b"2".to_vec()));
        assert_eq!(trie.get(b"abc"), Some(b"3".to_vec()));
        assert_eq!(trie.get(b"abd"), Some(b"4".to_vec()));
        assert_eq!(trie.len(), 4);
        assert_eq!(trie.get(b"abe"), None);
        assert_eq!(trie.get(b"abcd"), None);
    }

    #[test]
    fn overwrite_keeps_len() {
        let mut trie = new_trie();
        trie.insert(b"k".to_vec(), b"v1".to_vec());
        trie.insert(b"k".to_vec(), b"v2".to_vec());
        assert_eq!(trie.len(), 1);
        assert_eq!(trie.get(b"k"), Some(b"v2".to_vec()));
    }

    #[test]
    fn structural_invariance_under_insertion_order() {
        let keys: Vec<u32> = (0..200).collect();
        let mut t1 = new_trie();
        for &i in &keys {
            t1.insert(key(i), value(i));
        }
        let mut shuffled = keys.clone();
        shuffled.shuffle(&mut StdRng::seed_from_u64(3));
        let mut t2 = new_trie();
        for &i in &shuffled {
            t2.insert(key(i), value(i));
        }
        assert_eq!(t1.root(), t2.root());
    }

    #[test]
    fn proofs_verify_and_detect_tampering() {
        let mut trie = new_trie();
        for i in 0..200u32 {
            trie.insert(key(i), value(i));
        }
        let root = trie.root();
        let (v, proof) = trie.get_with_proof(&key(77));
        assert_eq!(v, Some(value(77)));
        assert!(MerklePatriciaTrie::verify_proof(
            root,
            &key(77),
            v.as_deref(),
            &proof
        ));
        assert!(!MerklePatriciaTrie::verify_proof(
            root,
            &key(77),
            Some(b"forged"),
            &proof
        ));
        assert!(!MerklePatriciaTrie::verify_proof(
            root,
            &key(77),
            None,
            &proof
        ));
        assert!(!MerklePatriciaTrie::verify_proof(
            sha256(b"x"),
            &key(77),
            v.as_deref(),
            &proof
        ));

        let (none, absence) = trie.get_with_proof(b"not-present");
        assert!(none.is_none());
        assert!(MerklePatriciaTrie::verify_proof(
            root,
            b"not-present",
            None,
            &absence
        ));
    }

    #[test]
    fn range_returns_sorted_window_with_valid_proof() {
        let mut trie = new_trie();
        for i in 0..300u32 {
            trie.insert(key(i), value(i));
        }
        let (start, end) = (key(50), key(60));
        let (entries, proof) = trie.range_with_proof(&start, &end);
        assert_eq!(entries.len(), 10);
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(MerklePatriciaTrie::verify_range_proof(
            trie.root(),
            &start,
            &end,
            &entries,
            &proof
        ));

        let mut forged = entries.clone();
        forged[3].1 = b"forged".to_vec();
        assert!(!MerklePatriciaTrie::verify_range_proof(
            trie.root(),
            &start,
            &end,
            &forged,
            &proof
        ));
        // Omitting an entry breaks verification (completeness).
        let mut truncated = entries.clone();
        truncated.remove(4);
        assert!(!MerklePatriciaTrie::verify_range_proof(
            trie.root(),
            &start,
            &end,
            &truncated,
            &proof
        ));
    }

    #[test]
    fn historical_roots_remain_readable() {
        let store = InMemoryChunkStore::shared();
        let mut trie = MerklePatriciaTrie::new(Arc::clone(&store) as Arc<dyn ChunkStore>);
        trie.insert(b"a".to_vec(), b"1".to_vec());
        let root1 = trie.root();
        trie.insert(b"b".to_vec(), b"2".to_vec());

        let old = trie.checkout(root1).unwrap();
        assert_eq!(old.len(), 1);
        assert_eq!(old.get(b"a"), Some(b"1".to_vec()));
        assert_eq!(old.get(b"b"), None);
    }

    #[test]
    fn empty_trie_behaviour() {
        let trie = new_trie();
        assert!(trie.is_empty());
        assert_eq!(trie.get(b"x"), None);
        let (v, proof) = trie.get_with_proof(b"x");
        assert!(v.is_none());
        assert!(MerklePatriciaTrie::verify_proof(
            Hash::ZERO,
            b"x",
            None,
            &proof
        ));
        assert!(trie.range(b"a", b"z").is_empty());
    }
}
