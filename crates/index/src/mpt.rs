//! Merkle Patricia Trie (MPT).
//!
//! The authenticated index used by Ethereum's state and adopted by several
//! ledger databases; in the paper's taxonomy it is one of the three SIRI
//! instances. Keys are decomposed into 4-bit nibbles; nodes are leaves
//! (remaining path + value), extensions (shared path + child) or branches
//! (16 children + optional value). Nodes are content addressed in the chunk
//! store, so like the POS-Tree, consecutive versions share untouched
//! subtrees and the structure is independent of insertion order.
//!
//! Range scans are supported by an in-order traversal of the trie (nibble
//! order equals lexicographic byte order), which is correct but — exactly as
//! the paper's analysis of SIRI structures observes — less efficient than
//! the POS-Tree's B+-tree-like scan. The ablation benchmark
//! (`ablation_siri`) quantifies this.
//!
//! # Sparse-branch commitments and compact proofs
//!
//! Trie nodes are stored as [`ChunkKind::MptNode`] chunks, which the storage
//! layer addresses by their *sparse-branch commitment*
//! ([`spitz_storage::mpt_commitment`]): a branch's 16 child slots are hashed
//! as a 4-level sparse Merkle subtree instead of being absorbed whole. Point
//! proofs therefore do not reveal node payloads at all; they are a single
//! recursive *trie-shaped blob* mirroring the lookup path:
//!
//! ```text
//! step := 0x00 ‖ path ‖ value                      leaf (value revealed)
//!       | 0x01 ‖ path ‖ step                       extension, descend
//!       | 0x02 ‖ path ‖ child_commitment           extension, pruned
//!       | 0x03 ‖ bitmap u16 ‖ vtag ‖ [value]       branch
//!              ‖ on-path child steps (ascending nibble)
//!              ‖ sibling subtree hashes (depth-first fold order)
//! ```
//!
//! `vtag` is 0 (branch stores no value), 1 (value present, revealed as its
//! hash) or 2 (value present, revealed in full — required whenever a proven
//! key terminates at the branch). A full branch descent costs ~4 sibling
//! hashes instead of 15 child hashes, and the same blob proves any number of
//! keys at once by sharing every common upper step ([`MultiProof`]).
//!
//! The verifier recomputes the commitment bottom-up and rejects: pruned
//! extensions whose path any proven key still matches (hiding a present
//! key), `vtag = 1` when a proven key terminates at the branch (hiding a
//! value), `vtag = 2` when none does (non-canonical), lying bitmaps (the
//! subtree fold breaks), and trailing bytes.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use spitz_crypto::{smt16_empty, smt16_node, Hash, SMT16_LEVELS};
use spitz_storage::{
    mpt_branch_commitment, mpt_commitment, mpt_extension_commitment, mpt_leaf_commitment,
    mpt_value_hash, Chunk, ChunkKind, ChunkStore, StorageError,
};

use crate::codec::{put_bytes, put_hash, Reader};
use crate::proof::{IndexProof, MultiProof};
use crate::siri::{SiriIndex, SiriKind};

/// Proof-step tag: leaf node, path and value revealed.
const STEP_LEAF: u8 = 0x00;
/// Proof-step tag: extension node followed by its child's step.
const STEP_EXT: u8 = 0x01;
/// Proof-step tag: extension node whose subtree is pruned to a commitment.
const STEP_EXT_PRUNED: u8 = 0x02;
/// Proof-step tag: branch node with sparse-subtree sibling hashes.
const STEP_BRANCH: u8 = 0x03;

/// Decoded trie node.
#[derive(Debug, Clone, PartialEq, Eq)]
enum MptNode {
    /// Remaining nibble path and the stored value.
    Leaf { path: Vec<u8>, value: Vec<u8> },
    /// Shared nibble path and the child it leads to.
    Extension { path: Vec<u8>, child: Hash },
    /// One child slot per nibble plus an optional value for keys ending here.
    Branch {
        children: Box<[Option<Hash>; 16]>,
        value: Option<Vec<u8>>,
    },
}

impl MptNode {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            MptNode::Leaf { path, value } => {
                out.push(0u8);
                put_bytes(&mut out, path);
                put_bytes(&mut out, value);
            }
            MptNode::Extension { path, child } => {
                out.push(1u8);
                put_bytes(&mut out, path);
                put_hash(&mut out, child);
            }
            MptNode::Branch { children, value } => {
                out.push(2u8);
                let mut bitmap: u16 = 0;
                for (i, child) in children.iter().enumerate() {
                    if child.is_some() {
                        bitmap |= 1 << i;
                    }
                }
                out.extend_from_slice(&bitmap.to_be_bytes());
                for child in children.iter().flatten() {
                    put_hash(&mut out, child);
                }
                match value {
                    Some(v) => {
                        out.push(1);
                        put_bytes(&mut out, v);
                    }
                    None => out.push(0),
                }
            }
        }
        out
    }

    fn decode(data: &[u8]) -> Option<MptNode> {
        let mut r = Reader::new(data);
        match r.u8()? {
            0 => {
                let path = r.bytes()?.to_vec();
                let value = r.bytes()?.to_vec();
                Some(MptNode::Leaf { path, value })
            }
            1 => {
                let path = r.bytes()?.to_vec();
                let child = r.hash()?;
                Some(MptNode::Extension { path, child })
            }
            2 => {
                let hi = r.u8()?;
                let lo = r.u8()?;
                let bitmap = u16::from_be_bytes([hi, lo]);
                let mut children: [Option<Hash>; 16] = Default::default();
                for (i, slot) in children.iter_mut().enumerate() {
                    if bitmap & (1 << i) != 0 {
                        *slot = Some(r.hash()?);
                    }
                }
                let value = if r.u8()? == 1 {
                    Some(r.bytes()?.to_vec())
                } else {
                    None
                };
                Some(MptNode::Branch {
                    children: Box::new(children),
                    value,
                })
            }
            _ => None,
        }
    }
}

/// Child node addresses of an encoded MPT node (empty for a leaf); `None`
/// when the payload does not decode as an MPT node.
pub(crate) fn node_children(payload: &[u8]) -> Option<Vec<Hash>> {
    MptNode::decode(payload).map(|node| match node {
        MptNode::Leaf { .. } => Vec::new(),
        MptNode::Extension { child, .. } => vec![child],
        MptNode::Branch { children, .. } => children.iter().flatten().copied().collect(),
    })
}

/// Convert a key to its nibble path (two nibbles per byte, high first).
fn to_nibbles(key: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.len() * 2);
    for &b in key {
        out.push(b >> 4);
        out.push(b & 0x0f);
    }
    out
}

/// Convert a nibble path back to bytes (paths always have even length when
/// they represent whole keys).
fn from_nibbles(nibbles: &[u8]) -> Vec<u8> {
    nibbles
        .chunks(2)
        .map(|pair| (pair[0] << 4) | pair.get(1).copied().unwrap_or(0))
        .collect()
}

fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// The Merkle Patricia Trie.
pub struct MerklePatriciaTrie {
    store: Arc<dyn ChunkStore>,
    root: Hash,
    len: usize,
    /// Caches branch subtree folds across inserts and proofs (see
    /// [`BranchMemo`]); purely an accelerator, never observable in output.
    memo: BranchMemo,
}

/// Abstraction over "where node payloads come from" so that the same lookup
/// code serves both the live trie (chunk store) and client-side proof
/// verification (a map of revealed payloads).
trait NodeSource {
    fn payload(&self, hash: &Hash) -> Option<Vec<u8>>;
}

struct StoreSource<'a>(&'a Arc<dyn ChunkStore>);

impl NodeSource for StoreSource<'_> {
    fn payload(&self, hash: &Hash) -> Option<Vec<u8>> {
        self.0
            .get_kind(hash, ChunkKind::MptNode)
            .ok()
            .map(|c| c.data().to_vec())
    }
}

/// Adapter letting any payload-fetch closure act as a [`NodeSource`]; this
/// is how the server's proof-node cache reuses the exact proof builders the
/// in-process path uses (guaranteeing byte-identical proofs).
struct FnSource<'a>(&'a dyn Fn(&Hash) -> Option<Vec<u8>>);

impl NodeSource for FnSource<'_> {
    fn payload(&self, hash: &Hash) -> Option<Vec<u8>> {
        (self.0)(hash)
    }
}

struct ProofSource(HashMap<Hash, Vec<u8>>);

impl NodeSource for ProofSource {
    fn payload(&self, hash: &Hash) -> Option<Vec<u8>> {
        self.0.get(hash).cloned()
    }
}

/// Walk a trie from `root` looking for the value at `nibbles`.
///
/// Returns `Err(())` when a needed node cannot be resolved (incomplete
/// proof / corrupt store), `Ok(None)` for a proven absence.
fn lookup<S: NodeSource>(
    source: &S,
    root: Hash,
    nibbles: &[u8],
    mut visit: impl FnMut(&[u8]),
) -> Result<Option<Vec<u8>>, ()> {
    if root.is_zero() {
        return Ok(None);
    }
    let mut hash = root;
    let mut remaining = nibbles;
    loop {
        let payload = source.payload(&hash).ok_or(())?;
        visit(&payload);
        let node = MptNode::decode(&payload).ok_or(())?;
        match node {
            MptNode::Leaf { path, value } => {
                return Ok((path == remaining).then_some(value));
            }
            MptNode::Extension { path, child } => {
                if remaining.len() < path.len() || remaining[..path.len()] != path[..] {
                    return Ok(None);
                }
                remaining = &remaining[path.len()..];
                hash = child;
            }
            MptNode::Branch { children, value } => {
                if remaining.is_empty() {
                    return Ok(value);
                }
                match children[remaining[0] as usize] {
                    Some(child) => {
                        remaining = &remaining[1..];
                        hash = child;
                    }
                    None => return Ok(None),
                }
            }
        }
    }
}

impl MerklePatriciaTrie {
    /// Create an empty trie writing its nodes into `store`.
    pub fn new(store: Arc<dyn ChunkStore>) -> Self {
        MerklePatriciaTrie {
            store,
            root: Hash::ZERO,
            len: 0,
            memo: BranchMemo::new(),
        }
    }

    /// Open the trie at an existing root, recomputing the entry count.
    pub fn open(store: Arc<dyn ChunkStore>, root: Hash) -> Option<Self> {
        let mut trie = MerklePatriciaTrie {
            store,
            root,
            len: 0,
            memo: BranchMemo::new(),
        };
        if root.is_zero() {
            return Some(trie);
        }
        if !trie.store.contains(&root) {
            return None;
        }
        let mut count = 0usize;
        trie.walk(&root, &mut Vec::new(), &mut |_, _| count += 1, &mut None);
        trie.len = count;
        Some(trie)
    }

    fn save(&self, node: &MptNode) -> Result<Hash, StorageError> {
        self.store
            .try_put(Chunk::new(ChunkKind::MptNode, node.encode()))
    }

    /// Persist a branch node, maintaining its sparse-subtree [`RegionTable`]
    /// incrementally instead of refolding from scratch.
    ///
    /// `reuse` names the branch being replaced: `Some((old, Some(nib)))`
    /// when exactly slot `nib` changed (memo hit → copy the old table and
    /// recompute only the 4-entry spine), `Some((old, None))` when only the
    /// branch value changed (children identical → the old table is the new
    /// table), `None` for a freshly created branch. The commitment is then
    /// one hash over `(bitmap, table root, value hash)` and is seeded into
    /// the chunk via [`Chunk::with_address`], skipping the store's own
    /// subtree refold.
    fn save_branch(
        &self,
        reuse: Option<(Hash, Option<usize>)>,
        children: Box<[Option<Hash>; 16]>,
        value: Option<Vec<u8>>,
    ) -> Result<Hash, StorageError> {
        let mut bitmap: u16 = 0;
        let mut slots = [Hash::ZERO; 16];
        for (i, child) in children.iter().enumerate() {
            if let Some(h) = child {
                bitmap |= 1 << i;
                slots[i] = *h;
            }
        }
        let reused = reuse.and_then(|(old, nib)| self.memo.lookup(&old).map(|t| (t, nib)));
        let table = match reused {
            Some((table, None)) => table,
            Some((table, Some(nib))) => {
                let mut fresh = *table;
                refresh_region_spine(&mut fresh, &slots, nib);
                Arc::new(fresh)
            }
            None => Arc::new(build_region_table(&slots)),
        };
        let value_part = match &value {
            Some(v) => mpt_value_hash(v),
            None => Hash::ZERO,
        };
        let commitment = mpt_branch_commitment(bitmap, &table[14], &value_part);
        self.memo.remember(commitment, table);
        let node = MptNode::Branch { children, value };
        self.store.try_put(Chunk::with_address(
            ChunkKind::MptNode,
            node.encode(),
            commitment,
        ))
    }

    fn load(&self, hash: &Hash) -> Option<MptNode> {
        let chunk = self.store.get_kind(hash, ChunkKind::MptNode).ok()?;
        MptNode::decode(chunk.data())
    }

    /// Recursive insert; returns the hash of the replacement node and whether
    /// a new key was added. A storage failure while persisting any node
    /// aborts the insert with the trie root untouched.
    fn insert_rec(
        &self,
        node: Option<Hash>,
        path: &[u8],
        value: &[u8],
    ) -> Result<(Hash, bool), StorageError> {
        let Some(hash) = node else {
            return Ok((
                self.save(&MptNode::Leaf {
                    path: path.to_vec(),
                    value: value.to_vec(),
                })?,
                true,
            ));
        };
        let node = self.load(&hash).expect("mpt node missing from store");
        match node {
            MptNode::Leaf {
                path: lpath,
                value: lvalue,
            } => {
                if lpath == path {
                    return Ok((
                        self.save(&MptNode::Leaf {
                            path: lpath,
                            value: value.to_vec(),
                        })?,
                        false,
                    ));
                }
                let cp = common_prefix(&lpath, path);
                let mut children: [Option<Hash>; 16] = Default::default();
                let mut branch_value = None;

                let lrem = &lpath[cp..];
                if lrem.is_empty() {
                    branch_value = Some(lvalue);
                } else {
                    children[lrem[0] as usize] = Some(self.save(&MptNode::Leaf {
                        path: lrem[1..].to_vec(),
                        value: lvalue,
                    })?);
                }
                let prem = &path[cp..];
                let mut branch_value2 = branch_value;
                if prem.is_empty() {
                    branch_value2 = Some(value.to_vec());
                } else {
                    children[prem[0] as usize] = Some(self.save(&MptNode::Leaf {
                        path: prem[1..].to_vec(),
                        value: value.to_vec(),
                    })?);
                }
                let branch = self.save_branch(None, Box::new(children), branch_value2)?;
                let result = if cp > 0 {
                    self.save(&MptNode::Extension {
                        path: path[..cp].to_vec(),
                        child: branch,
                    })?
                } else {
                    branch
                };
                Ok((result, true))
            }
            MptNode::Extension { path: epath, child } => {
                let cp = common_prefix(&epath, path);
                if cp == epath.len() {
                    let (new_child, added) = self.insert_rec(Some(child), &path[cp..], value)?;
                    return Ok((
                        self.save(&MptNode::Extension {
                            path: epath,
                            child: new_child,
                        })?,
                        added,
                    ));
                }
                // Split the extension at the divergence point.
                let mut children: [Option<Hash>; 16] = Default::default();
                let mut branch_value = None;
                let erem = &epath[cp..];
                let echild = if erem.len() > 1 {
                    self.save(&MptNode::Extension {
                        path: erem[1..].to_vec(),
                        child,
                    })?
                } else {
                    child
                };
                children[erem[0] as usize] = Some(echild);

                let prem = &path[cp..];
                if prem.is_empty() {
                    branch_value = Some(value.to_vec());
                } else {
                    children[prem[0] as usize] = Some(self.save(&MptNode::Leaf {
                        path: prem[1..].to_vec(),
                        value: value.to_vec(),
                    })?);
                }
                let branch = self.save_branch(None, Box::new(children), branch_value)?;
                let result = if cp > 0 {
                    self.save(&MptNode::Extension {
                        path: path[..cp].to_vec(),
                        child: branch,
                    })?
                } else {
                    branch
                };
                Ok((result, true))
            }
            MptNode::Branch {
                mut children,
                value: bvalue,
            } => {
                if path.is_empty() {
                    let added = bvalue.is_none();
                    return Ok((
                        self.save_branch(Some((hash, None)), children, Some(value.to_vec()))?,
                        added,
                    ));
                }
                let idx = path[0] as usize;
                let (new_child, added) = self.insert_rec(children[idx], &path[1..], value)?;
                children[idx] = Some(new_child);
                Ok((
                    self.save_branch(Some((hash, Some(idx))), children, bvalue)?,
                    added,
                ))
            }
        }
    }

    /// In-order traversal; calls `emit(key_nibbles, value)` for every entry
    /// and appends node payloads to `proof` when provided.
    fn walk(
        &self,
        hash: &Hash,
        prefix: &mut Vec<u8>,
        emit: &mut impl FnMut(&[u8], &[u8]),
        proof: &mut Option<&mut IndexProof>,
    ) {
        let Some(chunk) = self.store.get_kind(hash, ChunkKind::MptNode).ok() else {
            return;
        };
        if let Some(p) = proof.as_deref_mut() {
            p.push_node(chunk.data().to_vec());
        }
        let Some(node) = MptNode::decode(chunk.data()) else {
            return;
        };
        match node {
            MptNode::Leaf { path, value } => {
                let depth = path.len();
                prefix.extend_from_slice(&path);
                emit(prefix, &value);
                prefix.truncate(prefix.len() - depth);
            }
            MptNode::Extension { path, child } => {
                let depth = path.len();
                prefix.extend_from_slice(&path);
                self.walk(&child, prefix, emit, proof);
                prefix.truncate(prefix.len() - depth);
            }
            MptNode::Branch { children, value } => {
                if let Some(v) = value {
                    emit(prefix, &v);
                }
                for (i, child) in children.iter().enumerate() {
                    if let Some(child) = child {
                        prefix.push(i as u8);
                        self.walk(child, prefix, emit, proof);
                        prefix.pop();
                    }
                }
            }
        }
    }

    fn range_impl(
        &self,
        start: &[u8],
        end: &[u8],
        mut proof: Option<&mut IndexProof>,
    ) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        if self.root.is_zero() || start >= end {
            return out;
        }
        let mut prefix = Vec::new();
        self.walk(
            &self.root.clone(),
            &mut prefix,
            &mut |nibbles, value| {
                let key = from_nibbles(nibbles);
                if key.as_slice() >= start && key.as_slice() < end {
                    out.push((key, value.to_vec()));
                }
            },
            &mut proof,
        );
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Verify a point-lookup proof: decode the compact trie-shaped blob,
    /// recompute the sparse-branch commitment bottom-up, and check both the
    /// root and the claimed value (or absence).
    pub fn verify_proof(root: Hash, key: &[u8], value: Option<&[u8]>, proof: &IndexProof) -> bool {
        if root.is_zero() {
            return value.is_none() && proof.is_empty();
        }
        if proof.nodes.len() != 1 {
            return false;
        }
        let items = [(key.to_vec(), value.map(|v| v.to_vec()))];
        verify_blob(root, &items, &proof.nodes[0])
    }

    /// Verify a batched multi-key proof: one compact blob proving every
    /// `(key, claimed value)` pair in `items` against `root`.
    pub fn verify_multi_proof(
        root: Hash,
        items: &[(Vec<u8>, Option<Vec<u8>>)],
        proof: &MultiProof,
    ) -> bool {
        if items.is_empty() {
            return proof.is_empty();
        }
        if root.is_zero() {
            return items.iter().all(|(_, v)| v.is_none()) && proof.is_empty();
        }
        if proof.nodes.len() != 1 {
            return false;
        }
        verify_blob(root, items, &proof.nodes[0])
    }

    /// Verify a **complete** range proof. The MPT's range scan is an
    /// in-order walk of the whole trie (the SIRI weakness the paper's
    /// ablation quantifies), so the proof reveals every node; the verifier
    /// re-walks the revealed nodes from the root — failing if any referenced
    /// node was withheld — and checks that the claimed entries are exactly
    /// the collected entries restricted to `start <= key < end`.
    pub fn verify_range_proof(
        root: Hash,
        start: &[u8],
        end: &[u8],
        entries: &[(Vec<u8>, Vec<u8>)],
        proof: &IndexProof,
    ) -> bool {
        if root.is_zero() || start >= end {
            return entries.is_empty();
        }
        // Range proofs still reveal whole payloads (the scan is a full
        // in-order walk); the map is keyed by the sparse-branch commitment
        // because that is what child pointers — and the root — now are.
        let source = ProofSource(
            proof
                .nodes
                .iter()
                .filter_map(|n| mpt_commitment(n).map(|h| (h, n.clone())))
                .collect(),
        );
        let mut all = Vec::new();
        if collect_entries(&source, &root, &mut Vec::new(), &mut all).is_err() {
            return false;
        }
        let mut in_range: Vec<(Vec<u8>, Vec<u8>)> = all
            .into_iter()
            .filter(|(k, _)| k.as_slice() >= start && k.as_slice() < end)
            .collect();
        in_range.sort_by(|a, b| a.0.cmp(&b.0));
        in_range == entries
    }
}

/// Walk every node reachable from `hash` through `source`, collecting all
/// `(key, value)` entries. `Err(())` when a referenced node cannot be
/// resolved — for proof verification that means the server withheld part of
/// the trie.
fn collect_entries<S: NodeSource>(
    source: &S,
    hash: &Hash,
    prefix: &mut Vec<u8>,
    out: &mut Vec<(Vec<u8>, Vec<u8>)>,
) -> Result<(), ()> {
    let payload = source.payload(hash).ok_or(())?;
    let node = MptNode::decode(&payload).ok_or(())?;
    match node {
        MptNode::Leaf { path, value } => {
            let depth = path.len();
            prefix.extend_from_slice(&path);
            out.push((from_nibbles(prefix), value));
            prefix.truncate(prefix.len() - depth);
        }
        MptNode::Extension { path, child } => {
            let depth = path.len();
            prefix.extend_from_slice(&path);
            collect_entries(source, &child, prefix, out)?;
            prefix.truncate(prefix.len() - depth);
        }
        MptNode::Branch { children, value } => {
            if let Some(v) = value {
                out.push((from_nibbles(prefix), v));
            }
            for (i, child) in children.iter().enumerate() {
                if let Some(child) = child {
                    prefix.push(i as u8);
                    collect_entries(source, child, prefix, out)?;
                    prefix.pop();
                }
            }
        }
    }
    Ok(())
}

/// One key's position in a (possibly multi-key) descent: the index into the
/// caller's key list plus the nibbles still to be consumed.
#[derive(Clone, Copy)]
struct Pending<'a> {
    idx: usize,
    rest: &'a [u8],
}

/// Sparse-subtree root of the slot region `[lo, lo + 2^level)`.
///
/// Reference implementation: the proof builders use a precomputed
/// [`RegionTable`] instead (see [`region_from_table`]), which holds the same
/// values without refolding — equivalence is asserted in tests.
#[cfg_attr(not(test), allow(dead_code))]
fn region_root(slots: &[Hash; 16], lo: usize, level: usize) -> Hash {
    let width = 1usize << level;
    if slots[lo..lo + width].iter().all(Hash::is_zero) {
        return smt16_empty(level);
    }
    if level == 0 {
        return slots[lo];
    }
    smt16_node(
        &region_root(slots, lo, level - 1),
        &region_root(slots, lo + width / 2, level - 1),
    )
}

/// Every interior hash of a branch's 16-slot sparse subtree, laid out
/// level-major: `[0..8)` the eight level-1 pair nodes, `[8..12)` the four
/// level-2 nodes, `[12..14)` the two level-3 nodes, `[14]` the subtree root.
/// Level-0 regions are the slots themselves and are not stored.
///
/// Entry values equal [`region_root`] of the corresponding region exactly
/// (empty regions hold the [`smt16_empty`] constants, which *are* the folds
/// of zero slots), so substituting table entries for recursive folds changes
/// no proof byte.
type RegionTable = [Hash; 15];

/// Fold the full table bottom-up. Empty regions take the precomputed
/// constant instead of hashing, mirroring [`region_root`]'s shortcut, so a
/// near-empty branch costs only its occupied spine.
fn build_region_table(slots: &[Hash; 16]) -> RegionTable {
    let mut occ: u16 = 0;
    for (i, slot) in slots.iter().enumerate() {
        if !slot.is_zero() {
            occ |= 1 << i;
        }
    }
    let mut table = [Hash::ZERO; 15];
    for j in 0..8 {
        table[j] = if occ & (0b11 << (2 * j)) == 0 {
            smt16_empty(1)
        } else {
            smt16_node(&slots[2 * j], &slots[2 * j + 1])
        };
    }
    for j in 0..4 {
        table[8 + j] = if occ & (0b1111 << (4 * j)) == 0 {
            smt16_empty(2)
        } else {
            smt16_node(&table[2 * j], &table[2 * j + 1])
        };
    }
    for j in 0..2 {
        table[12 + j] = if occ & (0xff << (8 * j)) == 0 {
            smt16_empty(3)
        } else {
            smt16_node(&table[8 + 2 * j], &table[8 + 2 * j + 1])
        };
    }
    table[14] = if occ == 0 {
        smt16_empty(4)
    } else {
        smt16_node(&table[12], &table[13])
    };
    table
}

/// Recompute only the four table entries on slot `nib`'s spine after that
/// slot changed — the incremental counterpart of [`build_region_table`] used
/// by the insert path. The slot must be occupied after the change (inserts
/// never clear slots), so no empty shortcut applies on the spine.
fn refresh_region_spine(table: &mut RegionTable, slots: &[Hash; 16], nib: usize) {
    debug_assert!(!slots[nib].is_zero());
    let j = nib >> 1;
    table[j] = smt16_node(&slots[2 * j], &slots[2 * j + 1]);
    let j = nib >> 2;
    table[8 + j] = smt16_node(&table[2 * j], &table[2 * j + 1]);
    let j = nib >> 3;
    table[12 + j] = smt16_node(&table[8 + 2 * j], &table[8 + 2 * j + 1]);
    table[14] = smt16_node(&table[12], &table[13]);
}

/// Look up the root of region `[lo, lo + 2^level)` in the table —
/// constant-time replacement for [`region_root`].
fn region_from_table(slots: &[Hash; 16], table: &RegionTable, lo: usize, level: usize) -> Hash {
    match level {
        0 => slots[lo],
        1 => table[lo / 2],
        2 => table[8 + lo / 4],
        3 => table[12 + lo / 8],
        _ => table[14],
    }
}

/// Content-addressed memo of branch region tables (every interior hash of
/// a branch's 16-slot sparse subtree), keyed by the branch's *commitment*.
///
/// Building one proof step over a branch refolds its sparse subtree from
/// scratch — dozens of SHA-256 compressions that dominate the verified-read
/// path once proofs themselves are compact. Because the key is the
/// commitment (which binds bitmap, subtree root, and value hash), an entry
/// can never go stale: a changed branch has a different commitment and
/// simply misses. Bounded (~16 MiB); on overflow the map is cleared
/// wholesale (entries are cheap to rebuild — one subtree fold).
///
/// Shared by the live trie's proof builders *and* its insert path (which
/// maintains tables incrementally, refolding only the changed slot's
/// spine), and held per-root by the server's proof-node cache.
pub struct BranchMemo {
    map: Mutex<HashMap<Hash, Arc<RegionTable>>>,
}

impl BranchMemo {
    /// Entry cap: ~512 bytes per entry → at most ~16 MiB per memo.
    const CAP: usize = 1 << 15;

    /// Create an empty memo.
    pub fn new() -> Self {
        BranchMemo {
            map: Mutex::new(HashMap::new()),
        }
    }

    /// Drop every entry (the server calls this on epoch advance together
    /// with its proof-node cache, keeping the pair's memory bounded).
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// Number of memoized branches (telemetry / tests).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when no branch is memoized.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lookup(&self, commitment: &Hash) -> Option<Arc<RegionTable>> {
        self.lock().get(commitment).cloned()
    }

    fn remember(&self, commitment: Hash, table: Arc<RegionTable>) {
        let mut map = self.lock();
        if map.len() >= Self::CAP {
            map.clear();
        }
        map.insert(commitment, table);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<Hash, Arc<RegionTable>>> {
        // A panic while holding the lock leaves only a cache behind; the
        // data is content-addressed, so a poisoned map is still valid.
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Default for BranchMemo {
    fn default() -> Self {
        Self::new()
    }
}

/// Emit the sibling subtree hashes of a branch step, depth-first over the
/// sparse subtree: an off-path region contributes one hash when occupied and
/// nothing when empty (the verifier substitutes the cached empty constant);
/// on-path regions recurse until the descended slots themselves, whose
/// commitments the verifier recomputes.
fn emit_siblings(
    slots: &[Hash; 16],
    on_path: &[bool; 16],
    table: &RegionTable,
    lo: usize,
    level: usize,
    out: &mut Vec<u8>,
) {
    let width = 1usize << level;
    if !on_path[lo..lo + width].iter().any(|&b| b) {
        if slots[lo..lo + width].iter().any(|h| !h.is_zero()) {
            put_hash(out, &region_from_table(slots, table, lo, level));
        }
        return;
    }
    if level == 0 {
        return;
    }
    emit_siblings(slots, on_path, table, lo, level - 1, out);
    emit_siblings(slots, on_path, table, lo + width / 2, level - 1, out);
}

/// Recursively encode the proof step for the node at `hash`, descending
/// along every pending key, recording resolved values into `values`.
/// `memo` (when given) caches branch subtree tables across proofs.
fn encode_step<S: NodeSource>(
    source: &S,
    hash: &Hash,
    pendings: &[Pending<'_>],
    memo: Option<&BranchMemo>,
    out: &mut Vec<u8>,
    values: &mut [Option<Vec<u8>>],
) -> Result<(), ()> {
    let payload = source.payload(hash).ok_or(())?;
    let node = MptNode::decode(&payload).ok_or(())?;
    match node {
        MptNode::Leaf { path, value } => {
            out.push(STEP_LEAF);
            put_bytes(out, &path);
            put_bytes(out, &value);
            for p in pendings {
                if p.rest == path.as_slice() {
                    values[p.idx] = Some(value.clone());
                }
            }
        }
        MptNode::Extension { path, child } => {
            let descend: Vec<Pending<'_>> = pendings
                .iter()
                .filter(|p| p.rest.len() >= path.len() && p.rest[..path.len()] == path[..])
                .map(|p| Pending {
                    idx: p.idx,
                    rest: &p.rest[path.len()..],
                })
                .collect();
            if descend.is_empty() {
                // Every pending key diverges inside the extension path: the
                // subtree is irrelevant and collapses to its commitment.
                out.push(STEP_EXT_PRUNED);
                put_bytes(out, &path);
                put_hash(out, &child);
            } else {
                out.push(STEP_EXT);
                put_bytes(out, &path);
                encode_step(source, &child, &descend, memo, out, values)?;
            }
        }
        MptNode::Branch { children, value } => {
            out.push(STEP_BRANCH);
            let mut bitmap: u16 = 0;
            let mut slots = [Hash::ZERO; 16];
            for (i, child) in children.iter().enumerate() {
                if let Some(h) = child {
                    bitmap |= 1 << i;
                    slots[i] = *h;
                }
            }
            out.extend_from_slice(&bitmap.to_be_bytes());
            let terminating = pendings.iter().any(|p| p.rest.is_empty());
            match (&value, terminating) {
                (Some(v), true) => {
                    out.push(2);
                    put_bytes(out, v);
                    for p in pendings {
                        if p.rest.is_empty() {
                            values[p.idx] = Some(v.clone());
                        }
                    }
                }
                (Some(v), false) => {
                    out.push(1);
                    put_hash(out, &mpt_value_hash(v));
                }
                (None, _) => out.push(0),
            }
            let mut on_path = [false; 16];
            for p in pendings {
                if let Some(&nib) = p.rest.first() {
                    on_path[nib as usize] = true;
                }
            }
            for nib in 0..16usize {
                if !on_path[nib] {
                    continue;
                }
                // An on-path empty slot proves absence via the clear bitmap
                // bit; only occupied slots have a child step to encode.
                if let Some(child) = &children[nib] {
                    let group: Vec<Pending<'_>> = pendings
                        .iter()
                        .filter(|p| p.rest.first() == Some(&(nib as u8)))
                        .map(|p| Pending {
                            idx: p.idx,
                            rest: &p.rest[1..],
                        })
                        .collect();
                    encode_step(source, child, &group, memo, out, values)?;
                }
            }
            let table = match memo.and_then(|m| m.lookup(hash)) {
                Some(table) => table,
                None => {
                    let table = Arc::new(build_region_table(&slots));
                    if let Some(m) = memo {
                        m.remember(*hash, Arc::clone(&table));
                    }
                    table
                }
            };
            emit_siblings(&slots, &on_path, &table, 0, SMT16_LEVELS, out);
        }
    }
    Ok(())
}

/// Recursively fold the sparse subtree of a branch step, consuming sibling
/// hashes from the blob in the same depth-first order [`emit_siblings`]
/// wrote them. `computed` holds the recomputed commitments of on-path slots
/// (`Hash::ZERO` for a proven-absent slot).
fn fold_subtree(
    r: &mut Reader<'_>,
    on_path: &[bool; 16],
    computed: &[Option<Hash>; 16],
    bitmap: u16,
    lo: usize,
    level: usize,
) -> Result<Hash, ()> {
    let width = 1usize << level;
    if !on_path[lo..lo + width].iter().any(|&b| b) {
        let mask = (((1u32 << width) - 1) << lo) as u16;
        if bitmap & mask == 0 {
            return Ok(smt16_empty(level));
        }
        return r.hash().ok_or(());
    }
    if level == 0 {
        return computed[lo].ok_or(());
    }
    let left = fold_subtree(r, on_path, computed, bitmap, lo, level - 1)?;
    let right = fold_subtree(r, on_path, computed, bitmap, lo + width / 2, level - 1)?;
    Ok(smt16_node(&left, &right))
}

/// Decode and check one proof step, returning the recomputed commitment of
/// the node it describes. Soundness rejections are documented step by step;
/// structural recursion is bounded because every descent strips at least one
/// nibble from every key that continues.
fn decode_step(
    r: &mut Reader<'_>,
    pendings: &[Pending<'_>],
    values: &mut [Option<Vec<u8>>],
) -> Result<Hash, ()> {
    if pendings.is_empty() {
        // Steps exist only where some key descends; a pendings-free step is
        // non-canonical and would unbound the recursion.
        return Err(());
    }
    match r.u8().ok_or(())? {
        STEP_LEAF => {
            let path = r.bytes().ok_or(())?.to_vec();
            let value = r.bytes().ok_or(())?.to_vec();
            for p in pendings {
                if p.rest == path.as_slice() {
                    values[p.idx] = Some(value.clone());
                }
            }
            Ok(mpt_leaf_commitment(&path, &mpt_value_hash(&value)))
        }
        STEP_EXT => {
            let path = r.bytes().ok_or(())?.to_vec();
            if path.is_empty() {
                return Err(());
            }
            let descend: Vec<Pending<'_>> = pendings
                .iter()
                .filter(|p| p.rest.len() >= path.len() && p.rest[..path.len()] == path[..])
                .map(|p| Pending {
                    idx: p.idx,
                    rest: &p.rest[path.len()..],
                })
                .collect();
            let child = decode_step(r, &descend, values)?;
            Ok(mpt_extension_commitment(&path, &child))
        }
        STEP_EXT_PRUNED => {
            let path = r.bytes().ok_or(())?.to_vec();
            if path.is_empty() {
                return Err(());
            }
            // A pruned subtree must be irrelevant to every proven key: if
            // any key's remainder still matches the extension path, the
            // prover could be hiding that key's presence behind the prune.
            if pendings
                .iter()
                .any(|p| p.rest.len() >= path.len() && p.rest[..path.len()] == path[..])
            {
                return Err(());
            }
            let child = r.hash().ok_or(())?;
            Ok(mpt_extension_commitment(&path, &child))
        }
        STEP_BRANCH => {
            let hi = r.u8().ok_or(())?;
            let lo = r.u8().ok_or(())?;
            let bitmap = u16::from_be_bytes([hi, lo]);
            let terminating = pendings.iter().any(|p| p.rest.is_empty());
            let value_part = match r.u8().ok_or(())? {
                0 => Hash::ZERO,
                1 => {
                    // A hash-only value while a proven key terminates here
                    // would let the prover claim absence of a present value.
                    if terminating {
                        return Err(());
                    }
                    r.hash().ok_or(())?
                }
                2 => {
                    if !terminating {
                        return Err(());
                    }
                    let v = r.bytes().ok_or(())?.to_vec();
                    for p in pendings {
                        if p.rest.is_empty() {
                            values[p.idx] = Some(v.clone());
                        }
                    }
                    mpt_value_hash(&v)
                }
                _ => return Err(()),
            };
            let mut on_path = [false; 16];
            for p in pendings {
                if let Some(&nib) = p.rest.first() {
                    on_path[nib as usize] = true;
                }
            }
            let mut computed: [Option<Hash>; 16] = [None; 16];
            for nib in 0..16usize {
                if !on_path[nib] {
                    continue;
                }
                if bitmap & (1 << nib) == 0 {
                    // Clear bitmap bit on a descended slot: proven absence;
                    // a lying bitmap breaks the subtree fold below.
                    computed[nib] = Some(Hash::ZERO);
                    continue;
                }
                let group: Vec<Pending<'_>> = pendings
                    .iter()
                    .filter(|p| p.rest.first() == Some(&(nib as u8)))
                    .map(|p| Pending {
                        idx: p.idx,
                        rest: &p.rest[1..],
                    })
                    .collect();
                computed[nib] = Some(decode_step(r, &group, values)?);
            }
            let subtree = fold_subtree(r, &on_path, &computed, bitmap, 0, SMT16_LEVELS)?;
            Ok(mpt_branch_commitment(bitmap, &subtree, &value_part))
        }
        _ => Err(()),
    }
}

/// Verify one compact blob against `root` for every `(key, claim)` item.
fn verify_blob(root: Hash, items: &[(Vec<u8>, Option<Vec<u8>>)], blob: &[u8]) -> bool {
    let nibbles: Vec<Vec<u8>> = items.iter().map(|(k, _)| to_nibbles(k)).collect();
    let pendings: Vec<Pending<'_>> = nibbles
        .iter()
        .enumerate()
        .map(|(idx, rest)| Pending { idx, rest })
        .collect();
    let mut resolved: Vec<Option<Vec<u8>>> = vec![None; items.len()];
    let mut r = Reader::new(blob);
    let Ok(commitment) = decode_step(&mut r, &pendings, &mut resolved) else {
        return false;
    };
    if !r.is_exhausted() || commitment != root {
        return false;
    }
    resolved
        .iter()
        .zip(items)
        .all(|(got, (_, claimed))| got == claimed)
}

/// Build the compact multi-key proof blob from an arbitrary payload source.
/// Returns the per-key values and the blob; `None` when a node on some path
/// cannot be resolved.
#[allow(clippy::type_complexity)]
fn build_blob<S: NodeSource>(
    source: &S,
    root: Hash,
    keys: &[Vec<u8>],
    memo: Option<&BranchMemo>,
) -> Option<(Vec<Option<Vec<u8>>>, Vec<u8>)> {
    let nibbles: Vec<Vec<u8>> = keys.iter().map(|k| to_nibbles(k)).collect();
    let pendings: Vec<Pending<'_>> = nibbles
        .iter()
        .enumerate()
        .map(|(idx, rest)| Pending { idx, rest })
        .collect();
    let mut values: Vec<Option<Vec<u8>>> = vec![None; keys.len()];
    let mut blob = Vec::new();
    encode_step(source, &root, &pendings, memo, &mut blob, &mut values).ok()?;
    Some((values, blob))
}

/// Build a single-key compact proof reading node payloads through `fetch`.
/// Shared by the in-process [`SiriIndex::get_with_proof`] path and the
/// server's proof-node cache, so both produce byte-identical proofs. The
/// optional `memo` only caches subtree folds — it never changes a proof
/// byte (table entries equal the recursive fold results exactly).
pub(crate) fn build_proof_with(
    fetch: &dyn Fn(&Hash) -> Option<Vec<u8>>,
    root: Hash,
    key: &[u8],
    memo: Option<&BranchMemo>,
) -> Option<(Option<Vec<u8>>, IndexProof)> {
    if root.is_zero() {
        return Some((None, IndexProof::empty()));
    }
    let keys = [key.to_vec()];
    let (mut values, blob) = build_blob(&FnSource(fetch), root, &keys, memo)?;
    Some((values.pop().flatten(), IndexProof { nodes: vec![blob] }))
}

/// Build a batched multi-key compact proof reading node payloads through
/// `fetch`; see [`build_proof_with`].
pub(crate) fn build_multi_with(
    fetch: &dyn Fn(&Hash) -> Option<Vec<u8>>,
    root: Hash,
    keys: &[Vec<u8>],
    memo: Option<&BranchMemo>,
) -> Option<(Vec<Option<Vec<u8>>>, MultiProof)> {
    if keys.is_empty() {
        return Some((Vec::new(), MultiProof::empty()));
    }
    if root.is_zero() {
        return Some((vec![None; keys.len()], MultiProof::empty()));
    }
    let (values, blob) = build_blob(&FnSource(fetch), root, keys, memo)?;
    Some((values, MultiProof { nodes: vec![blob] }))
}

impl SiriIndex for MerklePatriciaTrie {
    fn kind(&self) -> SiriKind {
        SiriKind::MerklePatriciaTrie
    }

    fn root(&self) -> Hash {
        self.root
    }

    fn len(&self) -> usize {
        self.len
    }

    fn try_insert(&mut self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StorageError> {
        let nibbles = to_nibbles(&key);
        let root = if self.root.is_zero() {
            None
        } else {
            Some(self.root)
        };
        let (new_root, added) = self.insert_rec(root, &nibbles, &value)?;
        self.root = new_root;
        if added {
            self.len += 1;
        }
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        lookup(
            &StoreSource(&self.store),
            self.root,
            &to_nibbles(key),
            |_| {},
        )
        .ok()
        .flatten()
    }

    fn get_with_proof(&self, key: &[u8]) -> (Option<Vec<u8>>, IndexProof) {
        let store = Arc::clone(&self.store);
        let fetch = move |hash: &Hash| {
            store
                .get_kind(hash, ChunkKind::MptNode)
                .ok()
                .map(|c| c.data().to_vec())
        };
        build_proof_with(&fetch, self.root, key, Some(&self.memo))
            .unwrap_or((None, IndexProof::empty()))
    }

    fn multi_get_with_proof(&self, keys: &[Vec<u8>]) -> (Vec<Option<Vec<u8>>>, MultiProof) {
        let store = Arc::clone(&self.store);
        let fetch = move |hash: &Hash| {
            store
                .get_kind(hash, ChunkKind::MptNode)
                .ok()
                .map(|c| c.data().to_vec())
        };
        build_multi_with(&fetch, self.root, keys, Some(&self.memo))
            .unwrap_or_else(|| (vec![None; keys.len()], MultiProof::empty()))
    }

    fn range(&self, start: &[u8], end: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.range_impl(start, end, None)
    }

    fn range_with_proof(&self, start: &[u8], end: &[u8]) -> (Vec<(Vec<u8>, Vec<u8>)>, IndexProof) {
        let mut proof = IndexProof::empty();
        let entries = self.range_impl(start, end, Some(&mut proof));
        (entries, proof)
    }

    fn checkout(&self, root: Hash) -> Option<Box<dyn SiriIndex>> {
        MerklePatriciaTrie::open(Arc::clone(&self.store), root)
            .map(|t| Box::new(t) as Box<dyn SiriIndex>)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use spitz_crypto::sha256;
    use spitz_storage::InMemoryChunkStore;

    fn new_trie() -> MerklePatriciaTrie {
        MerklePatriciaTrie::new(InMemoryChunkStore::shared())
    }

    fn key(i: u32) -> Vec<u8> {
        format!("key-{i:06}").into_bytes()
    }

    fn value(i: u32) -> Vec<u8> {
        format!("value-{i}").into_bytes()
    }

    #[test]
    fn nibble_conversion_roundtrip() {
        for data in [&b""[..], b"a", b"hello", &[0x00, 0xff, 0x7f]] {
            assert_eq!(from_nibbles(&to_nibbles(data)), data.to_vec());
        }
        assert_eq!(to_nibbles(&[0xab]), vec![0xa, 0xb]);
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut trie = new_trie();
        for i in 0..300u32 {
            trie.insert(key(i), value(i));
        }
        assert_eq!(trie.len(), 300);
        for i in 0..300u32 {
            assert_eq!(trie.get(&key(i)), Some(value(i)), "key {i}");
        }
        assert_eq!(trie.get(b"missing"), None);
    }

    #[test]
    fn prefix_keys_coexist() {
        let mut trie = new_trie();
        trie.insert(b"a".to_vec(), b"1".to_vec());
        trie.insert(b"ab".to_vec(), b"2".to_vec());
        trie.insert(b"abc".to_vec(), b"3".to_vec());
        trie.insert(b"abd".to_vec(), b"4".to_vec());
        assert_eq!(trie.get(b"a"), Some(b"1".to_vec()));
        assert_eq!(trie.get(b"ab"), Some(b"2".to_vec()));
        assert_eq!(trie.get(b"abc"), Some(b"3".to_vec()));
        assert_eq!(trie.get(b"abd"), Some(b"4".to_vec()));
        assert_eq!(trie.len(), 4);
        assert_eq!(trie.get(b"abe"), None);
        assert_eq!(trie.get(b"abcd"), None);
    }

    #[test]
    fn overwrite_keeps_len() {
        let mut trie = new_trie();
        trie.insert(b"k".to_vec(), b"v1".to_vec());
        trie.insert(b"k".to_vec(), b"v2".to_vec());
        assert_eq!(trie.len(), 1);
        assert_eq!(trie.get(b"k"), Some(b"v2".to_vec()));
    }

    #[test]
    fn structural_invariance_under_insertion_order() {
        let keys: Vec<u32> = (0..200).collect();
        let mut t1 = new_trie();
        for &i in &keys {
            t1.insert(key(i), value(i));
        }
        let mut shuffled = keys.clone();
        shuffled.shuffle(&mut StdRng::seed_from_u64(3));
        let mut t2 = new_trie();
        for &i in &shuffled {
            t2.insert(key(i), value(i));
        }
        assert_eq!(t1.root(), t2.root());
    }

    #[test]
    fn proofs_verify_and_detect_tampering() {
        let mut trie = new_trie();
        for i in 0..200u32 {
            trie.insert(key(i), value(i));
        }
        let root = trie.root();
        let (v, proof) = trie.get_with_proof(&key(77));
        assert_eq!(v, Some(value(77)));
        assert!(MerklePatriciaTrie::verify_proof(
            root,
            &key(77),
            v.as_deref(),
            &proof
        ));
        assert!(!MerklePatriciaTrie::verify_proof(
            root,
            &key(77),
            Some(b"forged"),
            &proof
        ));
        assert!(!MerklePatriciaTrie::verify_proof(
            root,
            &key(77),
            None,
            &proof
        ));
        assert!(!MerklePatriciaTrie::verify_proof(
            sha256(b"x"),
            &key(77),
            v.as_deref(),
            &proof
        ));

        let (none, absence) = trie.get_with_proof(b"not-present");
        assert!(none.is_none());
        assert!(MerklePatriciaTrie::verify_proof(
            root,
            b"not-present",
            None,
            &absence
        ));
    }

    #[test]
    fn range_returns_sorted_window_with_valid_proof() {
        let mut trie = new_trie();
        for i in 0..300u32 {
            trie.insert(key(i), value(i));
        }
        let (start, end) = (key(50), key(60));
        let (entries, proof) = trie.range_with_proof(&start, &end);
        assert_eq!(entries.len(), 10);
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(MerklePatriciaTrie::verify_range_proof(
            trie.root(),
            &start,
            &end,
            &entries,
            &proof
        ));

        let mut forged = entries.clone();
        forged[3].1 = b"forged".to_vec();
        assert!(!MerklePatriciaTrie::verify_range_proof(
            trie.root(),
            &start,
            &end,
            &forged,
            &proof
        ));
        // Omitting an entry breaks verification (completeness).
        let mut truncated = entries.clone();
        truncated.remove(4);
        assert!(!MerklePatriciaTrie::verify_range_proof(
            trie.root(),
            &start,
            &end,
            &truncated,
            &proof
        ));
    }

    #[test]
    fn single_child_branch_proofs() {
        // "a" = [6,1]; "ab" = [6,1,6,2]: extension [6,1] → branch that
        // stores "a"'s value and has exactly one child (nibble 6).
        let mut trie = new_trie();
        trie.insert(b"a".to_vec(), b"1".to_vec());
        trie.insert(b"ab".to_vec(), b"2".to_vec());
        let root = trie.root();
        for (k, v) in [
            (&b"a"[..], Some(&b"1"[..])),
            (b"ab", Some(b"2")),
            (b"ac", None),
        ] {
            let (got, proof) = trie.get_with_proof(k);
            assert_eq!(got.as_deref(), v);
            assert!(MerklePatriciaTrie::verify_proof(root, k, v, &proof));
        }
        // The branch value must be revealed, not hashed, when the proven key
        // terminates at the branch: flipping the claim fails.
        let (_, proof) = trie.get_with_proof(b"a");
        assert!(!MerklePatriciaTrie::verify_proof(root, b"a", None, &proof));
        assert!(!MerklePatriciaTrie::verify_proof(
            root,
            b"a",
            Some(b"2"),
            &proof
        ));
    }

    #[test]
    fn sixteen_child_branch_proofs_stay_compact() {
        // 16 single-byte keys 0x00, 0x10, …, 0xF0: the root branch has all
        // 16 children occupied — the worst case the sparse subtree exists
        // for. The old payload proof carried 15 sibling hashes (515-byte
        // branch node); the compact step carries at most 4.
        let mut trie = new_trie();
        for n in 0..16u8 {
            trie.insert(vec![n << 4], vec![n]);
        }
        let root = trie.root();
        for n in 0..16u8 {
            let key = vec![n << 4];
            let (v, proof) = trie.get_with_proof(&key);
            assert_eq!(v, Some(vec![n]));
            assert!(MerklePatriciaTrie::verify_proof(
                root,
                &key,
                v.as_deref(),
                &proof
            ));
            // step tags + bitmap + 4 sibling hashes + leaf ≪ one 515-byte
            // full branch payload.
            assert!(proof.size_bytes() < 200, "proof was {}", proof.size_bytes());
        }
    }

    #[test]
    fn extension_boundary_absences() {
        // Keys share the long prefix "abc", so the trie has an extension
        // covering it; "abd…" diverges inside the extension path and the
        // proof prunes the subtree to its commitment.
        let mut trie = new_trie();
        trie.insert(b"abc1".to_vec(), b"1".to_vec());
        trie.insert(b"abc2".to_vec(), b"2".to_vec());
        let root = trie.root();
        let (v, proof) = trie.get_with_proof(b"abd1");
        assert!(v.is_none());
        assert!(MerklePatriciaTrie::verify_proof(
            root, b"abd1", None, &proof
        ));
        // The pruned-extension step must be rejected for a key that matches
        // the extension path: it could hide that key's presence.
        assert!(!MerklePatriciaTrie::verify_proof(
            root, b"abc1", None, &proof
        ));
        // A key shorter than the extension path also diverges.
        let (v, proof) = trie.get_with_proof(b"ab");
        assert!(v.is_none());
        assert!(MerklePatriciaTrie::verify_proof(root, b"ab", None, &proof));
    }

    #[test]
    fn digest_stable_across_reopen() {
        let store = InMemoryChunkStore::shared();
        let mut trie = MerklePatriciaTrie::new(Arc::clone(&store) as Arc<dyn ChunkStore>);
        for i in 0..50u32 {
            trie.insert(key(i), value(i));
        }
        let root = trie.root();
        let mut reopened =
            MerklePatriciaTrie::open(Arc::clone(&store) as Arc<dyn ChunkStore>, root).unwrap();
        assert_eq!(reopened.root(), root);
        assert_eq!(reopened.len(), 50);
        reopened.insert(key(50), value(50));

        let mut fresh = new_trie();
        for i in 0..51u32 {
            fresh.insert(key(i), value(i));
        }
        assert_eq!(reopened.root(), fresh.root());
    }

    #[test]
    fn legacy_index_node_chunks_still_round_trip() {
        // Old segments stored trie nodes as ChunkKind::IndexNode, addressed
        // by the plain tagged hash. Those chunks must stay readable at their
        // old addresses even though new nodes use the commitment scheme.
        let store = InMemoryChunkStore::shared();
        let payload = MptNode::Leaf {
            path: vec![1, 2, 3],
            value: b"old".to_vec(),
        }
        .encode();
        let legacy = Chunk::new(ChunkKind::IndexNode, payload.clone());
        let legacy_addr = store.put(legacy);
        assert_eq!(legacy_addr, crate::proof::hash_index_node(&payload));
        assert_eq!(
            store
                .get_kind(&legacy_addr, ChunkKind::IndexNode)
                .unwrap()
                .data(),
            payload.as_slice()
        );
        // The same payload stored as an MptNode lives at its commitment —
        // a different address — so the two schemes coexist in one store.
        let modern_addr = store.put(Chunk::new(ChunkKind::MptNode, payload.clone()));
        assert_ne!(modern_addr, legacy_addr);
        assert_eq!(modern_addr, mpt_commitment(&payload).unwrap());
    }

    #[test]
    fn multi_proof_verifies_and_shares_upper_nodes() {
        let mut trie = new_trie();
        for i in 0..200u32 {
            trie.insert(key(i), value(i));
        }
        let root = trie.root();
        let keys: Vec<Vec<u8>> = (0..16u32).map(|i| key(i * 12)).collect();
        let (values, multi) = trie.multi_get_with_proof(&keys);
        let items: Vec<(Vec<u8>, Option<Vec<u8>>)> =
            keys.iter().cloned().zip(values.clone()).collect();
        assert!(values.iter().all(|v| v.is_some()));
        assert!(MerklePatriciaTrie::verify_multi_proof(root, &items, &multi));

        // Batching shares every common upper step, so even a spread-out
        // batch beats 16 independent proofs...
        let singles: usize = keys
            .iter()
            .map(|k| trie.get_with_proof(k).1.size_bytes())
            .sum();
        assert!(
            multi.size_bytes() < singles,
            "multi {} singles {}",
            multi.size_bytes(),
            singles
        );
        // ...and a batch of 16 *related* keys (one scan's worth) beats even
        // 4 independent proofs — the headline batching win.
        let near: Vec<Vec<u8>> = (0..16u32).map(key).collect();
        let (near_values, near_multi) = trie.multi_get_with_proof(&near);
        let near_items: Vec<(Vec<u8>, Option<Vec<u8>>)> =
            near.iter().cloned().zip(near_values).collect();
        assert!(MerklePatriciaTrie::verify_multi_proof(
            root,
            &near_items,
            &near_multi
        ));
        let near_singles: usize = near
            .iter()
            .map(|k| trie.get_with_proof(k).1.size_bytes())
            .sum();
        assert!(
            near_multi.size_bytes() * 4 < near_singles,
            "multi {} singles {}",
            near_multi.size_bytes(),
            near_singles
        );

        // Mixed present/absent batches verify too.
        let mixed = vec![key(3), b"nope".to_vec(), key(7)];
        let (mv, mp) = trie.multi_get_with_proof(&mixed);
        assert_eq!(mv[1], None);
        let mixed_items: Vec<(Vec<u8>, Option<Vec<u8>>)> = mixed.iter().cloned().zip(mv).collect();
        assert!(MerklePatriciaTrie::verify_multi_proof(
            root,
            &mixed_items,
            &mp
        ));

        // Reordering (key, value) pairs keeps the proof valid — the blob is
        // canonical in trie order, not input order...
        let mut reordered = items.clone();
        reordered.swap(0, 1);
        assert!(MerklePatriciaTrie::verify_multi_proof(
            root, &reordered, &multi
        ));
        // ...but cross-wiring values between keys is caught.
        let mut swapped = items.clone();
        let tmp = swapped[0].1.clone();
        swapped[0].1 = swapped[1].1.clone();
        swapped[1].1 = tmp;
        assert!(!MerklePatriciaTrie::verify_multi_proof(
            root, &swapped, &multi
        ));
    }

    #[test]
    fn mutated_proof_blobs_are_rejected() {
        let mut trie = new_trie();
        for i in 0..64u32 {
            trie.insert(key(i), value(i));
        }
        let root = trie.root();
        let keys: Vec<Vec<u8>> = vec![key(1), key(20), key(63)];
        let (values, multi) = trie.multi_get_with_proof(&keys);
        let items: Vec<(Vec<u8>, Option<Vec<u8>>)> = keys.iter().cloned().zip(values).collect();
        assert!(MerklePatriciaTrie::verify_multi_proof(root, &items, &multi));

        let blob = &multi.nodes[0];
        // Every single-byte flip anywhere in the blob must be rejected.
        for i in 0..blob.len() {
            let mut tampered = blob.clone();
            tampered[i] ^= 0x01;
            let bad = MultiProof {
                nodes: vec![tampered],
            };
            assert!(
                !MerklePatriciaTrie::verify_multi_proof(root, &items, &bad),
                "flip at byte {i} accepted"
            );
        }
        // Truncation and trailing garbage are rejected.
        for cut in 1..blob.len() {
            let bad = MultiProof {
                nodes: vec![blob[..cut].to_vec()],
            };
            assert!(!MerklePatriciaTrie::verify_multi_proof(root, &items, &bad));
        }
        let mut extended = blob.clone();
        extended.push(0);
        let bad = MultiProof {
            nodes: vec![extended],
        };
        assert!(!MerklePatriciaTrie::verify_multi_proof(root, &items, &bad));
        // A second spliced-in node is rejected outright.
        let bad = MultiProof {
            nodes: vec![blob.clone(), blob.clone()],
        };
        assert!(!MerklePatriciaTrie::verify_multi_proof(root, &items, &bad));
    }

    #[test]
    fn historical_roots_remain_readable() {
        let store = InMemoryChunkStore::shared();
        let mut trie = MerklePatriciaTrie::new(Arc::clone(&store) as Arc<dyn ChunkStore>);
        trie.insert(b"a".to_vec(), b"1".to_vec());
        let root1 = trie.root();
        trie.insert(b"b".to_vec(), b"2".to_vec());

        let old = trie.checkout(root1).unwrap();
        assert_eq!(old.len(), 1);
        assert_eq!(old.get(b"a"), Some(b"1".to_vec()));
        assert_eq!(old.get(b"b"), None);
    }

    #[test]
    fn empty_trie_behaviour() {
        let trie = new_trie();
        assert!(trie.is_empty());
        assert_eq!(trie.get(b"x"), None);
        let (v, proof) = trie.get_with_proof(b"x");
        assert!(v.is_none());
        assert!(MerklePatriciaTrie::verify_proof(
            Hash::ZERO,
            b"x",
            None,
            &proof
        ));
        assert!(trie.range(b"a", b"z").is_empty());
    }

    /// The precomputed [`RegionTable`] must hold exactly the values the
    /// recursive [`region_root`] fold produces for every region at every
    /// level, including the smt16 root, across sparse/dense/empty slot
    /// patterns — that equality is what makes memoized proofs byte-identical
    /// to fresh ones.
    #[test]
    fn region_table_matches_recursive_fold() {
        let patterns: &[&[usize]] = &[
            &[],
            &[0],
            &[15],
            &[3, 4],
            &[0, 1, 2, 3],
            &[1, 5, 9, 13],
            &[0, 2, 4, 6, 8, 10, 12, 14],
            &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15],
        ];
        for occupied in patterns {
            let mut slots = [Hash::ZERO; 16];
            for &i in *occupied {
                slots[i] = sha256(format!("slot-{i}").as_bytes());
            }
            let table = build_region_table(&slots);
            for level in 0..=SMT16_LEVELS {
                let width = 1usize << level;
                for lo in (0..16).step_by(width) {
                    assert_eq!(
                        region_from_table(&slots, &table, lo, level),
                        region_root(&slots, lo, level),
                        "pattern {occupied:?}, region [{lo}, {})",
                        lo + width
                    );
                }
            }
            assert_eq!(table[14], spitz_crypto::smt16_root(&slots));

            // The incremental spine refresh must agree with a full rebuild
            // after any single slot changes.
            for nib in 0..16 {
                let mut changed = slots;
                changed[nib] = sha256(format!("changed-{nib}").as_bytes());
                let mut refreshed = table;
                refresh_region_spine(&mut refreshed, &changed, nib);
                assert_eq!(
                    refreshed,
                    build_region_table(&changed),
                    "pattern {occupied:?}, refreshed slot {nib}"
                );
            }
        }
    }

    /// Proofs built through a warm [`BranchMemo`] must be byte-identical to
    /// proofs built with no memo at all — the memo is a pure accelerator.
    #[test]
    fn memoized_proofs_are_byte_identical() {
        let mut trie = new_trie();
        for i in 0..500u32 {
            trie.insert(key(i), value(i));
        }
        let store = Arc::clone(&trie.store);
        let fetch = move |hash: &Hash| {
            store
                .get_kind(hash, ChunkKind::MptNode)
                .ok()
                .map(|c| c.data().to_vec())
        };
        let cold = BranchMemo::new();
        assert!(cold.is_empty());
        for i in (0..500u32).step_by(17) {
            let k = key(i);
            let (bare_value, bare) = build_proof_with(&fetch, trie.root(), &k, None).unwrap();
            // Twice through the same memo: the second pass hits warm tables.
            for _ in 0..2 {
                let (memo_value, memoized) =
                    build_proof_with(&fetch, trie.root(), &k, Some(&cold)).unwrap();
                assert_eq!(bare_value, memo_value);
                assert_eq!(bare.nodes, memoized.nodes, "key {i}");
            }
            // The trie's own memo (warmed by the insert path) as well.
            let (trie_value, from_trie) = trie.get_with_proof(&k);
            assert_eq!(bare_value, trie_value);
            assert_eq!(bare.nodes, from_trie.nodes, "key {i}");
        }
        assert!(!cold.is_empty());
        let keys: Vec<Vec<u8>> = (0..64u32).map(key).collect();
        let (bare_values, bare_multi) = build_multi_with(&fetch, trie.root(), &keys, None).unwrap();
        let (memo_values, memo_multi) =
            build_multi_with(&fetch, trie.root(), &keys, Some(&cold)).unwrap();
        assert_eq!(bare_values, memo_values);
        assert_eq!(bare_multi.nodes, memo_multi.nodes);
        cold.clear();
        assert!(cold.is_empty());
    }
}
