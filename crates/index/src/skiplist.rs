//! Ordered skip list.
//!
//! Section 5 of the paper: "for numeric type, the system uses a skip list to
//! better support range query" in the inverted index. This is a classic
//! multi-level linked list; tower heights are assigned deterministically from
//! a hash of the key so the structure is reproducible in tests and
//! benchmarks (and independent of insertion order).

use spitz_crypto::sha256;

/// Maximum tower height.
const MAX_LEVEL: usize = 16;

/// Sentinel "no next node" arena index.
const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct SkipNode<K, V> {
    key: K,
    value: V,
    /// `forward[l]` is the arena index of the next node at level `l`.
    forward: Vec<usize>,
}

/// An ordered map implemented as a skip list over an arena of nodes.
#[derive(Debug, Clone)]
pub struct SkipList<K, V> {
    /// Forward pointers out of the (implicit) head sentinel.
    head: Vec<usize>,
    nodes: Vec<SkipNode<K, V>>,
    level: usize,
    len: usize,
}

/// Deterministic tower height for a key: geometric with p = 1/2.
fn level_for(key: &[u8]) -> usize {
    let mut data = Vec::with_capacity(key.len() + 4);
    data.extend_from_slice(b"skip");
    data.extend_from_slice(key);
    let h = sha256(&data).prefix_u64();
    ((h.trailing_ones() as usize) + 1).min(MAX_LEVEL)
}

impl<K: Ord + AsRef<[u8]>, V> Default for SkipList<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + AsRef<[u8]>, V> SkipList<K, V> {
    /// Create an empty skip list.
    pub fn new() -> Self {
        SkipList {
            head: vec![NIL; MAX_LEVEL],
            nodes: Vec::new(),
            level: 1,
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn next_idx(&self, from: Option<usize>, level: usize) -> usize {
        match from {
            None => self.head[level],
            Some(i) => self.nodes[i].forward.get(level).copied().unwrap_or(NIL),
        }
    }

    fn set_next(&mut self, from: Option<usize>, level: usize, to: usize) {
        match from {
            None => self.head[level] = to,
            Some(i) => self.nodes[i].forward[level] = to,
        }
    }

    /// For each level, the last node strictly before `key` (None = head).
    fn predecessors(&self, key: &K) -> Vec<Option<usize>> {
        let mut update: Vec<Option<usize>> = vec![None; MAX_LEVEL];
        let mut current: Option<usize> = None;
        for level in (0..self.level).rev() {
            loop {
                let next = self.next_idx(current, level);
                if next != NIL && self.nodes[next].key < *key {
                    current = Some(next);
                } else {
                    break;
                }
            }
            update[level] = current;
        }
        update
    }

    /// Insert or overwrite a key.
    pub fn insert(&mut self, key: K, value: V) {
        let update = self.predecessors(&key);
        let candidate = self.next_idx(update[0], 0);
        if candidate != NIL && self.nodes[candidate].key == key {
            self.nodes[candidate].value = value;
            return;
        }

        let node_level = level_for(key.as_ref());
        if node_level > self.level {
            self.level = node_level;
        }
        let idx = self.nodes.len();
        let mut forward = vec![NIL; node_level];
        #[allow(clippy::needless_range_loop)]
        for level in 0..node_level {
            forward[level] = self.next_idx(update[level], level);
        }
        self.nodes.push(SkipNode {
            key,
            value,
            forward,
        });
        for (level, &predecessor) in update.iter().enumerate().take(node_level) {
            self.set_next(predecessor, level, idx);
        }
        self.len += 1;
    }

    /// Point lookup.
    pub fn get(&self, key: &K) -> Option<&V> {
        let update = self.predecessors(key);
        let candidate = self.next_idx(update[0], 0);
        if candidate != NIL && self.nodes[candidate].key == *key {
            Some(&self.nodes[candidate].value)
        } else {
            None
        }
    }

    /// Mutable point lookup.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let update = self.predecessors(key);
        let candidate = self.next_idx(update[0], 0);
        if candidate != NIL && self.nodes[candidate].key == *key {
            Some(&mut self.nodes[candidate].value)
        } else {
            None
        }
    }

    /// All entries with `start <= key < end`, in key order.
    pub fn range(&self, start: &K, end: &K) -> Vec<(&K, &V)> {
        let mut out = Vec::new();
        if start >= end {
            return out;
        }
        let update = self.predecessors(start);
        let mut current = self.next_idx(update[0], 0);
        while current != NIL {
            let node = &self.nodes[current];
            if node.key >= *end {
                break;
            }
            out.push((&node.key, &node.value));
            current = node.forward[0];
        }
        out
    }

    /// Iterate over all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        let mut order = Vec::with_capacity(self.len);
        let mut current = self.head[0];
        while current != NIL {
            order.push(current);
            current = self.nodes[current].forward[0];
        }
        order
            .into_iter()
            .map(move |i| (&self.nodes[i].key, &self.nodes[i].value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn key(i: u64) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn empty_list() {
        let list: SkipList<Vec<u8>, u32> = SkipList::new();
        assert!(list.is_empty());
        assert_eq!(list.get(&key(1)), None);
        assert!(list.range(&key(0), &key(100)).is_empty());
        assert_eq!(list.iter().count(), 0);
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut list = SkipList::new();
        let mut order: Vec<u64> = (0..2000).collect();
        order.shuffle(&mut StdRng::seed_from_u64(1));
        for &i in &order {
            list.insert(key(i), i);
        }
        assert_eq!(list.len(), 2000);
        for i in 0..2000 {
            assert_eq!(list.get(&key(i)), Some(&i), "key {i}");
        }
        assert_eq!(list.get(&key(99_999)), None);
    }

    #[test]
    fn overwrite_does_not_grow() {
        let mut list = SkipList::new();
        list.insert(key(5), "a");
        list.insert(key(5), "b");
        assert_eq!(list.len(), 1);
        assert_eq!(list.get(&key(5)), Some(&"b"));
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut list = SkipList::new();
        list.insert(key(1), vec![1u32]);
        list.get_mut(&key(1)).unwrap().push(2);
        assert_eq!(list.get(&key(1)), Some(&vec![1, 2]));
        assert!(list.get_mut(&key(2)).is_none());
    }

    #[test]
    fn iteration_is_sorted() {
        let mut list = SkipList::new();
        let mut order: Vec<u64> = (0..500).collect();
        order.shuffle(&mut StdRng::seed_from_u64(2));
        for &i in &order {
            list.insert(key(i), i);
        }
        let collected: Vec<u64> = list.iter().map(|(_, v)| *v).collect();
        let expected: Vec<u64> = (0..500).collect();
        assert_eq!(collected, expected);
    }

    #[test]
    fn range_queries_are_bounded_and_sorted() {
        let mut list = SkipList::new();
        for i in (0..1000u64).step_by(3) {
            list.insert(key(i), i);
        }
        let result = list.range(&key(100), &key(200));
        assert!(!result.is_empty());
        for (_, v) in &result {
            assert!(**v >= 100 && **v < 200);
        }
        let values: Vec<u64> = result.iter().map(|(_, v)| **v).collect();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(values, sorted);

        assert!(list.range(&key(200), &key(100)).is_empty());
        assert!(list.range(&key(5000), &key(6000)).is_empty());
    }

    #[test]
    fn structure_is_insertion_order_independent() {
        let keys: Vec<u64> = (0..300).collect();
        let mut a = SkipList::new();
        for &i in &keys {
            a.insert(key(i), i);
        }
        let mut shuffled = keys.clone();
        shuffled.shuffle(&mut StdRng::seed_from_u64(77));
        let mut b = SkipList::new();
        for &i in &shuffled {
            b.insert(key(i), i);
        }
        let va: Vec<_> = a.iter().map(|(k, v)| (k.clone(), *v)).collect();
        let vb: Vec<_> = b.iter().map(|(k, v)| (k.clone(), *v)).collect();
        assert_eq!(va, vb);
    }
}
