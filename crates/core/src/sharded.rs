//! Multi-shard Spitz: N independent ledgers behind one keyspace, with
//! two-phase commit for cross-shard writes and a cross-shard digest.
//!
//! This is the paper's processor-node control layer (Section 5.2) promoted
//! from a simulation over bare MVCC stores to the real storage stack: "the
//! solution is to add distributed transactions to each node, and follow the
//! two-phase commit (2PC) protocol to coordinate each transaction so that
//! transactions committed by different nodes can be made serializable."
//! Concretely:
//!
//! * **One shard = one processor node.** Each shard owns a full [`SpitzDb`]
//!   — its own chunk store (in-memory, or durable under its own directory),
//!   unified ledger and group-commit pipeline. Keys route to shards by the
//!   same content hash `spitz_txn`'s 2PC coordinator uses, so the mapping
//!   is deterministic and client-recomputable.
//! * **Single-key operations** (`put`/`get`/`get_verified`) route straight
//!   to the owning shard and cost exactly what a single-ledger Spitz costs
//!   — this is where the partitioned-journal shape gets its scaling: W
//!   writers spread over N shards contend on N ledgers and N commit
//!   pipelines instead of one.
//! * **Cross-shard batches** run real two-phase commit: every involved
//!   shard's [`spitz_txn::Participant`] validates under MVCC + 2PL
//!   (no-wait locks, so distributed deadlock is impossible), durably
//!   *stages* its part in its own chunk store, and votes. Only when every
//!   shard votes yes do the prepared writes flow into each shard's ledger
//!   (via that shard's commit pipeline); on any no-vote — conflict, disk
//!   full, crash injection — every shard aborts and nothing becomes
//!   visible. A coordinator crash between prepare and commit is resolved by
//!   [`ShardedDb::recover`] with presumed abort.
//! * **The cross-shard digest** ([`ShardedDigest`]) is a small Merkle tree
//!   (RFC 6962 shape, from `spitz_crypto::merkle`) whose leaves are the
//!   per-shard [`Digest`]s. A client pins the single root and can verify a
//!   read anywhere in the keyspace: the shard's ledger proof chains to the
//!   shard digest, and an audit path chains the shard digest to the pinned
//!   root ([`ShardedProof`]). The digest is recomputed per commit epoch and
//!   persisted as the named root [`SHARDED_HEAD_ROOT`] through the same
//!   log-embedded root-record path the per-shard ledger heads use.
//! * **The epoch fence** makes [`ShardedDb::digest`] a true consistent cut
//!   under concurrent writers: every commit path holds the fence shared,
//!   and a cut takes it exclusively (draining any in-flight commits) before
//!   snapshotting the per-shard digests — so a published root can never mix
//!   one half of a cross-shard transaction with the other half missing.
//!   [`ShardedDb::snapshot`] pins such a cut as a
//!   [`crate::snapshot::ShardedSnapshot`] for repeatable verified reads,
//!   including verified cross-shard ranges ([`ShardedRangeProof`]).

use std::path::Path;
use std::sync::Arc;

use spitz_crypto::merkle::{AuditProof, MerkleTree};
use spitz_crypto::Hash;
use spitz_ledger::{CommitPipeline, Digest, Ledger};
use spitz_obs::{Counter, Histogram, TelemetryHandle, TelemetrySnapshot};
use spitz_storage::{Chunk, ChunkKind, ChunkStore, CompactionReport, DurableConfig};
use spitz_txn::TwoPhaseCoordinator;
use spitz_txn::{CcScheme, Participant, PreparedApply, PreparedGlobal, TimestampOracle};

pub use crate::proof::{ShardMultiGroup, ShardedMultiProof, ShardedProof, ShardedRangeProof};

use crate::db::{SpitzConfig, SpitzDb};
use crate::error::DbError;
use crate::snapshot::ShardedSnapshot;
use crate::staged::{StagedEntry, StagedLog};
use crate::Result;

/// Named root under which the latest cross-shard digest chunk is published
/// (in shard 0's store), mirroring `spitz/ledger/head` one level up.
pub const SHARDED_HEAD_ROOT: &str = "spitz/sharded/head";

/// Named root of the per-shard membership record: which shard index of how
/// many this store is. Guards a sharded database against being reassembled
/// with the wrong shard count or with shard directories swapped.
pub const SHARD_MEMBER_ROOT: &str = "spitz/sharded/member";

/// Which shard of `shards` owns `key`. This is the routing function used by
/// [`ShardedDb`], `spitz_txn`'s [`TwoPhaseCoordinator`] and verifying
/// clients alike: the SHA-256 prefix of the key modulo the shard count.
pub fn shard_for(key: &[u8], shards: usize) -> usize {
    debug_assert!(shards > 0, "shard count must be positive");
    (spitz_crypto::sha256(key).prefix_u64() % shards as u64) as usize
}

/// Configuration of a sharded Spitz instance.
#[derive(Debug, Clone, Copy)]
pub struct ShardedConfig {
    /// Number of shards (independent ledgers). Must be at least 1.
    pub shards: usize,
    /// Per-shard Spitz configuration (SIRI kind, CC scheme, durability,
    /// compaction trigger).
    pub spitz: SpitzConfig,
    /// Per-shard storage tuning (segment size, cache budget, fsync
    /// policy). Only [`ShardedDb::open`] uses it; in-memory and
    /// caller-provided-store instances ignore it.
    pub durable: DurableConfig,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 4,
            spitz: SpitzConfig::default(),
            durable: DurableConfig::default(),
        }
    }
}

impl ShardedConfig {
    /// This configuration with a different shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// This configuration with a different per-shard Spitz configuration.
    pub fn with_spitz(mut self, spitz: SpitzConfig) -> Self {
        self.spitz = spitz;
        self
    }

    /// This configuration with different per-shard storage tuning.
    pub fn with_durable(mut self, durable: DurableConfig) -> Self {
        self.durable = durable;
        self
    }
}

/// The cross-shard digest: what a client of a sharded Spitz pins. One
/// Merkle root over the per-shard ledger digests covers the whole keyspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedDigest {
    /// Commit epoch: total number of blocks sealed across all shards. Every
    /// committed write advances some shard's chain, so the epoch advances
    /// with every commit and is reproducible after a restart.
    pub epoch: u64,
    /// Merkle root over the encoded per-shard digests (RFC 6962 shape).
    pub root: Hash,
    /// The per-shard digests, in shard order (the tree's leaves).
    pub shards: Vec<Digest>,
}

impl ShardedDigest {
    /// Compute the digest over per-shard digests, in shard order.
    pub fn over(shards: Vec<Digest>) -> ShardedDigest {
        let epoch = shards.iter().map(block_count).sum();
        ShardedDigest {
            epoch,
            root: merkle_tree(&shards).root(),
            shards,
        }
    }

    /// Self-consistency: the root and epoch really are the ones implied by
    /// the per-shard digests.
    pub fn verify(&self) -> bool {
        !self.shards.is_empty()
            && self.root == merkle_tree(&self.shards).root()
            && self.epoch == self.shards.iter().map(block_count).sum::<u64>()
    }

    /// Audit path proving that shard `shard`'s digest is a leaf of this
    /// root. `None` when the shard index is out of range.
    pub fn membership_proof(&self, shard: usize) -> Option<AuditProof> {
        merkle_tree(&self.shards).audit_proof(shard)
    }

    /// Canonical byte encoding, stored as the payload of the
    /// [`SHARDED_HEAD_ROOT`] digest chunk.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 4 + self.shards.len() * DIGEST_ENCODED_LEN);
        out.extend_from_slice(&self.epoch.to_be_bytes());
        out.extend_from_slice(&(self.shards.len() as u32).to_be_bytes());
        for digest in &self.shards {
            out.extend_from_slice(&digest.encode());
        }
        out
    }

    /// Inverse of [`ShardedDigest::encode`]. Returns `None` for malformed
    /// bytes or when the decoded digest is not self-consistent.
    pub fn decode(bytes: &[u8]) -> Option<ShardedDigest> {
        let epoch = u64::from_be_bytes(bytes.get(..8)?.try_into().ok()?);
        let count = u32::from_be_bytes(bytes.get(8..12)?.try_into().ok()?) as usize;
        let body = bytes.get(12..)?;
        if body.len() != count * DIGEST_ENCODED_LEN {
            return None;
        }
        let shards = body
            .chunks(DIGEST_ENCODED_LEN)
            .map(Digest::decode)
            .collect::<Option<Vec<Digest>>>()?;
        // The root is recomputed from the leaves, so only the epoch and
        // non-emptiness can actually be inconsistent with the payload.
        if shards.is_empty() || epoch != shards.iter().map(block_count).sum::<u64>() {
            return None;
        }
        Some(ShardedDigest {
            epoch,
            root: merkle_tree(&shards).root(),
            shards,
        })
    }
}

/// Byte width of [`Digest::encode`].
const DIGEST_ENCODED_LEN: usize = Digest::ENCODED_LEN;

/// Number of sealed blocks a digest stands for.
fn block_count(digest: &Digest) -> u64 {
    digest.block_count()
}

/// The Merkle tree over encoded per-shard digests.
fn merkle_tree(shards: &[Digest]) -> MerkleTree {
    let leaves: Vec<Vec<u8>> = shards.iter().map(|d| d.encode()).collect();
    MerkleTree::from_leaves(leaves.iter().map(|l| l.as_slice()))
}

/// A cross-shard batch prepared on every involved shard but not yet
/// committed or aborted (2PC phase 1 complete). Finish it with
/// [`ShardedDb::commit_prepared`] / [`ShardedDb::abort_prepared`]; dropping
/// it unfinished models a coordinator crash, which [`ShardedDb::recover`]
/// resolves by presumed abort.
#[derive(Debug)]
pub struct PreparedBatch(PreparedGlobal);

impl PreparedBatch {
    /// The global transaction id assigned by the coordinator.
    pub fn global_txn_id(&self) -> u64 {
        self.0.global_txn_id
    }

    /// Indexes of the shards holding a prepared part of this batch.
    pub fn involved_shards(&self) -> &[usize] {
        &self.0.involved
    }
}

/// The sink wiring one shard's 2PC participant to that shard's ledger:
/// prepared writes are durably staged in the shard's chunk store at phase 1
/// (and recorded in the shard's [`StagedLog`], so a restarted process can
/// find them again) and sealed into the shard's ledger (through its commit
/// pipeline, when one exists) at phase 2.
struct ShardSink {
    shard: usize,
    store: Arc<dyn ChunkStore>,
    ledger: Arc<Ledger>,
    pipeline: Option<Arc<CommitPipeline>>,
    staged: Arc<StagedLog>,
}

impl ShardSink {
    fn commit_writes(
        &self,
        writes: Vec<(Vec<u8>, Vec<u8>)>,
        statement: &str,
    ) -> std::result::Result<(), String> {
        match &self.pipeline {
            Some(pipeline) => pipeline.commit(writes, statement).map(|_| ()),
            None => self.ledger.try_append_block(writes, statement).map(|_| ()),
        }
        .map_err(|e| e.to_string())
    }
}

impl PreparedApply for ShardSink {
    fn stage(
        &self,
        global_txn_id: u64,
        writes: &[(Vec<u8>, Vec<u8>)],
    ) -> std::result::Result<(), String> {
        // Durably stage the prepared writes as a content-addressed chunk.
        // This is the write that makes disk-full surface at *prepare* time
        // (a No vote, global abort) instead of after the commit decision.
        // An aborted transaction's staged chunk is simply never referenced
        // — the same orphan class as rolled-back grouped commits, reclaimed
        // by future segment GC.
        let chunk = Chunk::new(
            ChunkKind::Meta,
            encode_staged(global_txn_id, self.shard, writes),
        );
        let address = self.store.try_put(chunk).map_err(|e| e.to_string())?;
        // Record the staged batch in the shard's durable log so a restart
        // can still find (and resolve) it. Failing this is a No vote too.
        self.staged
            .add(global_txn_id, address)
            .map_err(|e| e.to_string())
    }

    fn apply(
        &self,
        global_txn_id: u64,
        writes: Vec<(Vec<u8>, Vec<u8>)>,
        statement: &str,
    ) -> std::result::Result<(), String> {
        self.commit_writes(writes, statement)?;
        // The batch is sealed in the ledger; drop it from the staged log.
        // A failure here is deliberately ignored: the entry would be
        // re-applied by a later recovery pass, which re-seals the same
        // values (a duplicate block, not divergent state).
        let _ = self.staged.remove(global_txn_id);
        Ok(())
    }

    fn discard(&self, global_txn_id: u64) {
        // Presumed abort: drop the staged-log entry; the staged chunk
        // itself is an unreferenced orphan for segment GC.
        let _ = self.staged.remove(global_txn_id);
    }
}

/// Payload of a staged-writes chunk: magic ‖ gtid ‖ shard ‖ count ‖ entries.
fn encode_staged(global_txn_id: u64, shard: usize, writes: &[(Vec<u8>, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"spitz-2pc-stage\0");
    out.extend_from_slice(&global_txn_id.to_be_bytes());
    out.extend_from_slice(&(shard as u32).to_be_bytes());
    out.extend_from_slice(&(writes.len() as u32).to_be_bytes());
    for (key, value) in writes {
        out.extend_from_slice(&(key.len() as u32).to_be_bytes());
        out.extend_from_slice(key);
        out.extend_from_slice(&(value.len() as u32).to_be_bytes());
        out.extend_from_slice(value);
    }
    out
}

/// A decoded staged batch: `(global_txn_id, shard, writes)`.
type StagedBatch = (u64, usize, Vec<(Vec<u8>, Vec<u8>)>);

/// Inverse of [`encode_staged`]. `None` for malformed bytes.
fn decode_staged(bytes: &[u8]) -> Option<StagedBatch> {
    let bytes = bytes.strip_prefix(b"spitz-2pc-stage\0".as_slice())?;
    let mut r = spitz_index::codec::Reader::new(bytes);
    let global_txn_id = r.u64()?;
    let shard = r.u32()? as usize;
    let count = r.u32()? as usize;
    let mut writes = Vec::with_capacity(count);
    for _ in 0..count {
        let key = r.bytes()?.to_vec();
        let value = r.bytes()?.to_vec();
        writes.push((key, value));
    }
    r.is_exhausted().then_some((global_txn_id, shard, writes))
}

/// Payload of a shard membership record: magic ‖ shard index ‖ shard count
/// ‖ SIRI kind tag.
fn encode_member(shard: usize, shards: usize, kind_tag: u8) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"spitz-shard-member\0");
    out.extend_from_slice(&(shard as u32).to_be_bytes());
    out.extend_from_slice(&(shards as u32).to_be_bytes());
    out.push(kind_tag);
    out
}

/// Sharded-layer instruments: cross-shard proof sizes/latencies and
/// decision-log truncations, resolved once at construction.
struct ShardedObs {
    /// Mirror of [`TelemetryHandle::is_enabled`]: lets the proof paths skip
    /// computing `encoded_len` when nothing records it.
    enabled: bool,
    point_build_nanos: Arc<Histogram>,
    point_bytes: Arc<Histogram>,
    range_build_nanos: Arc<Histogram>,
    range_bytes: Arc<Histogram>,
    multi_build_nanos: Arc<Histogram>,
    multi_bytes: Arc<Histogram>,
    /// Commit-decision log entries removed after their batch fully settled
    /// (the decision no longer protects anything).
    decision_truncations: Arc<Counter>,
}

impl ShardedObs {
    fn new(telemetry: &TelemetryHandle) -> Self {
        ShardedObs {
            enabled: telemetry.is_enabled(),
            point_build_nanos: telemetry.histogram("proof.sharded_point_build_nanos"),
            point_bytes: telemetry.histogram("proof.sharded_point_bytes"),
            range_build_nanos: telemetry.histogram("proof.sharded_range_build_nanos"),
            range_bytes: telemetry.histogram("proof.sharded_range_bytes"),
            multi_build_nanos: telemetry.histogram("proof.sharded_multi_build_nanos"),
            multi_bytes: telemetry.histogram("proof.sharded_multi_bytes"),
            decision_truncations: telemetry.counter("twopc.decision_truncations"),
        }
    }
}

/// The multi-shard Spitz database.
pub struct ShardedDb {
    shards: Vec<Arc<SpitzDb>>,
    coordinator: TwoPhaseCoordinator,
    /// The epoch fence. Every commit path holds it shared; taking a
    /// consistent cut ([`ShardedDb::digest`] / [`ShardedDb::snapshot`] /
    /// verified reads) takes it exclusively, so the per-shard digests it
    /// snapshots can never interleave with a half-applied cross-shard
    /// transaction. Commit epochs themselves come from the shared
    /// `spitz_txn` timestamp oracle the 2PC coordinator allocates from.
    fence: parking_lot::RwLock<()>,
    /// Per-shard durable staged-batch logs (in-doubt bookkeeping).
    staged_logs: Vec<Arc<StagedLog>>,
    /// The coordinator's durable commit-decision log (shard 0's store).
    decisions: StagedLog,
    /// Epoch of the last digest published to [`SHARDED_HEAD_ROOT`].
    /// Serializes publications and keeps a slower concurrent publisher
    /// from rolling the head back to a staler digest.
    published_epoch: parking_lot::Mutex<u64>,
    /// Telemetry registry shared by every shard (and the 2PC coordinator).
    telemetry: TelemetryHandle,
    /// Sharded-layer instruments.
    obs: ShardedObs,
}

impl ShardedDb {
    /// Create an in-memory sharded instance with `shards` shards and the
    /// default per-shard configuration.
    pub fn in_memory(shards: usize) -> Self {
        Self::with_config(ShardedConfig::default().with_shards(shards))
    }

    /// Create an in-memory sharded instance with an explicit configuration.
    pub fn with_config(config: ShardedConfig) -> Self {
        assert!(config.shards >= 1, "need at least one shard");
        // One telemetry registry spans all shards: per-shard instruments
        // aggregate into a single deployment-wide snapshot.
        let telemetry = config.spitz.telemetry_handle();
        let dbs: Vec<Arc<SpitzDb>> = (0..config.shards)
            .map(|_| {
                Arc::new(SpitzDb::with_config_and_telemetry(
                    config.spitz,
                    telemetry.clone(),
                ))
            })
            .collect();
        // In-memory membership records keep the invariants uniform across
        // backends (and are exercised by `with_stores` round-trips).
        for (i, db) in dbs.iter().enumerate() {
            let _ = ensure_member(db.store(), i, config.shards, config.spitz);
        }
        Self::assemble(dbs, telemetry)
    }

    /// Open (or create) a durable sharded instance under `path`: shard `i`
    /// lives in `path/shard-{i:03}` with its own segment files, ledger and
    /// commit pipeline. Reopening with the same configuration reproduces
    /// every per-shard digest and therefore the identical cross-shard
    /// digest; reopening with a different shard count (or mixed-up shard
    /// directories) is rejected via the persisted membership records.
    pub fn open(path: impl AsRef<Path>, config: ShardedConfig) -> Result<Self> {
        assert!(config.shards >= 1, "need at least one shard");
        let path = path.as_ref();
        let telemetry = config.spitz.telemetry_handle();
        let mut dbs = Vec::with_capacity(config.shards);
        for i in 0..config.shards {
            let dir = path.join(format!("shard-{i:03}"));
            let db = Arc::new(SpitzDb::open_with_telemetry(
                &dir,
                config.spitz,
                config.durable,
                telemetry.clone(),
            )?);
            ensure_member(db.store(), i, config.shards, config.spitz)?;
            dbs.push(db);
        }
        let db = Self::assemble(dbs, telemetry);
        // Batches whose commit was durably decided before the previous
        // process died are redone eagerly — their effects were promised, so
        // a reopened database must show them without waiting for an
        // explicit `recover()` call. Undecided staged entries are left for
        // `recover()`: only the caller knows no coordinator still intends
        // to decide them.
        db.resolve_staged(false);
        db.clear_settled_decisions();
        Ok(db)
    }

    /// [`ShardedDb::open`] with a caller-supplied segment-I/O seam threaded
    /// into every shard's durable store. The production seam is
    /// [`spitz_storage::real_io`]; chaos harnesses install one seeded
    /// fault-injector handle shared by all shards so I/O faults land
    /// anywhere in the deployment while the recovery, retry, scrub and
    /// health machinery runs for real.
    pub fn open_with_io(
        path: impl AsRef<Path>,
        config: ShardedConfig,
        io: spitz_storage::SegmentIoHandle,
    ) -> Result<Self> {
        assert!(config.shards >= 1, "need at least one shard");
        let path = path.as_ref();
        let telemetry = config.spitz.telemetry_handle();
        let mut dbs = Vec::with_capacity(config.shards);
        for i in 0..config.shards {
            let dir = path.join(format!("shard-{i:03}"));
            let db = Arc::new(SpitzDb::open_full(
                &dir,
                config.spitz,
                config.durable,
                telemetry.clone(),
                Arc::clone(&io),
            )?);
            ensure_member(db.store(), i, config.shards, config.spitz)?;
            dbs.push(db);
        }
        let db = Self::assemble(dbs, telemetry);
        db.resolve_staged(false);
        db.clear_settled_decisions();
        Ok(db)
    }

    /// Build a sharded instance over caller-provided chunk stores, one per
    /// shard (the hook fault-injection tests use to wrap stores with
    /// failpoints). Each store gets a full `SpitzDb` via
    /// [`SpitzDb::with_store`].
    pub fn with_stores(stores: Vec<Arc<dyn ChunkStore>>, spitz: SpitzConfig) -> Result<Self> {
        assert!(!stores.is_empty(), "need at least one shard store");
        let telemetry = spitz.telemetry_handle();
        let shards = stores.len();
        let mut dbs = Vec::with_capacity(shards);
        for (i, store) in stores.into_iter().enumerate() {
            ensure_member(&store, i, shards, spitz)?;
            dbs.push(Arc::new(SpitzDb::with_store_and_telemetry(
                store,
                spitz,
                telemetry.clone(),
            )?));
        }
        Ok(Self::assemble(dbs, telemetry))
    }

    /// Wire the 2PC layer over already-opened shards. Participants use
    /// MVCC + two-phase locking regardless of the shards' own CC scheme:
    /// 2PL takes its (no-wait) locks in the prepare phase, so a `Yes` vote
    /// guarantees the commit phase cannot fail validation — the property
    /// 2PC requires of its participants. No-wait locks also mean two
    /// batches that collide on a key never block each other, so
    /// distributed deadlock is impossible; the loser aborts and retries.
    fn assemble(dbs: Vec<Arc<SpitzDb>>, telemetry: TelemetryHandle) -> Self {
        let oracle = Arc::new(TimestampOracle::new());
        let staged_logs: Vec<Arc<StagedLog>> = dbs
            .iter()
            .map(|db| Arc::new(StagedLog::staged(Arc::clone(db.store()))))
            .collect();
        let decisions = StagedLog::decisions(Arc::clone(dbs[0].store()));
        // A fresh oracle would recycle global transaction ids issued by a
        // previous process incarnation. A recycled id colliding with a
        // stale staged-log entry makes the log point at the wrong staged
        // chunk, so a later redo would seal the *old* batch's writes.
        // Advance past every id the durable 2PC logs still record.
        let mut max_stale = 0u64;
        for log in &staged_logs {
            for entry in log.entries().unwrap_or_default() {
                max_stale = max_stale.max(entry.global_txn_id);
            }
        }
        for entry in decisions.entries().unwrap_or_default() {
            max_stale = max_stale.max(entry.global_txn_id);
        }
        if max_stale > 0 {
            oracle.advance_past(max_stale);
        }
        let participants: Vec<Arc<Participant>> = dbs
            .iter()
            .enumerate()
            .map(|(i, db)| {
                let sink = ShardSink {
                    shard: i,
                    store: Arc::clone(db.store()),
                    ledger: Arc::clone(db.ledger()),
                    pipeline: db.pipeline().cloned(),
                    staged: Arc::clone(&staged_logs[i]),
                };
                Arc::new(Participant::with_apply(
                    format!("shard-{i}"),
                    Arc::clone(&oracle),
                    CcScheme::TwoPhaseLocking,
                    Some(Arc::new(sink) as Arc<dyn PreparedApply>),
                ))
            })
            .collect();
        let coordinator =
            TwoPhaseCoordinator::with_telemetry(participants, oracle, telemetry.clone());
        let obs = ShardedObs::new(&telemetry);
        let db = ShardedDb {
            shards: dbs,
            coordinator,
            fence: parking_lot::RwLock::new(()),
            staged_logs,
            decisions,
            published_epoch: parking_lot::Mutex::new(0),
            telemetry,
            obs,
        };
        if let Ok(Some(head)) = db.published_head() {
            *db.published_epoch.lock() = head.epoch;
        }
        db
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Direct access to one shard's `SpitzDb` (diagnostics, tests).
    pub fn shard(&self, index: usize) -> &Arc<SpitzDb> {
        &self.shards[index]
    }

    /// The 2PC coordinator driving cross-shard batches.
    pub fn coordinator(&self) -> &TwoPhaseCoordinator {
        &self.coordinator
    }

    /// The health of one shard's backing store (see [`SpitzDb::health`]).
    pub fn shard_health(&self, index: usize) -> spitz_storage::HealthState {
        self.shards[index].health()
    }

    /// Why one shard's store is degraded or read-only (`None` while
    /// healthy) — what a served front-end reports per shard in its health
    /// endpoint (see [`SpitzDb::health_reason`]).
    pub fn shard_health_reason(&self, index: usize) -> Option<String> {
        self.shards[index].health_reason()
    }

    /// Aggregate deployment health: healthy only when every shard is. A
    /// single dead or full shard degrades the whole deployment but never
    /// makes it read-only — the other shards' key ranges stay writable,
    /// and cross-shard batches touching the sick shard abort cleanly (its
    /// prepare vote is No).
    pub fn health(&self) -> spitz_storage::HealthState {
        let sick = (0..self.shards.len())
            .map(|i| self.shard_health(i))
            .filter(|h| *h != spitz_storage::HealthState::Healthy)
            .count();
        if sick == 0 {
            spitz_storage::HealthState::Healthy
        } else {
            spitz_storage::HealthState::Degraded
        }
    }

    /// A point-in-time snapshot of every telemetry instrument across the
    /// whole deployment: all shards' storage/pipeline/proof instruments
    /// plus the 2PC coordinator's, in one registry.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.telemetry.snapshot()
    }

    /// The live telemetry handle backing [`ShardedDb::telemetry`].
    pub fn telemetry_handle(&self) -> &TelemetryHandle {
        &self.telemetry
    }

    /// Drop a settled commit decision and count the truncation.
    fn truncate_decision(&self, global_txn_id: u64) {
        if self.decisions.remove(global_txn_id).is_ok() {
            self.obs.decision_truncations.inc();
        }
    }

    /// Which shard owns `key`.
    pub fn route(&self, key: &[u8]) -> usize {
        shard_for(key, self.shards.len())
    }

    /// Write one key/value pair: routes to the owning shard and seals a
    /// block in that shard's ledger only. Returns the shard's new digest
    /// (use [`ShardedDb::digest`] for the combined one).
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<Digest> {
        let _epoch = self.fence.read();
        self.shards[self.route(key)].put(key, value)
    }

    /// Write a batch atomically. A batch whose keys all land on one shard
    /// is sealed as a single block there; a batch spanning shards runs
    /// two-phase commit across the involved shards (all-or-nothing: either
    /// every shard's ledger seals its part, or no shard's does). On success
    /// the refreshed cross-shard digest — a fenced consistent cut — is
    /// published and returned.
    pub fn put_batch(&self, writes: Vec<(Vec<u8>, Vec<u8>)>) -> Result<ShardedDigest> {
        if !writes.is_empty() {
            let _epoch = self.fence.read();
            let first = self.route(&writes[0].0);
            if writes.iter().all(|(key, _)| self.route(key) == first) {
                self.shards[first].put_batch(writes)?;
            } else {
                // Split-phase 2PC with a durable commit decision between
                // the phases, so a crash after the decision is redone (not
                // presumed aborted) by a restarted process.
                let prepared = self.coordinator.prepare(writes, "PUT BATCH")?;
                self.finish_decided(prepared)?;
            }
        }
        let digest = self.digest();
        self.publish_head(&digest)?;
        Ok(digest)
    }

    /// Phase 1 only of a cross-shard batch: prepare every involved shard
    /// and return the in-doubt handle (crash-injection and recovery tests
    /// drive 2PC through this).
    pub fn prepare_batch(&self, writes: Vec<(Vec<u8>, Vec<u8>)>) -> Result<PreparedBatch> {
        let _epoch = self.fence.read();
        Ok(PreparedBatch(
            self.coordinator.prepare(writes, "PUT BATCH")?,
        ))
    }

    /// Phase 2 (commit) of a batch prepared with
    /// [`ShardedDb::prepare_batch`].
    pub fn commit_prepared(&self, prepared: PreparedBatch) -> Result<ShardedDigest> {
        {
            let _epoch = self.fence.read();
            self.finish_decided(prepared.0)?;
        }
        let digest = self.digest();
        self.publish_head(&digest)?;
        Ok(digest)
    }

    /// Record the commit decision durably, drive phase 2, and clear the
    /// decision once every involved shard has applied. Called with the
    /// epoch fence held shared.
    fn finish_decided(&self, prepared: PreparedGlobal) -> Result<()> {
        let global_txn_id = prepared.global_txn_id;
        // The decision record makes the commit survive a process crash:
        // recovery finds staged-but-unapplied parts and redoes them. If the
        // decision itself cannot be persisted, nothing has committed yet —
        // abort cleanly everywhere.
        if let Err(error) = self.decisions.add(global_txn_id, Hash::ZERO) {
            self.coordinator.abort_prepared(prepared);
            return Err(error.into());
        }
        self.coordinator.commit_prepared(prepared)?;
        // Every shard applied: the decision record has served its purpose.
        // (On failure it is retained so recovery can redo the apply.)
        self.truncate_decision(global_txn_id);
        Ok(())
    }

    /// Phase 2 (abort) of a batch prepared with
    /// [`ShardedDb::prepare_batch`]: nothing becomes visible anywhere.
    pub fn abort_prepared(&self, prepared: PreparedBatch) {
        let _epoch = self.fence.read();
        self.coordinator.abort_prepared(prepared.0);
    }

    /// Coordinator-crash recovery: resolve every in-doubt batch, both
    /// in-process and across process restarts.
    ///
    /// In-process, a batch with no commit decision is presumed aborted (no
    /// shard keeps prepared state or locks) and a batch whose commit was
    /// decided but whose ledger apply failed on some shard (disk full after
    /// the vote) gets the apply retried there. Then the durable staged logs
    /// are scanned: batches staged by a *previous* process are resolved the
    /// same way — redo when a durable commit decision exists, presumed
    /// abort otherwise — so `recover()` preserves all-or-nothing across a
    /// kill-and-reopen. Returns the number of batches resolved.
    pub fn recover(&self) -> usize {
        // Exclusive fence: a recovery pass racing a live `put_batch` (which
        // holds the fence shared for its whole prepare→decide→commit cycle)
        // could otherwise presume-abort staged entries of a batch whose
        // decision is about to land, losing the redo information.
        let _epoch = self.fence.write();
        let resolved = self.coordinator.recover() + self.resolve_staged(true);
        self.clear_settled_decisions();
        resolved
    }

    /// Scan the durable staged logs for batches no live participant knows
    /// about (staged by a previous incarnation of this process) and resolve
    /// them: redo into the shard's ledger when a durable commit decision
    /// exists, otherwise — only when `presume_abort` is set — drop the
    /// entry. With `presume_abort` false (the eager pass at open),
    /// undecided entries are left untouched for an explicit
    /// [`ShardedDb::recover`]. Returns the number of batches resolved.
    fn resolve_staged(&self, presume_abort: bool) -> usize {
        let mut resolved = 0;
        let mut in_doubt: std::collections::BTreeMap<u64, Vec<(usize, StagedEntry)>> =
            std::collections::BTreeMap::new();
        for (shard, log) in self.staged_logs.iter().enumerate() {
            for entry in log.entries().unwrap_or_default() {
                in_doubt
                    .entry(entry.global_txn_id)
                    .or_default()
                    .push((shard, entry));
            }
        }
        for (global_txn_id, parts) in in_doubt {
            let decided = self.decisions.contains(global_txn_id).unwrap_or(false);
            if !decided && !presume_abort {
                continue;
            }
            for (shard, entry) in parts {
                if decided {
                    // Redo: decode the staged chunk and seal it into the
                    // shard's ledger. Failures leave the entry in place for
                    // the next recovery pass.
                    let Ok(chunk) = self.shards[shard]
                        .store()
                        .get_kind(&entry.chunk, ChunkKind::Meta)
                    else {
                        continue;
                    };
                    let Some((_, _, writes)) = decode_staged(chunk.data()) else {
                        continue;
                    };
                    let db = &self.shards[shard];
                    let applied = match db.pipeline() {
                        Some(pipeline) => pipeline.commit(writes, "PUT BATCH (redo)").map(|_| ()),
                        None => db
                            .ledger()
                            .try_append_block(writes, "PUT BATCH (redo)")
                            .map(|_| ()),
                    };
                    if applied.is_ok() {
                        let _ = self.staged_logs[shard].remove(global_txn_id);
                    }
                } else {
                    // Presumed abort: nothing was visible; drop the entry.
                    let _ = self.staged_logs[shard].remove(global_txn_id);
                }
            }
            if decided && self.all_staged_cleared(global_txn_id) {
                self.truncate_decision(global_txn_id);
            }
            resolved += 1;
        }
        resolved
    }

    /// Clear decision records whose batches have fully applied (e.g. a
    /// crash between the last apply and the decision cleanup). Without
    /// this, settled entries pin their decision chunks forever — the
    /// decision log must shrink back once its entries stop protecting
    /// anything.
    fn clear_settled_decisions(&self) {
        for entry in self.decisions.entries().unwrap_or_default() {
            if self.all_staged_cleared(entry.global_txn_id)
                && !self
                    .coordinator
                    .participants()
                    .iter()
                    .any(|p| p.prepared_ids().contains(&entry.global_txn_id))
            {
                self.truncate_decision(entry.global_txn_id);
            }
        }
    }

    /// True when no shard's staged log still records `global_txn_id`.
    fn all_staged_cleared(&self, global_txn_id: u64) -> bool {
        self.staged_logs
            .iter()
            .all(|log| !log.contains(global_txn_id).unwrap_or(true))
    }

    /// Unverified point read, routed to the owning shard.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.shards[self.route(key)].get(key)
    }

    /// Verified point read: the value plus a [`ShardedProof`] chaining the
    /// shard's ledger proof up to the cross-shard root of a fenced
    /// consistent cut.
    ///
    /// Each call takes the epoch fence exclusively (the price of a
    /// consistent cut per read). Read-heavy workloads should pin a
    /// [`ShardedDb::snapshot`] once and serve many `get_verified` calls
    /// from it instead — one fence, repeatable reads, same proofs.
    pub fn get_verified(&self, key: &[u8]) -> Result<(Option<Vec<u8>>, ShardedProof)> {
        let timer = self.obs.point_build_nanos.start();
        let _cut = self.fence.write();
        let shard = self.route(key);
        let (value, ledger_proof) = self.shards[shard].get_verified(key)?;
        // Under the exclusive fence no commit is in flight, so the serving
        // shard's proof-time digest and the other shards' digests form one
        // consistent cut.
        let digests: Vec<Digest> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, db)| {
                if i == shard {
                    ledger_proof.digest
                } else {
                    db.digest()
                }
            })
            .collect();
        let combined = ShardedDigest::over(digests);
        let membership = combined
            .membership_proof(shard)
            .expect("shard index is in range");
        let proof = ShardedProof {
            shard,
            shard_count: self.shards.len(),
            ledger_proof,
            membership,
            root: combined.root,
        };
        if self.obs.enabled {
            self.obs.point_build_nanos.finish(timer);
            self.obs.point_bytes.record(proof.encoded_len() as u64);
        }
        Ok((value, proof))
    }

    /// Batched verified point read: every key is resolved against one
    /// fenced consistent cut, keys sharing a shard share one
    /// [`spitz_ledger::LedgerMultiProof`] (and its upper-tree nodes), and
    /// the whole batch chains to a single cross-shard root through one
    /// audit path per involved shard. The `i`-th returned value answers
    /// `keys[i]`.
    pub fn get_multi_verified(
        &self,
        keys: &[Vec<u8>],
    ) -> Result<(Vec<Option<Vec<u8>>>, ShardedMultiProof)> {
        let timer = self.obs.multi_build_nanos.start();
        let _cut = self.fence.write();
        // Partition the keys onto their shards, remembering each key's
        // position so the values come back in input order.
        let shard_count = self.shards.len();
        let mut parts: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
        for (i, key) in keys.iter().enumerate() {
            parts[shard_for(key, shard_count)].push(i);
        }
        let mut values: Vec<Option<Vec<u8>>> = vec![None; keys.len()];
        let mut shard_proofs: Vec<Option<spitz_ledger::LedgerMultiProof>> =
            (0..shard_count).map(|_| None).collect();
        for (shard, positions) in parts.iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            let shard_keys: Vec<Vec<u8>> = positions.iter().map(|&i| keys[i].clone()).collect();
            let (shard_values, proof) = self.shards[shard].get_multi_verified(&shard_keys)?;
            for (&position, value) in positions.iter().zip(shard_values) {
                values[position] = value;
            }
            shard_proofs[shard] = Some(proof);
        }
        // Under the exclusive fence no commit is in flight, so the serving
        // shards' proof-time digests and the idle shards' digests form one
        // consistent cut.
        let digests: Vec<Digest> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, db)| match &shard_proofs[i] {
                Some(proof) => proof.digest,
                None => db.digest(),
            })
            .collect();
        let combined = ShardedDigest::over(digests);
        let groups = shard_proofs
            .into_iter()
            .enumerate()
            .filter_map(|(shard, proof)| {
                proof.map(|ledger_proof| ShardMultiGroup {
                    shard,
                    ledger_proof,
                    membership: combined
                        .membership_proof(shard)
                        .expect("shard index is in range"),
                })
            })
            .collect();
        let proof = ShardedMultiProof {
            shard_count,
            root: combined.root,
            groups,
        };
        if self.obs.enabled {
            self.obs.multi_build_nanos.finish(timer);
            self.obs.multi_bytes.record(proof.encoded_len() as u64);
        }
        Ok((values, proof))
    }

    /// **Unverified** range read over `start <= key < end`, merged across
    /// all shards in key order. The merge is not proven: use
    /// [`ShardedDb::range_verified`] (or a [`ShardedSnapshot`]) when the
    /// caller needs the cross-shard completeness guarantee — this explicit
    /// name exists so the unverified fast path is a visible choice, never a
    /// default.
    pub fn range_unverified(&self, start: &[u8], end: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut entries = Vec::new();
        for shard in &self.shards {
            entries.extend(shard.range(start, end)?);
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(entries)
    }

    /// Verified range read over `start <= key < end` against a fenced
    /// consistent cut: per-shard complete SIRI range proofs, chained
    /// through the shard-digest leaves to the single cross-shard root.
    /// Equivalent to `self.snapshot()?.range_verified(start, end)` but
    /// without pinning index checkouts.
    pub fn range_verified(
        &self,
        start: &[u8],
        end: &[u8],
    ) -> Result<crate::proof::ShardedVerifiedRange> {
        let timer = self.obs.range_build_nanos.start();
        let _cut = self.fence.write();
        let mut merged = Vec::new();
        let mut parts = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let (entries, proof) = shard.range_verified(start, end)?;
            merged.extend(entries);
            parts.push(proof);
        }
        merged.sort_by(|a, b| a.0.cmp(&b.0));
        let combined = ShardedDigest::over(parts.iter().map(|p| p.digest).collect());
        let proof = ShardedRangeProof {
            shard_count: self.shards.len(),
            epoch: combined.epoch,
            root: combined.root,
            shards: parts,
        };
        if self.obs.enabled {
            self.obs.range_build_nanos.finish(timer);
            self.obs.range_bytes.record(proof.encoded_len() as u64);
        }
        Ok((merged, proof))
    }

    /// Pin a fenced consistent cut as a [`ShardedSnapshot`]: all shard
    /// pipelines are quiesced inside one epoch, each shard's state is
    /// checked out at its digest, and the combined digest covers exactly
    /// that cut. Reads against the snapshot are repeatable and all verify
    /// against the single pinned root while writers move on.
    pub fn snapshot(&self) -> Result<ShardedSnapshot> {
        let _cut = self.fence.write();
        let mut shards = Vec::with_capacity(self.shards.len());
        for db in &self.shards {
            shards.push(db.snapshot()?);
        }
        let digest = ShardedDigest::over(shards.iter().map(|s| s.digest()).collect());
        // The snapshot epoch comes from the same oracle that numbers 2PC
        // transactions: allocated inside the exclusive fence, it totally
        // orders this cut against every cross-shard commit.
        let taken_at = self.coordinator.oracle().allocate();
        Ok(ShardedSnapshot::new(digest, shards, taken_at))
    }

    /// The current cross-shard digest (what clients pin). Taken under the
    /// exclusive epoch fence, so it is a **consistent cut**: every commit
    /// (including every cross-shard 2PC batch) is either fully reflected in
    /// all its shards' leaves or not at all.
    pub fn digest(&self) -> ShardedDigest {
        let _cut = self.fence.write();
        ShardedDigest::over(self.shards.iter().map(|db| db.digest()).collect())
    }

    /// True when the live state matches a pinned cross-shard digest.
    pub fn verify(&self, pinned: &ShardedDigest) -> bool {
        pinned.verify() && self.digest().root == pinned.root
    }

    /// The last cross-shard digest published to the [`SHARDED_HEAD_ROOT`]
    /// root (in shard 0's store), if any. After [`ShardedDb::flush`] this
    /// equals [`ShardedDb::digest`].
    pub fn published_head(&self) -> Result<Option<ShardedDigest>> {
        let store = self.shards[0].store();
        let Some(address) = store.root(SHARDED_HEAD_ROOT) else {
            return Ok(None);
        };
        let chunk = store.get_kind(&address, ChunkKind::Meta)?;
        ShardedDigest::decode(chunk.data())
            .map(Some)
            .ok_or(DbError::Storage(format!(
                "corrupt cross-shard digest chunk {address}"
            )))
    }

    /// Commit epoch of the last digest this instance published to
    /// [`SHARDED_HEAD_ROOT`] (0 before any publication). A cheap
    /// monotone read — no epoch fence, no store access — that a served
    /// front-end can poll for its digest-subscription fast path; the
    /// authoritative consistent cut is still [`ShardedDb::digest`].
    pub fn published_epoch(&self) -> u64 {
        *self.published_epoch.lock()
    }

    /// Compact every durable shard's store (see [`SpitzDb::compact`]):
    /// per-shard mark-sweep over that shard's roots, staged logs included,
    /// so in-doubt 2PC batches survive. Shards compact independently —
    /// readers and writers on other shards are never blocked. Returns the
    /// per-shard reports in shard order (`None` for in-memory shards and
    /// shards with nothing to compact).
    pub fn compact(&self) -> Result<Vec<Option<CompactionReport>>> {
        self.shards.iter().map(|db| db.compact()).collect()
    }

    /// Drain every shard's commit pipeline, force everything onto stable
    /// storage, and publish the resulting cross-shard digest durably.
    pub fn flush(&self) -> Result<ShardedDigest> {
        for shard in &self.shards {
            shard.flush()?;
        }
        let digest = self.digest();
        self.publish_head(&digest)?;
        self.shards[0].store().sync()?;
        Ok(digest)
    }

    /// Publish a cross-shard digest chunk and advance [`SHARDED_HEAD_ROOT`]
    /// through the existing root-record path. Publications are serialized
    /// and monotone by epoch: a concurrent publisher that lost the race
    /// with a newer digest leaves the newer head in place.
    fn publish_head(&self, digest: &ShardedDigest) -> Result<()> {
        let mut published = self.published_epoch.lock();
        if digest.epoch < *published {
            return Ok(());
        }
        let store = self.shards[0].store();
        let address = store.try_put(Chunk::new(ChunkKind::Meta, digest.encode()))?;
        store.try_set_root(SHARDED_HEAD_ROOT, address)?;
        *published = digest.epoch;
        Ok(())
    }
}

/// Verify (or, on first open, write) a shard's membership record.
fn ensure_member(
    store: &Arc<dyn ChunkStore>,
    shard: usize,
    shards: usize,
    spitz: SpitzConfig,
) -> Result<()> {
    let expected = encode_member(shard, shards, spitz.siri.tag());
    match store.root(SHARD_MEMBER_ROOT) {
        Some(address) => {
            let chunk = store.get_kind(&address, ChunkKind::Meta)?;
            if chunk.data() != expected.as_slice() {
                return Err(DbError::BadRequest(format!(
                    "shard store mismatch: expected shard {shard} of {shards} \
                     ({}), found a different membership record — wrong shard \
                     count, swapped directories, or wrong SIRI kind",
                    spitz.siri.name(),
                )));
            }
        }
        None => {
            let address = store.try_put(Chunk::new(ChunkKind::Meta, expected))?;
            store.try_set_root(SHARD_MEMBER_ROOT, address)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(i: u32) -> (Vec<u8>, Vec<u8>) {
        (
            format!("key-{i:05}").into_bytes(),
            format!("value-{i}").into_bytes(),
        )
    }

    #[test]
    fn single_key_ops_route_and_read_back() {
        let db = ShardedDb::in_memory(4);
        for i in 0..100 {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        for i in 0..100 {
            let (k, v) = kv(i);
            assert_eq!(db.get(&k).unwrap(), Some(v));
            assert_eq!(db.route(&k), shard_for(&k, 4));
            assert_eq!(db.route(&k), db.coordinator().route(&k));
        }
        assert_eq!(db.get(b"missing").unwrap(), None);
        // All four shards got some share of 100 hashed keys.
        for s in 0..4 {
            assert!(!db.shard(s).ledger().is_empty(), "shard {s} is empty");
        }
    }

    #[test]
    fn cross_shard_batch_commits_atomically_and_publishes_head() {
        let db = ShardedDb::in_memory(3);
        let writes: Vec<_> = (0..60).map(kv).collect();
        let digest = db.put_batch(writes.clone()).unwrap();
        assert!(digest.verify());
        for (k, v) in &writes {
            assert_eq!(db.get(k).unwrap(), Some(v.clone()));
        }
        assert_eq!(db.published_head().unwrap().unwrap().root, digest.root);
        assert!(db.verify(&digest));
    }

    #[test]
    fn sharded_proofs_chain_to_the_combined_root() {
        let db = ShardedDb::in_memory(4);
        db.put_batch((0..80).map(kv).collect()).unwrap();
        let pinned = db.digest();

        let (k, v) = kv(17);
        let (value, proof) = db.get_verified(&k).unwrap();
        assert_eq!(value, Some(v.clone()));
        assert_eq!(proof.root, pinned.root);
        assert!(proof.verify(&k, value.as_deref()));
        assert!(!proof.verify(&k, Some(b"forged")));
        assert!(!proof.verify(b"other-key", value.as_deref()));

        // Absence proof for a missing key.
        let (missing, proof) = db.get_verified(b"no-such-key").unwrap();
        assert!(missing.is_none());
        assert!(proof.verify(b"no-such-key", None));
        assert!(!proof.verify(b"no-such-key", Some(b"x")));
    }

    #[test]
    fn digest_epoch_advances_with_every_commit() {
        let db = ShardedDb::in_memory(2);
        let d0 = db.digest();
        assert_eq!(d0.epoch, 0);
        db.put(b"a", b"1").unwrap();
        let d1 = db.digest();
        assert_eq!(d1.epoch, 1);
        assert_ne!(d0.root, d1.root);
        db.put_batch((0..10).map(kv).collect()).unwrap();
        let d2 = db.digest();
        assert!(d2.epoch > d1.epoch);
        assert_ne!(d1.root, d2.root);
    }

    #[test]
    fn sharded_digest_encoding_round_trips() {
        let db = ShardedDb::in_memory(3);
        db.put_batch((0..30).map(kv).collect()).unwrap();
        let digest = db.digest();
        let decoded = ShardedDigest::decode(&digest.encode()).unwrap();
        assert_eq!(decoded, digest);
        assert!(ShardedDigest::decode(b"garbage").is_none());
        // Tampering with a shard-digest leaf cannot forge the pinned root:
        // decode recomputes the root over the (tampered) leaves, so the
        // result no longer matches the original pin.
        let mut tampered = digest.encode();
        let last = tampered.len() - 2;
        tampered[last] ^= 0xFF;
        if let Some(decoded) = ShardedDigest::decode(&tampered) {
            assert_ne!(decoded.root, digest.root);
        }
    }

    #[test]
    fn range_merges_across_shards_in_key_order() {
        let db = ShardedDb::in_memory(4);
        db.put_batch((0..100).map(kv).collect()).unwrap();
        let entries = db.range_unverified(b"key-00020", b"key-00030").unwrap();
        assert_eq!(entries.len(), 10);
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(entries[0].0, b"key-00020".to_vec());

        // The verified merge returns the same entries plus a proof that
        // chains every shard's contribution to the single root.
        let (verified, proof) = db.range_verified(b"key-00020", b"key-00030").unwrap();
        assert_eq!(verified, entries);
        assert!(proof.verify(&verified));
        assert_eq!(proof.root, db.digest().root);
    }

    #[test]
    fn membership_records_reject_mixed_up_stores() {
        use spitz_storage::InMemoryChunkStore;
        let stores: Vec<Arc<dyn ChunkStore>> =
            (0..2).map(|_| InMemoryChunkStore::shared() as _).collect();
        let db = ShardedDb::with_stores(stores.clone(), SpitzConfig::default()).unwrap();
        db.put(b"k", b"v").unwrap();
        drop(db);

        // Same stores, same order: reopens fine.
        ShardedDb::with_stores(stores.clone(), SpitzConfig::default()).unwrap();
        // Swapped order: rejected by the membership records.
        let swapped = vec![Arc::clone(&stores[1]), Arc::clone(&stores[0])];
        assert!(matches!(
            ShardedDb::with_stores(swapped, SpitzConfig::default()),
            Err(DbError::BadRequest(_))
        ));
    }
}
